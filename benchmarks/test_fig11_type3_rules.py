"""Figure 11: install / activate / token-test times, 3-tuple-variable
rules (paper section 6).

Type 3 rules join emp to both dept and job; token tests pay a two-step
TREAT join, and activation primes three α-memories plus a three-way
P-node query per rule.  The cross-figure shape to preserve: token-test
cost grows with the number of tuple variables (the paper saw 2–3 ms for
all three types on a ~12 MIPS SPARCstation) but not with the number of
rules.
"""

import pytest

from common import (
    RULE_COUNTS, activate_rules, bench_table_once, bench_token_test,
    figure_table, install_rules, make_database)

TYPE = 3


@pytest.mark.parametrize("count", RULE_COUNTS)
def test_installation(benchmark, count):
    def setup():
        return (make_database(),), {}

    def run(db):
        install_rules(db, count, TYPE)

    benchmark.pedantic(run, setup=setup, rounds=3)


@pytest.mark.parametrize("count", RULE_COUNTS)
def test_activation(benchmark, count):
    def setup():
        db = make_database()
        db._rules_suspended = True
        install_rules(db, count, TYPE)
        return (db,), {}

    def run(db):
        activate_rules(db, count, TYPE)

    benchmark.pedantic(run, setup=setup, rounds=3)


@pytest.mark.parametrize("count", RULE_COUNTS)
def test_token_test(benchmark, count):
    bench_token_test(benchmark, count, TYPE)


def test_figure11_table(benchmark):
    """Regenerate the paper's Figure 11 table."""

    def check(rows):
        tokens = [r[3] for r in rows]
        assert tokens[-1] < tokens[0] * 4

    bench_table_once(benchmark, lambda: figure_table(TYPE), "fig11",
                     "Figure 11: three-tuple-variable rules (seconds)",
                     check,
                     meta={"network": "a-treat", "tuple_variables": TYPE})
