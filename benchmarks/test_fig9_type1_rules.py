"""Figure 9: install / activate / token-test times, 1-tuple-variable
rules (paper section 6).

Rules have the single-relation predicate ``Cᵢ < emp.sal <= Cᵢ'``; the
figure sweeps 25–200 rules.  The key expectations carried over from the
paper: installation and activation grow roughly linearly in the number of
rules, while token-test time stays nearly flat thanks to the selection
predicate index (a token probes the interval index and touches only the
rules it matches).
"""

import pytest

from common import (
    RULE_COUNTS, activate_rules, bench_table_once, bench_token_test,
    figure_table, install_rules, make_database)

TYPE = 1


@pytest.mark.parametrize("count", RULE_COUNTS)
def test_installation(benchmark, count):
    def setup():
        return (make_database(),), {}

    def run(db):
        install_rules(db, count, TYPE)

    benchmark.pedantic(run, setup=setup, rounds=3)


@pytest.mark.parametrize("count", RULE_COUNTS)
def test_activation(benchmark, count):
    def setup():
        db = make_database()
        db._rules_suspended = True
        install_rules(db, count, TYPE)
        return (db,), {}

    def run(db):
        activate_rules(db, count, TYPE)

    benchmark.pedantic(run, setup=setup, rounds=3)


@pytest.mark.parametrize("count", RULE_COUNTS)
def test_token_test(benchmark, count):
    bench_token_test(benchmark, count, TYPE)


def test_figure9_table(benchmark):
    """Regenerate the paper's Figure 9 table."""

    def check(rows):
        installs = [r[1] for r in rows]
        tokens = [r[3] for r in rows]
        # installation grows with rule count...
        assert installs[-1] > installs[0]
        # ...but token test must NOT grow linearly with it: the selection
        # index keeps the 8x rule increase well under 8x token cost.
        assert tokens[-1] < tokens[0] * 4

    bench_table_once(benchmark, lambda: figure_table(TYPE), "fig9",
                     "Figure 9: one-tuple-variable rules (seconds)",
                     check,
                     meta={"network": "a-treat", "tuple_variables": TYPE})
