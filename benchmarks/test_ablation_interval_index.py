"""Ablation: interval skip list vs IBS tree vs linear scan (paper §4.1).

The paper states the interval skip list "is much easier to implement than
the IBS tree and performs as well"; both must beat a linear scan over the
predicate list as the number of stored predicates grows.  This bench
measures raw stabbing-query throughput on the three structures with the
benchmark rule shapes (disjoint shifted ranges plus nested overlaps).
"""

import time

import pytest

from repro.core.selection_index import LinearIntervalIndex
from repro.intervals.ibstree import IBSTree
from repro.intervals.interval import Interval
from repro.intervals.skiplist import IntervalSkipList
from common import emit

SIZES = (100, 1000, 4000)

STRUCTURES = {
    "skiplist": lambda: IntervalSkipList(seed=42),
    "ibstree": IBSTree,
    "linear": LinearIntervalIndex,
}


def intervals_for(size: int):
    out = []
    for i in range(size):
        if i % 10 == 0:
            # some long, overlapping intervals among the disjoint ones
            out.append(Interval(i * 10, i * 10 + 500, payload=("L", i)))
        else:
            out.append(Interval(i * 10, i * 10 + 8, payload=("S", i)))
    return out


def probes_for(size: int):
    return [((p * 37) % (size * 10)) + 0.5 for p in range(200)]


def build(structure: str, size: int):
    index = STRUCTURES[structure]()
    for interval in intervals_for(size):
        index.insert(interval)
    return index


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("structure", sorted(STRUCTURES))
def test_stab_throughput(benchmark, structure, size):
    index = build(structure, size)
    probes = probes_for(size)

    def run():
        for probe in probes:
            index.stab(probe)

    benchmark.pedantic(run, rounds=10, warmup_rounds=2)


def test_interval_index_table(benchmark):
    holder = {}

    def run():
        rows = []
        for size in SIZES:
            cells = {}
            for structure in STRUCTURES:
                index = build(structure, size)
                probes = probes_for(size)
                start = time.perf_counter()
                for probe in probes:
                    index.stab(probe)
                cells[structure] = ((time.perf_counter() - start)
                                    / len(probes))
            rows.append((size, cells))
        holder["rows"] = rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = holder["rows"]
    lines = ["Stabbing query cost per probe (mixed disjoint + "
             "overlapping intervals)",
             f"{'intervals':>9} | {'skip list':>10} | {'IBS tree':>10} | "
             f"{'linear':>10}"]
    lines.append("-" * len(lines[1]))
    for size, cells in rows:
        lines.append(
            f"{size:>9} | {cells['skiplist'] * 1e6:>8.2f}us | "
            f"{cells['ibstree'] * 1e6:>8.2f}us | "
            f"{cells['linear'] * 1e6:>8.2f}us")
    emit("ablation_interval_index", "\n".join(lines))
    # Shape: at the largest size both tree structures beat linear
    # decisively, and the two trees are within an order of magnitude of
    # each other ("performs as well").
    last = rows[-1][1]
    assert last["linear"] > 3 * last["skiplist"]
    assert last["linear"] > 3 * last["ibstree"]
    ratio = max(last["skiplist"], last["ibstree"]) / \
        min(last["skiplist"], last["ibstree"])
    assert ratio < 10
