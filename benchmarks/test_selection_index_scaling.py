"""Token-test scaling: the selection predicate index vs no network.

Paper section 6: token testing "should scale to much larger numbers of
rules … because of Ariel's top-level discrimination network", and
"rule condition testing techniques that do not use some form of
discrimination network simply cannot compete when the number of rules
becomes large".  This bench sweeps the active-rule count well past the
paper's 200 and compares the interval-skip-list index against the naive
linear predicate list.
"""

import time

import pytest

from common import emit, install_rules, activate_rules
from repro.core.selection_index import LinearIntervalIndex, SelectionIndex

COUNTS = (50, 200, 800)


def build(count: int, linear: bool):
    selection_index = (SelectionIndex(index_factory=LinearIntervalIndex)
                       if linear else None)
    db = None
    # reuse the standard benchmark schema/data but with a custom index
    import common
    db = common.make_database()
    if linear:
        # swap the selection index before any rules are added
        db.manager.network.selection_index = selection_index
    db._rules_suspended = True
    install_rules(db, count, 1)
    activate_rules(db, count, 1)
    return db


def measure_token(db, repeats: int = 80, chunks: int = 5) -> float:
    """Best-of-chunks per-token time, with GC paused: robust against a
    collection landing inside one long measurement when the whole
    benchmark suite runs in a single process."""
    import gc
    best = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for _ in range(chunks):
            tids = []
            start = time.perf_counter()
            for _ in range(repeats):
                tids.append(db.hooks.insert(
                    "emp", ("probe", 30, 650.0, 1, 1)))
            elapsed = time.perf_counter() - start
            for tid in tids:
                db.hooks.delete("emp", tid)
            best = min(best, elapsed / repeats)
    finally:
        if gc_was_enabled:
            gc.enable()
    return best


@pytest.mark.parametrize("count", COUNTS)
@pytest.mark.parametrize("index", ["skiplist", "linear"])
def test_token_scaling(benchmark, count, index):
    db = build(count, linear=(index == "linear"))
    tids = []

    def run():
        tids.append(db.hooks.insert("emp", ("probe", 30, 650.0, 1, 1)))

    benchmark.pedantic(run, rounds=150, iterations=1, warmup_rounds=5)
    for tid in tids:
        db.hooks.delete("emp", tid)


def test_scaling_table(benchmark):
    """The headline comparison: per-token cost vs rule count."""
    holder = {}

    def run():
        rows = []
        for count in COUNTS:
            isl = measure_token(build(count, linear=False))
            linear = measure_token(build(count, linear=True))
            rows.append((count, isl, linear))
        holder["rows"] = rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = holder["rows"]
    lines = ["Token test vs number of rules: interval skip list index "
             "vs linear predicate scan",
             f"{'rules':>6} | {'skip list':>12} | {'linear':>12} | "
             f"{'speedup':>8}"]
    lines.append("-" * len(lines[1]))
    for count, isl, linear in rows:
        lines.append(f"{count:>6} | {isl * 1e6:>10.2f}us | "
                     f"{linear * 1e6:>10.2f}us | "
                     f"{linear / isl:>7.1f}x")
    emit("selection_index_scaling", "\n".join(lines))
    # Shape: the skip list's token cost must stay ~flat while the linear
    # scan grows with the rule count; at 800 rules the index must win
    # decisively.
    isl_growth = rows[-1][1] / rows[0][1]
    linear_growth = rows[-1][2] / rows[0][2]
    assert isl_growth < 3
    assert linear_growth > isl_growth
    assert rows[-1][2] > 2 * rows[-1][1]
