"""Cost-driven seek ordering vs the static join order.

The TREAT seek walks the rule's remaining variables in some order; the
paper leaves that order static.  This benchmark builds the adversarial
shape for a static order: rule ``if s.bk = big.bk and s.tk = tiny.tk``
where ``big`` holds ~2000 tuples in a handful of dense ``bk`` buckets
and ``tiny`` holds 4.  The variables sort alphabetically, so the static
``join_order_from("s")`` extends into **big** first — every token fans
out over a ~400-entry bucket before tiny rejects it — while the
cost-driven planner extends into **tiny** first and rejects 90% of the
tokens after a single probe (their ``tk`` values don't exist in tiny).

The static baseline runs through the ``JoinPlanner.forced`` hook, so
both measurements share every other code path (demand-driven index
promotion included).  Median of ``REPEATS`` fresh runs each, per the
perf-gate policy in ``common.py``; the bar is ≥2× (relaxed under CI)
with P-node match sets verified identical.
"""

import time

from common import emit, median_time, speedup_bar
from repro import Database

N_BIG = 2_000         # dense big-bucket rows (5 buckets of ~400)
N_TINY = 4
N_TOKENS = 600        # s-rows routed through the network
MATCH_EVERY = 10      # every 10th token actually matches (~10%)
REPEATS = 3
MIN_SPEEDUP = speedup_bar(2.0)


def _token_rows():
    """~90% of tokens carry a tk absent from tiny (rejected there);
    the matching ~10% carry a bk hitting a deliberately sparse big
    bucket, so match fan-out stays small in both orders."""
    rows = []
    for i in range(N_TOKENS):
        if i % MATCH_EVERY == 0:
            rows.append((77, i % N_TINY))         # 2 big rows, 1 tiny
        else:
            rows.append((i % 5, 1_000 + i))       # dense big, no tiny
    return rows


def _prepared_database():
    db = Database(network="a-treat", virtual_policy="never",
                  batch_tokens=True)
    db.execute_script("""
        create s (bk = int4, tk = int4)
        create big (bk = int4, pad = int4)
        create tiny (tk = int4)
        create bench_log (bk = int4)
    """)
    db.bulk_append("big", [(i % 5, i) for i in range(N_BIG)]
                   + [(77, -1), (77, -2)])
    db.bulk_append("tiny", [(i,) for i in range(N_TINY)])
    db._rules_suspended = True
    db.execute("define rule seek_rule "
               "if s.bk = big.bk and s.tk = tiny.tk "
               "then append to bench_log(bk = s.bk)")
    return db


def _match_set(db):
    return sorted(
        tuple(sorted((var, entry.values) for var, entry in m.bindings))
        for m in db.network.pnode("seek_rule").matches())


def _measure(rows, static: bool):
    """Seconds to route the token stream under one seek order."""
    db = _prepared_database()
    if static:
        db.network.join_planner.forced = \
            lambda rule, seed: rule.join_order_from(seed)
    start = time.perf_counter()
    db.bulk_append("s", rows)
    elapsed = time.perf_counter() - start
    return elapsed, _match_set(db)


def test_join_planning(benchmark):
    rows = _token_rows()
    holder = {}

    def run():
        static = [_measure(rows, static=True) for _ in range(REPEATS)]
        planned = [_measure(rows, static=False) for _ in range(REPEATS)]
        holder["static"] = median_time([t for t, _ in static])
        holder["planned"] = median_time([t for t, _ in planned])
        matches = [m for _, m in static + planned]
        assert all(m == matches[0] for m in matches), \
            "seek order changed the match set"
        assert matches[0], "workload produced no matches"
        holder["matches"] = len(matches[0])

    benchmark.pedantic(run, rounds=1, iterations=1)

    speedup = holder["static"] / holder["planned"]
    text = "\n".join([
        f"Adaptive seek ordering ({N_TOKENS} tokens, "
        f"{N_BIG}-row big / {N_TINY}-row tiny)",
        f"static order   {holder['static']:.4f}s",
        f"planned order  {holder['planned']:.4f}s | {speedup:.2f}x",
        f"P-node matches either way: {holder['matches']}",
    ])
    emit("join_planning", text, {
        "network": "a-treat",
        "big_rows": N_BIG,
        "tiny_rows": N_TINY,
        "tokens": N_TOKENS,
        "match_fraction": 1.0 / MATCH_EVERY,
        "repeats": REPEATS,
        "static_order_s": holder["static"],
        "planned_order_s": holder["planned"],
        "speedup": speedup,
        "pnode_matches": holder["matches"],
    })
    assert speedup >= MIN_SPEEDUP, (
        f"planned seek order only {speedup:.2f}x faster "
        f"(need >= {MIN_SPEEDUP}x)")
