"""WAL overhead gate: durability must stay cheap when fsync is off.

Every heap mutation a transition makes is journaled as a logical WAL
record (CRC-framed JSON of the encoded values), buffered, and flushed
at the recovery-scope boundary.  With ``fsync="never"`` the only costs
are record encoding and buffered file writes — no device syncs — so a
durable database should track an in-memory one closely on a rule-firing
transition workload.  This benchmark holds that journaling path to
``MAX_OVERHEAD`` of the plain in-memory run.

Medians of ``REPEATS`` fresh runs per side (perf-gate policy in
``common.py``); CI relaxes the bar for shared-runner noise.  The run
records the WAL counters and final log size into ``BENCH_wal.json``.
"""

import os
import tempfile
import time

from common import PERF_REPEATS, emit, median_time, running_in_ci
from repro import Database

N_RULES = 16
N_ROWS = 2_000
REPEATS = PERF_REPEATS
#: journaling with fsync="never" may cost at most 35% on transitions
MAX_OVERHEAD = 1.75 if running_in_ci() else 1.35


def _build(durable_path=None):
    kwargs = {}
    if durable_path is not None:
        kwargs = dict(durable_path=durable_path, fsync="never",
                      checkpoint_every=0)
    db = Database(network="a-treat", batch_tokens=True, **kwargs)
    db.execute_script("""
        create emp (name = text, age = int4, sal = float8)
        create bench_log (name = text)
    """)
    for i in range(N_RULES):
        low, high = 1000 * i, 1000 * i + 800
        db.execute(f"define rule wal_rule_{i} "
                   f"if {low} < emp.sal and emp.sal <= {high} "
                   f"then append to bench_log(name = emp.name)")
    return db


def _workload(db):
    start = time.perf_counter()
    for i in range(N_ROWS):
        db.execute(f"append emp(name = \"w{i:05d}\", "
                   f"age = {18 + i % 12}, "
                   f"sal = {1000.0 * (i % 24) + 400.0})")
    elapsed = time.perf_counter() - start
    fired = len(db.relation_rows("bench_log"))
    return elapsed, fired


def _measure_plain():
    db = _build()
    return _workload(db) + (None,)


def _measure_durable():
    with tempfile.TemporaryDirectory() as tmp:
        db = _build(durable_path=os.path.join(tmp, "state"))
        elapsed, fired = _workload(db)
        meta = {
            "wal_records": db.stats.get("wal.records"),
            "wal_bytes": os.path.getsize(db._durability.wal_path),
            "wal_fsyncs": db.stats.get("wal.fsyncs"),
        }
        db.close()
        return elapsed, fired, meta


def test_wal_overhead(benchmark):
    holder = {}

    def run():
        plain = [_measure_plain() for _ in range(REPEATS)]
        durable = [_measure_durable() for _ in range(REPEATS)]
        holder["plain"] = median_time([t for t, _, _ in plain])
        holder["durable"] = median_time([t for t, _, _ in durable])
        fired = {f for _, f, _ in plain + durable}
        assert len(fired) == 1, f"rule firings diverged: {fired}"
        holder["fired"] = fired.pop()
        holder["meta"] = durable[-1][2]

    benchmark.pedantic(run, rounds=1, iterations=1)

    overhead = holder["durable"] / holder["plain"]
    meta = holder["meta"]
    assert meta["wal_records"] >= N_ROWS   # every append journaled
    assert meta["wal_fsyncs"] == 0         # fsync="never"
    text = "\n".join([
        f"WAL overhead ({N_ROWS} transitions, {N_RULES} rules, "
        f"fsync=never)",
        f"in-memory {holder['plain']:.4f}s | "
        f"durable {holder['durable']:.4f}s | "
        f"overhead {overhead:.3f}x (bar {MAX_OVERHEAD}x)",
        f"{meta['wal_records']} records, {meta['wal_bytes']} bytes "
        f"logged, {holder['fired']} rule firings",
    ])
    emit("wal", text, {
        "network": "a-treat",
        "rules": N_RULES,
        "rows": N_ROWS,
        "repeats": REPEATS,
        "fsync": "never",
        "plain_s": holder["plain"],
        "durable_s": holder["durable"],
        "overhead": overhead,
        "max_overhead": MAX_OVERHEAD,
        "wal_records": meta["wal_records"],
        "wal_bytes": meta["wal_bytes"],
        "firings": holder["fired"],
    })
    assert overhead <= MAX_OVERHEAD, (
        f"durable journaling cost {overhead:.3f}x "
        f"(budget {MAX_OVERHEAD}x)")
