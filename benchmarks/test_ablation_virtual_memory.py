"""Ablation: virtual vs stored α-memories (paper section 4.2).

The paper's motivation for virtual α-memories: "if selection conditions
have low selectivity … α-memories will contain a large amount of data
that is redundant since it is already stored in base tables".  This bench
sweeps the selection predicate's selectivity on a 2000-row relation and
reports, for a stored and a virtual middle memory:

* the materialised α-memory entries (storage the virtual node saves);
* the per-token join-test time (the price the virtual node pays by
  scanning or probing the base relation instead).

Expected shape: storage savings grow linearly with the qualifying
fraction; token time is comparable when an index supports the join probe
(the "space for time" trade the paper describes).
"""

import time

import pytest

from repro import Database
from common import emit

ROWS = 2000
SELECTIVITIES = (0.05, 0.25, 0.50, 0.90)

RULE = ('define rule watch if emp.sal > {cutoff} '
        'and emp.dno = dept.dno and dept.name = "d1" '
        'then append to bench_log(name = emp.name)')


def build(selectivity: float, policy: str, with_index: bool = True):
    db = Database(virtual_policy=policy)
    db.execute_script("""
        create emp (name = text, sal = float8, dno = int4)
        create dept (dno = int4, name = text)
        create bench_log (name = text)
    """)
    emp = db.catalog.relation("emp")
    for i in range(ROWS):
        emp.insert((f"e{i}", float(i), i % 50))
    for d in range(50):
        db.catalog.relation("dept").insert((d, f"d{d}"))
    if with_index:
        db.execute("define index empdno on emp (dno) using hash")
    cutoff = ROWS * (1.0 - selectivity)
    db._rules_suspended = True
    db.execute(RULE.format(cutoff=cutoff))
    return db


def token_time(db, repeats: int = 100) -> float:
    """Time dept-side tokens, which join through the emp memory."""
    tids = []
    start = time.perf_counter()
    for _ in range(repeats):
        tids.append(db.hooks.insert("dept", (1, "d1")))
    elapsed = time.perf_counter() - start
    for tid in tids:
        db.hooks.delete("dept", tid)
    db.network.flush_dynamic()
    return elapsed / repeats


@pytest.mark.parametrize("selectivity", SELECTIVITIES)
@pytest.mark.parametrize("policy", ["never", "always"])
def test_dept_token_join(benchmark, selectivity, policy):
    db = build(selectivity, policy)
    tids = []

    def run():
        tids.append(db.hooks.insert("dept", (1, "d1")))

    benchmark.pedantic(run, rounds=50, iterations=1, warmup_rounds=2)
    for tid in tids:
        db.hooks.delete("dept", tid)


def test_virtual_memory_table(benchmark):
    holder = {}

    def run():
        rows = []
        for selectivity in SELECTIVITIES:
            stored = build(selectivity, "never")
            virtual = build(selectivity, "always")
            rows.append((
                selectivity,
                stored.network.memory_entry_count("watch"),
                virtual.network.memory_entry_count("watch"),
                token_time(stored),
                token_time(virtual),
            ))
        holder["rows"] = rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = holder["rows"]
    lines = [f"Virtual vs stored α-memories ({ROWS}-row emp, indexed "
             f"join attribute)",
             f"{'selectivity':>11} | {'stored entries':>14} | "
             f"{'virtual entries':>15} | {'stored token':>12} | "
             f"{'virtual token':>13}"]
    lines.append("-" * len(lines[1]))
    for sel, s_entries, v_entries, s_tok, v_tok in rows:
        lines.append(
            f"{sel:>11.2f} | {s_entries:>14} | {v_entries:>15} | "
            f"{s_tok * 1e6:>10.1f}us | {v_tok * 1e6:>11.1f}us")
    emit("ablation_virtual_memory", "\n".join(lines))
    # Shape: stored entries grow with selectivity; virtual stays at the
    # dept-memory-only level, saving the emp fraction entirely.
    stored_entries = [r[1] for r in rows]
    virtual_entries = [r[2] for r in rows]
    assert stored_entries[-1] > stored_entries[0]
    assert all(v < 5 for v in virtual_entries)
    assert stored_entries[-1] >= 0.9 * ROWS * SELECTIVITIES[-1]


def test_virtual_memory_unindexed_cost(benchmark):
    """Without an index on the join attribute the virtual node pays a
    full relation scan per probe — the optimisation question the paper
    poses at the end of section 4.2."""
    holder = {}

    def run():
        indexed = build(0.5, "always", with_index=True)
        unindexed = build(0.5, "always", with_index=False)
        holder["indexed"] = token_time(indexed, repeats=30)
        holder["unindexed"] = token_time(unindexed, repeats=30)

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Virtual α-memory probe cost: index scan vs sequential scan",
             f"{'access path':>12} | {'token time':>12}",
             "-" * 29,
             f"{'index':>12} | "
             f"{holder['indexed'] * 1e6:>10.1f}us",
             f"{'seq scan':>12} | "
             f"{holder['unindexed'] * 1e6:>10.1f}us"]
    emit("ablation_virtual_memory_index", "\n".join(lines))
    assert holder["unindexed"] > holder["indexed"]
