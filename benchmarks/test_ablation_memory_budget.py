"""Ablation: storage-budgeted memory materialization (paper §8).

"…the most worthy memory nodes would be materialized for the best
possible performance given the available storage."  This bench sweeps a
storage budget over a rule set with heterogeneous selectivities and
reports the α entries actually stored and the resulting token-burst
cost — the storage/time frontier the optimizer walks.
"""

import time

import pytest

from repro import Database
from repro.core.memory_optimizer import optimize_memories
from common import emit

ROWS = 800
BUDGETS = (0, 50, 400, 10000)


def build() -> Database:
    db = Database(virtual_policy="never")
    db.execute_script("""
        create big (a = int4, k = int4)
        create small (k = int4, tag = text)
        create log (a = int4)
    """)
    big = db.catalog.relation("big")
    for i in range(ROWS):
        big.insert((i, i % 25))
    for k in range(25):
        db.catalog.relation("small").insert((k, f"t{k}"))
    db._rules_suspended = True
    # three rules with very different memory sizes
    db.execute(f"define rule r_wide if big.a >= {ROWS // 10} "
               f"and big.k = small.k then append to log(a = big.a)")
    db.execute(f"define rule r_mid if big.a >= {ROWS - ROWS // 4} "
               f"and big.k = small.k then append to log(a = big.a)")
    db.execute(f"define rule r_thin if big.a >= {ROWS - 20} "
               f"and big.k = small.k then append to log(a = big.a)")
    return db


def burst(db, count: int = 30) -> float:
    tids = []
    start = time.perf_counter()
    for i in range(count):
        tids.append(db.hooks.insert("small", (i % 25, "probe")))
    elapsed = time.perf_counter() - start
    for tid in tids:
        db.hooks.delete("small", tid)
    return elapsed


@pytest.mark.parametrize("budget", BUDGETS)
def test_burst_under_budget(benchmark, budget):
    db = build()
    optimize_memories(db, budget_entries=budget)
    benchmark.pedantic(lambda: burst(db), rounds=5, warmup_rounds=1)


def test_memory_budget_table(benchmark):
    holder = {}

    def run():
        rows = []
        for budget in BUDGETS:
            db = build()
            plan = optimize_memories(db, budget_entries=budget)
            stored = db.network.memory_entry_count()
            cost = min(burst(db) for _ in range(5))
            rows.append((budget, stored,
                         len(plan.materialized()), cost))
        holder["rows"] = rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = holder["rows"]
    lines = [f"Storage-budgeted materialization ({ROWS}-row big relation, "
             f"3 rules; 30-token bursts)",
             f"{'budget':>7} | {'α entries':>9} | {'materialized':>12} | "
             f"{'burst time':>11}"]
    lines.append("-" * len(lines[1]))
    for budget, stored, materialized, cost in rows:
        lines.append(f"{budget:>7} | {stored:>9} | {materialized:>12} | "
                     f"{cost * 1000:>9.2f}ms")
    emit("ablation_memory_budget", "\n".join(lines))
    # Shape: stored entries are monotone in budget and never exceed it;
    # the fully-materialized end is the fastest or tied.
    for budget, stored, _, _ in rows:
        assert stored <= max(budget, 0) or budget == 0 and stored == 0
    entries = [r[1] for r in rows]
    assert entries == sorted(entries)
    assert rows[-1][3] <= rows[0][3] * 1.5
