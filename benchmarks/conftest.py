"""Benchmark-suite configuration: make ``common`` importable and collect
the paper-style result tables the benches print."""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RESULTS_DIR.mkdir(exist_ok=True)
