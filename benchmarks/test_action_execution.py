"""Rule action execution time (paper section 6, in-text result).

The paper reports "approximately 0.06 seconds to run the action of a
type 1, 2 or 3 rule in all cases" — i.e. the *act* phase cost is roughly
constant across rule types, because the action itself is the same
single-command append bound to the P-node regardless of how many tuple
variables the condition joined.  This bench fires one rule of each type
and measures the act phase (action planning + execution), checking that
flatness.
"""

import time

import pytest

from common import emit, prepared_database

TYPES = (1, 2, 3)


def _fire_once(db, tuple_variables: int) -> float:
    """Trigger one rule of the given type and time the act phase."""
    # Insert a probe that matches rule 0's interval; firing is live.
    db.execute('append emp(name="probe", age=30, sal=650.0, dno=1, '
               'jno=1)')
    # that append already fired the rule; time a second, pre-matched one
    db._rules_suspended = True
    db.execute('append emp(name="probe2", age=30, sal=650.0, dno=1, '
               'jno=1)')
    db._rules_suspended = False
    rule = db.manager.select_rule()
    assert rule is not None
    start = time.perf_counter()
    db._fire(rule)
    elapsed = time.perf_counter() - start
    db.manager.end_of_rule_processing()
    return elapsed


@pytest.mark.parametrize("tuple_variables", TYPES)
def test_act_phase(benchmark, tuple_variables):
    db = prepared_database(25, tuple_variables)

    def setup():
        db._rules_suspended = True
        db.execute('append emp(name="probe", age=30, sal=650.0, dno=1, '
                   'jno=1)')
        db._rules_suspended = False
        rule = db.manager.select_rule()
        return (rule,), {}

    def run(rule):
        db._fire(rule)

    benchmark.pedantic(run, setup=setup, rounds=20)


def test_action_time_constant_across_types(benchmark):
    """The paper's in-text claim: act-phase time is ~constant in the
    number of tuple variables of the rule condition."""
    holder = {}

    def run():
        times = {}
        for tuple_variables in TYPES:
            db = prepared_database(25, tuple_variables)
            samples = [_fire_once(db, tuple_variables)
                       for _ in range(10)]
            times[tuple_variables] = min(samples)
        holder["times"] = times

    benchmark.pedantic(run, rounds=1, iterations=1)
    times = holder["times"]
    lines = ["Rule action execution time by rule type (paper: ~0.06s "
             "constant)",
             f"{'tuple variables':>16} | {'act phase':>12}"]
    lines.append("-" * len(lines[1]))
    for tuple_variables, seconds in sorted(times.items()):
        lines.append(f"{tuple_variables:>16} | "
                     f"{seconds * 1000:>10.4f}ms")
    emit("action_execution", "\n".join(lines))
    # Constant-ish: the slowest type within 5x of the fastest (the
    # action is identical; only P-node width differs).
    assert max(times.values()) < 5 * min(times.values())
