"""Transition blocks: the §2.2.1 overhead claim.

"Programmers are encouraged to only put a block around groups of commands
which might violate integrity or consistency, since use of blocks does
incur some performance overhead."  The overhead in this engine (as in
Ariel) is Δ-set bookkeeping: inside a block, every re-modification of a
tuple must consult and update the [I, M] sets and emit retraction +
re-assertion token pairs, where separate transitions emit single-purpose
tokens against cleared Δ-sets.  A counter-effect also measured here: one
block runs ONE recognize-act cycle instead of one per command.
"""

import time

import pytest

from repro import Database
from common import emit

COMMANDS = 30


def build(with_rule: bool) -> Database:
    db = Database()
    db.execute("create t (a = int4, b = int4)")
    db.execute("create log (a = int4)")
    db.execute("append t(a = 0, b = 0)")
    if with_rule:
        db.execute("define rule watch on replace t(a) "
                   "then append to log(a = t.a)")
    return db


def run_separate(db) -> float:
    start = time.perf_counter()
    for i in range(COMMANDS):
        db.execute(f"replace t (a = {i + 1})")
    return time.perf_counter() - start


def run_block(db) -> float:
    body = " ".join(f"replace t (a = {i + 1})" for i in range(COMMANDS))
    start = time.perf_counter()
    db.execute(f"do {body} end")
    return time.perf_counter() - start


@pytest.mark.parametrize("mode", ["separate", "block"])
@pytest.mark.parametrize("rules", ["no-rules", "with-rule"])
def test_repeated_modification(benchmark, mode, rules):
    db = build(with_rule=(rules == "with-rule"))
    runner = run_separate if mode == "separate" else run_block
    benchmark.pedantic(lambda: runner(db), rounds=5, warmup_rounds=1)


def test_block_overhead_table(benchmark):
    holder = {}

    def run():
        rows = []
        for with_rule in (False, True):
            sep = min(run_separate(build(with_rule)) for _ in range(5))
            blk = min(run_block(build(with_rule)) for _ in range(5))
            rows.append((with_rule, sep, blk))
        holder["rows"] = rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{COMMANDS} repeated modifications of one tuple: separate "
             f"transitions vs one do…end block",
             f"{'rules':>10} | {'separate':>10} | {'block':>10}"]
    lines.append("-" * len(lines[1]))
    for with_rule, sep, blk in holder["rows"]:
        label = "1 on-rule" if with_rule else "none"
        lines.append(f"{label:>10} | {sep * 1000:>8.2f}ms | "
                     f"{blk * 1000:>8.2f}ms")
    emit("block_overhead", "\n".join(lines))
    # Both executions are correct; the relative cost depends on Δ-set
    # bookkeeping vs per-command cycle overhead.  Sanity: within 5x.
    for _, sep, blk in holder["rows"]:
        assert blk < sep * 5 and sep < blk * 5


def test_block_rule_firing_counts(benchmark):
    """Semantics, not speed: a block fires the on-replace rule once
    (the net logical event); separate transitions fire it per command."""
    holder = {}

    def run():
        separate = build(with_rule=True)
        run_separate(separate)
        block = build(with_rule=True)
        run_block(block)
        holder["separate"] = len(separate.relation_rows("log"))
        holder["block"] = len(block.relation_rows("log"))

    benchmark.pedantic(run, rounds=1, iterations=1)
    assert holder["separate"] == COMMANDS
    assert holder["block"] == 1
