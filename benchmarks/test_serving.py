"""Sustained evaluations/sec through the concurrent serving stack.

Boots the full front end — TCP server, JSON-lines protocol, sessions,
snapshot-gated reads, the serialized write queue — over the load
generator's demo rule base, and measures closed-loop prepared-
statement throughput at 1 and 4 concurrent clients (median of
``PERF_REPEATS`` runs each).  Results land in BENCH_serving.json.

The scaling gate uses :func:`common.parallel_speedup_bar`: on a
multi-core free-threaded build 4 clients must sustain the nominal 2x
the single-client rate; on a GIL build or a small box the bar degrades
to an overhead guard (concurrent serving must not *cost* more than
``clients/nominal`` over one client), and CI relaxes it further by
``CI_BAR_FACTOR``.  The emitted json always records ``cpu_count`` so a
reader can tell a real 2x from a 1-core overhead check.

Correctness rides along: every measured client count (1, 2, 4) runs a
mixed read/write workload on a durable database, and the engine state
it leaves — P-node contents, firing order, relations, WAL bytes —
must be identical to replaying the service's committed write order
serially on a fresh database.
"""

import pathlib
import tempfile

from common import (
    PERF_REPEATS, emit, median_time, parallel_speedup_bar)
from repro.serve import RuleServer
from repro.serve.loadgen import demo_database, run_load
from repro.serve.service import replay_serial

CLIENTS = 4
NOMINAL_SPEEDUP = 2.0
MIN_SPEEDUP = parallel_speedup_bar(NOMINAL_SPEEDUP, CLIENTS)
ROWS = 200
DURATION = 0.6
WRITE_RATIO = 0.1


def _pnode_snapshot(db):
    out = {}
    for name in db.network.rules:
        matches = set()
        for match in db.network.pnode(name).matches():
            matches.add(tuple(
                (var, entry.values, entry.old_values)
                for var, entry in match.bindings))
        out[name] = frozenset(matches)
    return out


def _state(db):
    return {
        "pnodes": _pnode_snapshot(db),
        "firings": [(r.rule_name, r.match_count)
                    for r in db.firing_log],
        "relations": {rel: sorted(db.relation_rows(rel))
                      for rel in ("emp", "audit")},
    }


def _measure(clients: int, durable_root: pathlib.Path) -> dict:
    """One load run against a fresh durable server; returns the
    summary plus the equivalence evidence."""
    live_dir = durable_root / f"live-c{clients}"
    server = RuleServer(db=demo_database(
        rows=ROWS, durable_path=live_dir, fsync="never"))
    host, port = server.start()
    try:
        summary = run_load(host, port, clients=clients,
                           duration=DURATION, rows=ROWS,
                           write_ratio=WRITE_RATIO)
        history = server.service.serial_history()
    finally:
        server.stop(close_db=True)
    assert summary["errors"] == [], summary["errors"]
    assert summary["ops"] > 0

    live_db = server.service.db
    replay_dir = durable_root / f"replay-c{clients}"
    replayed = demo_database(rows=ROWS, durable_path=replay_dir,
                             fsync="never")
    replay_serial(replayed, history)
    replayed.close()
    assert _state(replayed) == _state(live_db), \
        f"{clients}-client run diverged from its serial replay"
    assert (replay_dir / "wal.log").read_bytes() == \
        (live_dir / "wal.log").read_bytes(), \
        f"{clients}-client WAL differs from its serial replay"
    return summary


def test_serving_throughput_scales():
    rates: dict[int, float] = {}
    summaries: dict[int, dict] = {}
    with tempfile.TemporaryDirectory() as root:
        root = pathlib.Path(root)
        for clients in (1, 2, CLIENTS):
            repeats = PERF_REPEATS if clients in (1, CLIENTS) else 1
            samples = []
            for repeat in range(repeats):
                summary = _measure(
                    clients, root / f"r{repeat}")
                samples.append(summary["ops_per_sec"])
                summaries[clients] = summary
            # median_time() is just a median; rates are fine too
            rates[clients] = median_time(samples)

    speedup = rates[CLIENTS] / rates[1]
    lines = ["serving throughput (sustained evaluations/sec)",
             f"{'clients':>8} {'evals/sec':>12} {'speedup':>9}"]
    for clients, rate in sorted(rates.items()):
        lines.append(f"{clients:>8} {rate:>12.1f} "
                     f"{rate / rates[1]:>8.2f}x")
    lines.append(f"gate: {CLIENTS} clients >= {MIN_SPEEDUP:.2f}x "
                 f"of 1 client")
    emit("serving", "\n".join(lines), data={
        "rows": ROWS,
        "duration_s": DURATION,
        "write_ratio": WRITE_RATIO,
        "rates": {str(c): r for c, r in rates.items()},
        "speedup_4c": round(speedup, 3),
        "min_speedup": MIN_SPEEDUP,
        "reads": summaries[CLIENTS]["reads"],
        "writes": summaries[CLIENTS]["writes"],
    })
    assert speedup >= MIN_SPEEDUP, (
        f"{CLIENTS} concurrent clients sustained {speedup:.2f}x the "
        f"single-client rate; the gate on this host is "
        f"{MIN_SPEEDUP:.2f}x (see parallel_speedup_bar)")
