"""Ablation: Rete vs TREAT vs A-TREAT (paper sections 4.2 and 7).

Compares the three discrimination networks on the same rule set and
token stream, reporting per-token processing time and resident network
state (α entries; β partials for Rete).  Expected shape: Rete carries
the largest state (α + β), TREAT drops the β state, and A-TREAT's
virtual nodes drop most of the α state as well — the paper's storage
argument — while token times stay within a small factor of each other.
"""

import time

import pytest

from repro import Database
from common import emit

ROWS = 600


def build(network: str, policy):
    db = Database(network=network, virtual_policy=policy)
    db.execute_script("""
        create emp (name = text, sal = float8, dno = int4)
        create dept (dno = int4, name = text)
        create bench_log (name = text)
    """)
    emp = db.catalog.relation("emp")
    for i in range(ROWS):
        emp.insert((f"e{i}", float(i), i % 20))
    for d in range(20):
        db.catalog.relation("dept").insert((d, f"d{d}"))
    db.execute("define index empdno on emp (dno) using hash")
    db._rules_suspended = True
    # a moderately selective join rule: ~half of emp qualifies
    db.execute(f'define rule watch if emp.sal > {ROWS / 2} '
               f'and emp.dno = dept.dno and dept.name = "d3" '
               f'then append to bench_log(name = emp.name)')
    return db


CONFIGS = [
    ("rete", "never", "Rete"),
    ("treat", "never", "TREAT"),
    ("a-treat", "always", "A-TREAT(virtual)"),
]


def run_stream(db, burst: int = 40) -> float:
    """Insert/modify/delete a burst of emp tuples; returns elapsed."""
    start = time.perf_counter()
    tids = []
    for i in range(burst):
        tids.append(db.hooks.insert(
            "emp", (f"probe{i}", float(ROWS - i), i % 20)))
    for tid in tids[::2]:
        db.hooks.replace("emp", tid, ("probe*", float(ROWS + 1), 3))
    for tid in tids:
        db.hooks.delete("emp", tid)
    db.deltasets.clear()
    return time.perf_counter() - start


@pytest.mark.parametrize("network,policy,label", CONFIGS,
                         ids=[c[2] for c in CONFIGS])
def test_token_stream(benchmark, network, policy, label):
    db = build(network, policy)
    benchmark.pedantic(lambda: run_stream(db), rounds=10,
                       warmup_rounds=2)


def test_network_comparison_table(benchmark):
    holder = {}

    def run():
        rows = []
        for network, policy, label in CONFIGS:
            db = build(network, policy)
            alpha = db.network.memory_entry_count("watch")
            beta = (db.network.beta_entry_count("watch")
                    if network == "rete" else 0)
            samples = [run_stream(db) for _ in range(5)]
            rows.append((label, alpha, beta, min(samples)))
        holder["rows"] = rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = holder["rows"]
    lines = [f"Discrimination network comparison ({ROWS}-row emp, "
             f"one join rule, 40-token bursts)",
             f"{'network':>17} | {'α entries':>9} | {'β entries':>9} | "
             f"{'burst time':>11}"]
    lines.append("-" * len(lines[1]))
    for name, alpha, beta, seconds in rows:
        lines.append(f"{name:>17} | {alpha:>9} | {beta:>9} | "
                     f"{seconds * 1000:>9.2f}ms")
    emit("ablation_networks", "\n".join(lines))
    by_name = {name: (alpha, beta) for name, alpha, beta, _ in rows}
    rete_alpha, rete_beta = by_name["Rete"]
    treat_alpha, treat_beta = by_name["TREAT"]
    virt_alpha, virt_beta = by_name["A-TREAT(virtual)"]
    # Rete carries β state on top of the same α state as TREAT
    assert rete_beta > 0
    assert treat_beta == 0
    assert rete_alpha == treat_alpha
    # virtual α-memories eliminate the materialised α state
    assert virt_alpha < treat_alpha
    assert virt_alpha == 0
