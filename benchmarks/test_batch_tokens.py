"""Batched vs per-token propagation on a bulk append.

The set-oriented :meth:`~repro.core.network.DiscriminationNetwork
.process_tokens` path (paper §4.3's token machinery run over a whole
transition Δ-set at once) must beat routing the same Δ-set one token at
a time: the selection index is probed once per distinct anchor value
instead of once per tuple, the interval stabs and residual predicate
evaluations are memoized across the batch, and the per-insert call
chain is amortised.

Workload: a bulk append of ``N_ROWS`` tuples into a relation watched by
``N_RULES`` single-variable rules, each with an anchored salary interval
plus a residual age conjunct.  Salaries cycle over a limited distinct
set while every row carries a unique name — the adversarial shape for
naive whole-tuple caching, and exactly what the anchor-key probe cache
and position-projected residual memo are for.

Both the isolated propagation phase and the end-to-end bulk append are
measured (median of ``REPEATS`` fresh runs each — see the perf-gate
policy in ``common.py``); the acceptance bar is ≥2× propagation
throughput (relaxed under CI), with P-node contents verified identical.
"""

import time

from common import emit, median_time, speedup_bar
from repro import Database

N_RULES = 64          # ≥50 per the acceptance criteria
N_ROWS = 10_000       # ≥10k tuples bulk-appended
DISTINCT_SALARIES = 32
REPEATS = 3
MIN_SPEEDUP = speedup_bar(2.0)


def _rows():
    return [("bulk%05d" % i, 18 + (i % 12),
             1000.0 * (i % DISTINCT_SALARIES) + 400.0, 1, 1)
            for i in range(N_ROWS)]


def _prepared_database():
    db = Database(network="a-treat", batch_tokens=True)
    db.execute_script("""
        create emp (name = text, age = int4, sal = float8,
                    dno = int4, jno = int4)
        create bench_log (name = text)
    """)
    db._rules_suspended = True
    for i in range(N_RULES):
        low, high = 1000 * i, 1000 * i + 800
        db.execute(f"define rule batch_rule_{i} "
                   f"if {low} < emp.sal and emp.sal <= {high} "
                   f"and emp.age > 21 "
                   f"then append to bench_log(name = emp.name)")
    return db


def _pnode_total(db):
    return sum(len(db.network.pnode(name)) for name in db.network.rules)


def _measure_per_token(rows):
    """Seconds to route the bulk append's Δ-set one token at a time."""
    db = _prepared_database()
    db.hooks.insert_many("emp", rows)
    tokens = db.hooks.take_buffered_tokens()
    start = time.perf_counter()
    for token in tokens:
        db.manager.process_token(token)
    elapsed = time.perf_counter() - start
    return elapsed, _pnode_total(db)


def _measure_batched(rows):
    """Seconds to route the same Δ-set as one process_tokens batch."""
    db = _prepared_database()
    db.hooks.insert_many("emp", rows)
    start = time.perf_counter()
    db.hooks.flush_tokens()
    elapsed = time.perf_counter() - start
    assert db.network.batches_processed == 1
    return elapsed, _pnode_total(db)


def _measure_end_to_end(rows, batch):
    """Seconds for the whole bulk append (heap + Δ-sets + routing)."""
    db = _prepared_database()
    start = time.perf_counter()
    if batch:
        db.hooks.insert_many("emp", rows)
        db.hooks.flush_tokens()
    else:
        db.hooks.defer_routing = False
        for values in rows:
            db.hooks.insert("emp", values)
    elapsed = time.perf_counter() - start
    return elapsed, _pnode_total(db)


def test_batch_tokens(benchmark):
    rows = _rows()
    holder = {}

    def run():
        per_token = [_measure_per_token(rows) for _ in range(REPEATS)]
        batched = [_measure_batched(rows) for _ in range(REPEATS)]
        e2e_loop = [_measure_end_to_end(rows, batch=False)
                    for _ in range(REPEATS)]
        e2e_batch = [_measure_end_to_end(rows, batch=True)
                     for _ in range(REPEATS)]
        holder["per_token"] = median_time([t for t, _ in per_token])
        holder["batched"] = median_time([t for t, _ in batched])
        holder["e2e_loop"] = median_time([t for t, _ in e2e_loop])
        holder["e2e_batch"] = median_time([t for t, _ in e2e_batch])
        totals = {total for _, total in
                  per_token + batched + e2e_loop + e2e_batch}
        assert len(totals) == 1, f"P-node contents diverged: {totals}"
        holder["pnode_total"] = totals.pop()

    benchmark.pedantic(run, rounds=1, iterations=1)

    speedup = holder["per_token"] / holder["batched"]
    e2e_speedup = holder["e2e_loop"] / holder["e2e_batch"]
    text = "\n".join([
        "Batched token propagation "
        f"({N_ROWS} tuples, {N_RULES} rules)",
        f"propagation  per-token {holder['per_token']:.4f}s | "
        f"batched {holder['batched']:.4f}s | {speedup:.2f}x",
        f"end-to-end   per-token {holder['e2e_loop']:.4f}s | "
        f"batched {holder['e2e_batch']:.4f}s | {e2e_speedup:.2f}x",
        f"P-node entries either way: {holder['pnode_total']}",
    ])
    emit("batch_tokens", text, {
        "network": "a-treat",
        "rules": N_RULES,
        "rows": N_ROWS,
        "distinct_salaries": DISTINCT_SALARIES,
        "repeats": REPEATS,
        "per_token_propagation_s": holder["per_token"],
        "batched_propagation_s": holder["batched"],
        "propagation_speedup": speedup,
        "per_token_end_to_end_s": holder["e2e_loop"],
        "batched_end_to_end_s": holder["e2e_batch"],
        "end_to_end_speedup": e2e_speedup,
        "pnode_total": holder["pnode_total"],
    })
    assert speedup >= MIN_SPEEDUP, (
        f"batched propagation only {speedup:.2f}x faster "
        f"(need >= {MIN_SPEEDUP}x)")
