"""Sharded parallel propagation vs serial on a large bulk append.

The sharded path partitions a transition Δ-set by (relation,
anchor-key) across a worker pool, runs the read-only match phase
concurrently, then merges the per-shard decisions back in original
token order (see docs/ARCHITECTURE.md, "Sharded propagation").  This
benchmark measures the scaling curve — serial (workers=0) against
workers ∈ {1, 2, 4} on the same Δ-set — and records it in
BENCH_parallel.json alongside ``cpu_count`` so the numbers are honest
about the host.

Workload: the batch-propagation shape from test_batch_tokens.py scaled
to ``N_ROWS`` = 100k tuples against ``N_RULES`` single-variable rules,
each with an anchored salary interval plus a residual age conjunct.

The gate uses :func:`common.parallel_speedup_bar`: on a multi-core
free-threaded build the 4-worker run must clear the nominal 2x; on a
GIL build (or a 1-core box) threads cannot overlap bytecode, so the
bar degrades to an overhead guard — sharding must not cost more than
``workers/nominal`` over serial.  Correctness is asserted exactly:
every worker count must produce identical P-node totals.
"""

import time

from common import emit, median_time, parallel_speedup_bar
from repro import Database

N_RULES = 64
N_ROWS = 100_000
DISTINCT_SALARIES = 32
REPEATS = 3
WORKER_COUNTS = (1, 2, 4)
NOMINAL_SPEEDUP = 2.0
MIN_SPEEDUP_AT_4 = parallel_speedup_bar(NOMINAL_SPEEDUP, 4)


def _rows():
    return [("bulk%06d" % i, 18 + (i % 12),
             1000.0 * (i % DISTINCT_SALARIES) + 400.0, 1, 1)
            for i in range(N_ROWS)]


def _prepared_database(workers):
    db = Database(network="a-treat", batch_tokens=True,
                  parallel_workers=workers)
    db.execute_script("""
        create emp (name = text, age = int4, sal = float8,
                    dno = int4, jno = int4)
        create bench_log (name = text)
    """)
    db._rules_suspended = True
    for i in range(N_RULES):
        low, high = 1000 * i, 1000 * i + 800
        db.execute(f"define rule par_rule_{i} "
                   f"if {low} < emp.sal and emp.sal <= {high} "
                   f"and emp.age > 21 "
                   f"then append to bench_log(name = emp.name)")
    return db


def _pnode_total(db):
    return sum(len(db.network.pnode(name)) for name in db.network.rules)


def _measure(rows, workers):
    """Seconds to route the bulk append's Δ-set at a worker count
    (0 = the serial reference path)."""
    db = _prepared_database(workers)
    db.hooks.insert_many("emp", rows)
    start = time.perf_counter()
    db.hooks.flush_tokens()
    elapsed = time.perf_counter() - start
    if workers:
        assert db.stats.get("shard.batches") >= 1, \
            "parallel run never took the sharded path"
    total = _pnode_total(db)
    db.close()
    return elapsed, total


def test_parallel_tokens(benchmark):
    rows = _rows()
    holder = {}

    def run():
        times = {}
        totals = set()
        for workers in (0,) + WORKER_COUNTS:
            samples = [_measure(rows, workers) for _ in range(REPEATS)]
            times[workers] = median_time([t for t, _ in samples])
            totals.update(total for _, total in samples)
        assert len(totals) == 1, f"P-node contents diverged: {totals}"
        holder["times"] = times
        holder["pnode_total"] = totals.pop()

    benchmark.pedantic(run, rounds=1, iterations=1)

    times = holder["times"]
    serial = times[0]
    speedups = {w: serial / times[w] for w in WORKER_COUNTS}
    lines = [f"Sharded parallel propagation "
             f"({N_ROWS} tuples, {N_RULES} rules)",
             f"serial (workers=0)  {serial:.4f}s"]
    for w in WORKER_COUNTS:
        lines.append(f"workers={w}           {times[w]:.4f}s | "
                     f"{speedups[w]:.2f}x")
    lines.append(f"P-node entries at every worker count: "
                 f"{holder['pnode_total']}")
    emit("parallel", "\n".join(lines), {
        "network": "a-treat",
        "rules": N_RULES,
        "rows": N_ROWS,
        "distinct_salaries": DISTINCT_SALARIES,
        "repeats": REPEATS,
        "serial_propagation_s": serial,
        "propagation_s": {str(w): times[w] for w in WORKER_COUNTS},
        "speedup": {str(w): speedups[w] for w in WORKER_COUNTS},
        "speedup_bar_at_4": MIN_SPEEDUP_AT_4,
        "pnode_total": holder["pnode_total"],
    })
    assert speedups[4] >= MIN_SPEEDUP_AT_4, (
        f"4-worker sharded propagation at {speedups[4]:.2f}x "
        f"vs serial (need >= {MIN_SPEEDUP_AT_4:.2f}x on this host)")
