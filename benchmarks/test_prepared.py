"""Prepared statements vs ad-hoc text on an OLTP workload.

The prepared-statement path pays parse → analyze → plan once per
statement shape and then executes the cached plan with a per-call
parameter vector; the ad-hoc path re-runs the whole pipeline for every
command text.  Workload: ``N_OPS`` operations against an ``account``
relation with a hash index on ``id`` and ``N_RULES`` active
balance-interval rules — alternating parameterized appends and indexed
point retrieves, the classic OLTP shape.  The ad-hoc side runs with the
transparent statement cache disabled (every command text is unique
anyway, so the cache could only add overhead): it is exactly the
pre-existing pipeline.

Both sides produce identical query results, final table contents and
rule firings (asserted).  Timing is the median of ``REPEATS`` fresh
runs per side (perf-gate policy in ``common.py``); the acceptance bar
is ≥3× throughput (relaxed under CI).

A second micro-measurement isolates the per-row binding-reuse
optimization (``Bindings.rebind`` mutating one environment in place
instead of copying three dicts per scanned row): the same scan plan is
driven with ``reuse`` off and on.
"""

import time

from common import emit, median_time, speedup_bar
from repro import Database
from repro.lang.expr import Bindings
from repro.lang.parser import parse_command

N_OPS = 10_000            # total operations (half appends, half reads)
N_ACCOUNTS = 2_000        # pre-loaded rows
N_RULES = 10              # active balance-interval rules
REPEATS = 3
MIN_SPEEDUP = speedup_bar(3.0)

APPEND = 'append account(id = $id, owner = $owner, balance = $balance)'
RETRIEVE = ('retrieve (account.owner, account.balance) '
            'where account.id = $id')


def _make_database(statement_cache: bool) -> Database:
    db = Database(statement_cache_size=128 if statement_cache else 0)
    db.execute_script("""
        create account (id = int4, owner = text, balance = float8)
        create audit_log (id = int4, balance = float8)
    """)
    db.execute('define index account_id on account (id) using hash')
    for i in range(N_RULES):
        # sparse intervals: only balances near 100*i + 50 match
        low, high = 100.0 * i + 50.0, 100.0 * i + 51.0
        db.execute(f'define rule audit_{i} '
                   f'if {low} <= account.balance '
                   f'and account.balance < {high} '
                   f'then append to audit_log(id = account.id, '
                   f'balance = account.balance)')
    rows = [(i, "owner%05d" % i, float(i % 997)) for i in range(N_ACCOUNTS)]
    db.bulk_append("account", rows)
    return db


def _ops():
    """The operation stream: (kind, id, owner, balance) tuples."""
    out = []
    for i in range(N_OPS // 2):
        new_id = N_ACCOUNTS + i
        out.append(("append", new_id, "new%05d" % i, float(i % 997)))
        out.append(("read", (new_id * 7919) % (N_ACCOUNTS + i + 1),
                    None, None))
    return out


def _state(db: Database):
    """Everything that must match between the two sides."""
    return (sorted(db.relation_rows("account")),
            sorted(db.relation_rows("audit_log")),
            db.firings)


def _run_adhoc(ops):
    """Every operation as freshly formatted command text."""
    db = _make_database(statement_cache=False)
    reads = []
    start = time.perf_counter()
    for kind, ident, owner, balance in ops:
        if kind == "append":
            db.execute(f'append account(id = {ident}, '
                       f'owner = "{owner}", balance = {balance})')
        else:
            reads.append(db.execute(
                f'retrieve (account.owner, account.balance) '
                f'where account.id = {ident}').rows)
    elapsed = time.perf_counter() - start
    return elapsed, reads, _state(db)


def _run_prepared(ops):
    """The same operations through two prepared statements."""
    db = _make_database(statement_cache=False)
    append = db.prepare(APPEND)
    retrieve = db.prepare(RETRIEVE)
    reads = []
    start = time.perf_counter()
    for kind, ident, owner, balance in ops:
        if kind == "append":
            append.execute(id=ident, owner=owner, balance=balance)
        else:
            reads.append(retrieve.execute(id=ident).rows)
    elapsed = time.perf_counter() - start
    return elapsed, reads, _state(db), (append.replans, retrieve.replans)


def _measure_binding_reuse():
    """Seconds to drive one seq-scan plan over the account table with
    per-row copies vs in-place rebinding, median of REPEATS."""
    db = _make_database(statement_cache=False)
    planned = db.optimizer.plan_command(db.analyzer.analyze(
        parse_command(
            'retrieve (account.owner) where account.balance >= 0')))

    def drive(reuse):
        start = time.perf_counter()
        count = 0
        for _ in planned.plan.rows(db.context, Bindings(), reuse):
            count += 1
        return time.perf_counter() - start, count

    copies, counts_a, reuses, counts_b = [], set(), [], set()
    for _ in range(REPEATS):
        t, n = drive(False)
        copies.append(t)
        counts_a.add(n)
        t, n = drive(True)
        reuses.append(t)
        counts_b.add(n)
    assert counts_a == counts_b, "reuse changed the row count"
    return median_time(copies), median_time(reuses)


def test_prepared(benchmark):
    ops = _ops()
    holder = {}

    def run():
        adhoc_runs = [_run_adhoc(ops) for _ in range(REPEATS)]
        prepared_runs = [_run_prepared(ops) for _ in range(REPEATS)]
        # correctness first: identical reads, contents and firings
        reference_reads = adhoc_runs[0][1]
        reference_state = adhoc_runs[0][2]
        for elapsed, reads, state in adhoc_runs:
            assert reads == reference_reads
            assert state[:2] == reference_state[:2]
        for elapsed, reads, state, replans in prepared_runs:
            assert reads == reference_reads, "prepared reads diverged"
            assert state[:2] == reference_state[:2], \
                "prepared final state diverged"
            assert replans == (1, 1), f"unexpected replans: {replans}"
        # ad-hoc firings accumulate per run in fresh dbs; compare per-run
        assert ({s[2] for *_, s in adhoc_runs}
                == {s[2] for *_, s, _ in prepared_runs}), \
            "rule firing counts diverged"
        holder["adhoc"] = median_time([t for t, *_ in adhoc_runs])
        holder["prepared"] = median_time([t for t, *_ in prepared_runs])
        holder["bind_copy"], holder["bind_reuse"] = \
            _measure_binding_reuse()

    benchmark.pedantic(run, rounds=1, iterations=1)

    speedup = holder["adhoc"] / holder["prepared"]
    reuse_speedup = holder["bind_copy"] / holder["bind_reuse"]
    ops_s = N_OPS / holder["prepared"]
    text = "\n".join([
        f"Prepared statements ({N_OPS} ops: parameterized appends + "
        f"indexed retrieves, {N_RULES} active rules)",
        f"ad-hoc   {holder['adhoc']:.4f}s | "
        f"{N_OPS / holder['adhoc']:.0f} ops/s",
        f"prepared {holder['prepared']:.4f}s | {ops_s:.0f} ops/s | "
        f"{speedup:.2f}x",
        f"binding reuse: copy {holder['bind_copy'] * 1000:.3f}ms | "
        f"rebind {holder['bind_reuse'] * 1000:.3f}ms | "
        f"{reuse_speedup:.2f}x per scan",
    ])
    emit("prepared", text, {
        "ops": N_OPS,
        "accounts": N_ACCOUNTS,
        "rules": N_RULES,
        "repeats": REPEATS,
        "adhoc_s": holder["adhoc"],
        "prepared_s": holder["prepared"],
        "speedup": speedup,
        "adhoc_ops_per_s": N_OPS / holder["adhoc"],
        "prepared_ops_per_s": ops_s,
        "binding_copy_scan_s": holder["bind_copy"],
        "binding_reuse_scan_s": holder["bind_reuse"],
        "binding_reuse_speedup": reuse_speedup,
    })
    assert speedup >= MIN_SPEEDUP, (
        f"prepared execution only {speedup:.2f}x faster "
        f"(need >= {MIN_SPEEDUP}x)")
