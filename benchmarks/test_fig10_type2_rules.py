"""Figure 10: install / activate / token-test times, 2-tuple-variable
rules (paper section 6).

Type 2 rules add the join ``emp.dno = dept.dno``: activation now also
loads a second α-memory and runs a two-way join to prime the P-node, and
each matching token pays one TREAT join step.
"""

import pytest

from common import (
    RULE_COUNTS, activate_rules, bench_table_once, bench_token_test,
    figure_table, install_rules, make_database)

TYPE = 2


@pytest.mark.parametrize("count", RULE_COUNTS)
def test_installation(benchmark, count):
    def setup():
        return (make_database(),), {}

    def run(db):
        install_rules(db, count, TYPE)

    benchmark.pedantic(run, setup=setup, rounds=3)


@pytest.mark.parametrize("count", RULE_COUNTS)
def test_activation(benchmark, count):
    def setup():
        db = make_database()
        db._rules_suspended = True
        install_rules(db, count, TYPE)
        return (db,), {}

    def run(db):
        activate_rules(db, count, TYPE)

    benchmark.pedantic(run, setup=setup, rounds=3)


@pytest.mark.parametrize("count", RULE_COUNTS)
def test_token_test(benchmark, count):
    bench_token_test(benchmark, count, TYPE)


def test_figure10_table(benchmark):
    """Regenerate the paper's Figure 10 table."""

    def check(rows):
        tokens = [r[3] for r in rows]
        assert tokens[-1] < tokens[0] * 4

    bench_table_once(benchmark, lambda: figure_table(TYPE), "fig10",
                     "Figure 10: two-tuple-variable rules (seconds)",
                     check,
                     meta={"network": "a-treat", "tuple_variables": TYPE})
