"""Ablation: always-reoptimize vs cached rule-action plans (paper §5.3).

Ariel "uses a strategy called always reoptimize that produces all plans
for execution of rule actions at rule fire time"; pre-planning
alternatives save the optimizer call but "are all subject to errors where
they run non-optimal plans" and must track plan/schema dependencies.
This bench measures the firing cost of a join-action rule under both
strategies, and demonstrates the stale-plan hazard always-reoptimize
avoids: after an index appears, the reoptimizing strategy switches to it
immediately.
"""

import time

import pytest

from repro import Database
from repro.planner.plans import plan_operators
from common import emit

FIRINGS = 60


def build(cache: bool) -> Database:
    db = Database(cache_action_plans=cache)
    db.execute_script("""
        create ticket (tno = int4, dno = int4)
        create dept (dno = int4, name = text)
        create routed (tno = int4, dname = text)
    """)
    for d in range(40):
        db.execute(f'append dept(dno={d}, name="d{d}")')
    db.execute("define rule route on append ticket "
               "then append to routed(tno = ticket.tno, "
               "dname = dept.name) where ticket.dno = dept.dno")
    return db


def fire_many(db: Database, count: int = FIRINGS) -> float:
    start = time.perf_counter()
    for i in range(count):
        db.execute(f"append ticket(tno={i}, dno={i % 40})")
    return time.perf_counter() - start


@pytest.mark.parametrize("cache", [False, True],
                         ids=["always-reoptimize", "cached-plans"])
def test_firing_cost(benchmark, cache):
    def setup():
        return (build(cache),), {}

    benchmark.pedantic(lambda db: fire_many(db), setup=setup, rounds=3)


def test_plan_caching_table(benchmark):
    holder = {}

    def run():
        reopt = build(cache=False)
        cached = build(cache=True)
        holder["reopt_time"] = fire_many(reopt)
        holder["cached_time"] = fire_many(cached)
        holder["reopt_plans"] = reopt.action_planner.plans_built
        holder["cached_plans"] = cached.action_planner.plans_built
    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"Rule action planning strategies over {FIRINGS} firings",
             f"{'strategy':>18} | {'total time':>11} | "
             f"{'optimizer calls':>15}",
             "-" * 52,
             f"{'always reoptimize':>18} | "
             f"{holder['reopt_time'] * 1000:>9.2f}ms | "
             f"{holder['reopt_plans']:>15}",
             f"{'cached plans':>18} | "
             f"{holder['cached_time'] * 1000:>9.2f}ms | "
             f"{holder['cached_plans']:>15}"]
    emit("ablation_plan_caching", "\n".join(lines))
    assert holder["reopt_plans"] == FIRINGS
    assert holder["cached_plans"] == 1


def test_reoptimize_adapts_to_new_index(benchmark):
    """The correctness half of the trade-off: after defining an index on
    the action's join attribute, always-reoptimize uses it on the next
    firing; the cached strategy only recovers because DDL invalidates
    its cache (the dependency tracking the paper says pre-planning
    strategies must implement)."""
    holder = {}

    def run():
        db = build(cache=False)
        db.execute("append ticket(tno=0, dno=0)")
        db.execute("define index deptdno on dept (dno) using hash")
        # capture the plan for the next firing
        rule = db.manager.rule("route").compiled
        from repro.core.pnode import FrozenMatches
        matches = FrozenMatches("route", rule.variables, [])
        plans = db.action_planner.plan_firing(rule, matches)
        holder["ops"] = plan_operators(plans[0].planned.plan)
    benchmark.pedantic(run, rounds=1, iterations=1)
    assert "IndexProbe" in holder["ops"]
