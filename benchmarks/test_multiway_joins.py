"""Leapfrog triejoin vs the pairwise probe chain on a triangle query.

The adversarial shape for *any* pairwise order is the classic triangle
``r(a,b) ⋈ s(b,c) ⋈ t(c,a)`` with heavy dangling intermediates: each
token's ``b`` bucket in ``s`` fans out over ``K`` candidate ``c`` values
that ``t`` later rejects, and symmetrically each candidate ``c`` in
``t`` fans out over junk ``a`` values — whichever second relation the
pairwise chain extends into first, it enumerates ~K·F partials per
token before the third relation prunes them.  The worst-case-optimal
step instead intersects the sorted ``c`` key sets of the restricted
``s`` and ``t`` views by leapfrogging, touching O(K) keys to find the
single agreeing value.

Both measurements run the same engine build; only ``join_mode``
differs (forced ``"pairwise"`` vs forced ``"multiway"``).  Median of
``REPEATS`` fresh runs each, per the perf-gate policy in ``common.py``;
the bar is ≥3× (relaxed under CI) with P-node match sets verified
identical and the auto planner asserted to pick multiway on its own.
"""

import time

from common import PERF_REPEATS, emit, median_time, speedup_bar
from repro import Database

N_TOKENS = 200        # r-rows routed through the network
K = 50                # per-bucket fan-out in s and t
F = 50                # junk rows behind each dangling candidate
B = 10                # distinct b buckets the tokens hash into
MIN_SPEEDUP = speedup_bar(3.0)

TRIANGLE_RULE = (
    "define rule triangle "
    "if e1.b = e2.b and e2.c = e3.c and e3.a = e1.a "
    "from e1 in r, e2 in s, e3 in t "
    "then append to bench_log(a = e1.a)")


def _token_rows():
    return [(i, i % B) for i in range(N_TOKENS)]


def _prepared_database(join_mode: str):
    db = Database(network="a-treat", virtual_policy="never",
                  batch_tokens=True, join_mode=join_mode)
    db.execute_script("""
        create r (a = int4, b = int4)
        create s (b = int4, c = int4)
        create t (c = int4, a = int4)
        create bench_log (a = int4)
    """)
    s_rows, t_rows = [], []
    for b in range(B):
        # K dangling candidates c in [0, K) that t never closes for
        # this b's tokens, plus the single closing row at c = 2K
        s_rows.extend((b, c) for c in range(K))
        s_rows.append((b, 2 * K))
    for c in range(K, 2 * K):
        # junk behind the other direction: distinct b values so the
        # s-side probe stays empty, heavy a fan-out on the t side
        s_rows.extend((10_000 + c * F + j, c) for j in range(F))
    for a in range(N_TOKENS):
        t_rows.extend((c, a) for c in range(K, 2 * K))
        t_rows.append((2 * K, a))         # the closing row
    for c in range(K):
        t_rows.extend((c, 10_000 + c * F + j) for j in range(F))
    db.bulk_append("s", s_rows)
    db.bulk_append("t", t_rows)
    db._rules_suspended = True
    db.execute(TRIANGLE_RULE)
    return db


def _match_set(db):
    return sorted(
        tuple(sorted((var, entry.values) for var, entry in m.bindings))
        for m in db.network.pnode("triangle").matches())


def _measure(rows, join_mode: str):
    """Seconds to route the token stream under one join algorithm."""
    db = _prepared_database(join_mode)
    start = time.perf_counter()
    db.bulk_append("r", rows)
    elapsed = time.perf_counter() - start
    return elapsed, _match_set(db)


def test_multiway_joins(benchmark):
    rows = _token_rows()
    holder = {}

    def run():
        pairwise = [_measure(rows, "pairwise")
                    for _ in range(PERF_REPEATS)]
        multiway = [_measure(rows, "multiway")
                    for _ in range(PERF_REPEATS)]
        holder["pairwise"] = median_time([t for t, _ in pairwise])
        holder["multiway"] = median_time([t for t, _ in multiway])
        matches = [m for _, m in pairwise + multiway]
        assert all(m == matches[0] for m in matches), \
            "join algorithm changed the match set"
        assert len(matches[0]) == N_TOKENS, \
            "every token should close exactly one triangle"
        holder["matches"] = len(matches[0])

    benchmark.pedantic(run, rounds=1, iterations=1)

    # the auto planner must choose multiway for this shape on its own
    auto_db = _prepared_database("auto")
    auto_db.bulk_append("r", rows[:5])
    assert auto_db.network.stats.get("joins.multiway_planned") >= 1, \
        "auto mode failed to plan the triangle as a multiway join"
    assert auto_db.network.stats.get("joins.leapfrog_seeks") >= 1

    speedup = holder["pairwise"] / holder["multiway"]
    text = "\n".join([
        f"Triangle join, {N_TOKENS} tokens "
        f"(fan-out K={K}, junk depth F={F}, {B} buckets)",
        f"pairwise chain     {holder['pairwise']:.4f}s",
        f"leapfrog triejoin  {holder['multiway']:.4f}s | "
        f"{speedup:.2f}x",
        f"P-node matches either way: {holder['matches']}",
    ])
    emit("multiway", text, {
        "network": "a-treat",
        "tokens": N_TOKENS,
        "fanout_k": K,
        "junk_f": F,
        "buckets": B,
        "repeats": PERF_REPEATS,
        "pairwise_s": holder["pairwise"],
        "multiway_s": holder["multiway"],
        "speedup": speedup,
        "pnode_matches": holder["matches"],
    })
    assert speedup >= MIN_SPEEDUP, (
        f"leapfrog triejoin only {speedup:.2f}x faster "
        f"(need >= {MIN_SPEEDUP}x)")
