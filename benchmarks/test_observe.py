"""Counter overhead gate: engine counters must stay (nearly) free.

The observability layer threads an :class:`~repro.observe.EngineStats`
registry through every hot path — selection-index probes, α-memory
maintenance, P-node transitions, token routing, agenda selection.  Each
bump is a guarded dict increment; this benchmark holds the layer to its
budget: with counters *enabled*, the batch-token propagation workload
(the same shape as ``test_batch_tokens.py``) must run within
``MAX_OVERHEAD`` of the same workload with counters *disabled*.

Medians of ``REPEATS`` fresh runs on both sides (perf-gate policy in
``common.py``); under CI the bar is relaxed because shared runners make
single-digit-percent comparisons noisy.  The run also emits the final
counter snapshot via :meth:`EngineStats.to_json` into
``BENCH_observe.json``, alongside the other BENCH artifacts.
"""

import json
import time

from common import emit, median_time, running_in_ci
from repro import Database

N_RULES = 64
N_ROWS = 10_000
DISTINCT_SALARIES = 32
REPEATS = 5
#: counters may cost at most 5% on the batched propagation workload
MAX_OVERHEAD = 1.25 if running_in_ci() else 1.05


def _rows():
    return [("bulk%05d" % i, 18 + (i % 12),
             1000.0 * (i % DISTINCT_SALARIES) + 400.0, 1, 1)
            for i in range(N_ROWS)]


def _prepared_database(counters_enabled):
    db = Database(network="a-treat", batch_tokens=True)
    db.stats.enabled = counters_enabled
    db.execute_script("""
        create emp (name = text, age = int4, sal = float8,
                    dno = int4, jno = int4)
        create bench_log (name = text)
    """)
    db._rules_suspended = True
    for i in range(N_RULES):
        low, high = 1000 * i, 1000 * i + 800
        db.execute(f"define rule observe_rule_{i} "
                   f"if {low} < emp.sal and emp.sal <= {high} "
                   f"and emp.age > 21 "
                   f"then append to bench_log(name = emp.name)")
    return db


def _measure(rows, counters_enabled):
    """(seconds to flush the batch, final counter snapshot)."""
    db = _prepared_database(counters_enabled)
    db.hooks.insert_many("emp", rows)
    start = time.perf_counter()
    db.hooks.flush_tokens()
    elapsed = time.perf_counter() - start
    pnode_total = sum(len(db.network.pnode(name))
                      for name in db.network.rules)
    return elapsed, pnode_total, db.stats


def test_observe_overhead(benchmark):
    rows = _rows()
    holder = {}

    def run():
        enabled = [_measure(rows, True) for _ in range(REPEATS)]
        disabled = [_measure(rows, False) for _ in range(REPEATS)]
        holder["enabled"] = median_time([t for t, _, _ in enabled])
        holder["disabled"] = median_time([t for t, _, _ in disabled])
        totals = {total for _, total, _ in enabled + disabled}
        assert len(totals) == 1, f"P-node contents diverged: {totals}"
        holder["pnode_total"] = totals.pop()
        stats = enabled[-1][2]
        assert stats.get("tokens.routed") == N_ROWS
        assert stats.get("selection.probes") > 0
        assert stats.get("pnode.inserts") == holder["pnode_total"]
        # counters off => nothing recorded
        assert disabled[-1][2].snapshot() == {}
        holder["snapshot_json"] = stats.to_json(
            workload="batch_tokens", rules=N_RULES, rows=N_ROWS)

    benchmark.pedantic(run, rounds=1, iterations=1)

    overhead = holder["enabled"] / holder["disabled"]
    snapshot = json.loads(holder["snapshot_json"])
    text = "\n".join([
        f"Counter overhead ({N_ROWS} tuples, {N_RULES} rules)",
        f"counters on  {holder['enabled']:.4f}s | "
        f"counters off {holder['disabled']:.4f}s | "
        f"overhead {overhead:.3f}x (bar {MAX_OVERHEAD}x)",
        f"{len(snapshot['counters'])} distinct counters recorded",
    ])
    emit("observe", text, {
        "network": "a-treat",
        "rules": N_RULES,
        "rows": N_ROWS,
        "repeats": REPEATS,
        "enabled_s": holder["enabled"],
        "disabled_s": holder["disabled"],
        "overhead": overhead,
        "max_overhead": MAX_OVERHEAD,
        "pnode_total": holder["pnode_total"],
        "stats": snapshot,
    })
    assert overhead <= MAX_OVERHEAD, (
        f"counters cost {overhead:.3f}x "
        f"(budget {MAX_OVERHEAD}x)")
