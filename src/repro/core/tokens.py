"""Tokens: the unit of change flowing through the discrimination network.

Ariel generalises the production-system token to four kinds (paper
section 4.3.3):

* ``+``  — insertion of a new tuple value;
* ``−``  — deletion of a tuple value;
* ``Δ+`` — insertion of a *transition* (new, old) pair;
* ``Δ−`` — deletion of a previously inserted transition pair.

Every token may carry an *event specifier* — ``append``, ``delete`` or
``replace(target-list)`` — naming the logical event that created it; a
``−`` token from the first in-transition modification of a pre-existing
tuple carries none (paper §4.3.1 case 3).  "On-conditions in the
top-level discrimination network are the only conditions that ever
examine the event-specifier on a token."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.lang.ast_nodes import EventKind
from repro.storage.tuples import TupleId


class TokenKind(enum.Enum):
    """The four token kinds of paper section 4.3.3."""

    PLUS = "+"
    MINUS = "-"
    DELTA_PLUS = "Δ+"
    DELTA_MINUS = "Δ-"

    @property
    def is_delta(self) -> bool:
        return self is TokenKind.DELTA_PLUS or self is TokenKind.DELTA_MINUS

    @property
    def is_insertion(self) -> bool:
        """True for the kinds that add data (+ and Δ+)."""
        return self is TokenKind.PLUS or self is TokenKind.DELTA_PLUS


@dataclass(frozen=True)
class EventSpecifier:
    """``append``, ``delete`` or ``replace(target-list)``.

    ``attributes`` (replace only) names the fields whose values changed —
    computed against the value the tuple had at the *beginning of the
    transition*, so the specifier reflects the logical net effect.
    """

    kind: EventKind
    attributes: tuple[str, ...] = ()

    def __str__(self) -> str:
        if self.kind is EventKind.REPLACE and self.attributes:
            return f"replace({', '.join(self.attributes)})"
        return self.kind.value


@dataclass(frozen=True)
class Token:
    """One change notification.

    ``values`` is the tuple value the token carries (the *new* half for Δ
    tokens); ``old_values`` is the value at the beginning of the
    transition, present only on Δ tokens.  ``event`` is the event
    specifier, or None for the plain ``−`` of case 3/4.
    """

    kind: TokenKind
    relation: str
    tid: TupleId
    values: tuple
    old_values: tuple | None = None
    event: EventSpecifier | None = None

    def __post_init__(self):
        kind = self.kind
        delta = (kind is TokenKind.DELTA_PLUS
                 or kind is TokenKind.DELTA_MINUS)
        if delta:
            if self.old_values is None:
                raise ValueError(f"{kind.value} token needs old_values")
        elif self.old_values is not None:
            raise ValueError(
                f"{kind.value} token must not carry old_values")

    def __str__(self) -> str:
        event = f" on {self.event}" if self.event else ""
        if self.kind.is_delta:
            return (f"{self.kind.value}({self.relation}:{self.tid.slot} "
                    f"new={self.values} old={self.old_values}){event}")
        return (f"{self.kind.value}({self.relation}:{self.tid.slot} "
                f"{self.values}){event}")


def plus(relation: str, tid: TupleId, values: tuple,
         event: EventSpecifier | None = None) -> Token:
    """A ``+`` token."""
    return Token(TokenKind.PLUS, relation, tid, values, None, event)


def minus(relation: str, tid: TupleId, values: tuple,
          event: EventSpecifier | None = None) -> Token:
    """A ``−`` token."""
    return Token(TokenKind.MINUS, relation, tid, values, None, event)


def delta_plus(relation: str, tid: TupleId, new: tuple, old: tuple,
               event: EventSpecifier | None = None) -> Token:
    """A ``Δ+`` token carrying a (new, old) pair."""
    return Token(TokenKind.DELTA_PLUS, relation, tid, new, old, event)


def delta_minus(relation: str, tid: TupleId, new: tuple, old: tuple,
                event: EventSpecifier | None = None) -> Token:
    """A ``Δ−`` token retracting a (new, old) pair."""
    return Token(TokenKind.DELTA_MINUS, relation, tid, new, old, event)
