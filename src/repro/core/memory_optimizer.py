"""Storage-budgeted α-memory materialization (paper §8).

The paper closes by observing that virtual memory nodes open "tremendous
possibilities for optimization, in which the most worthy memory nodes
would be materialized for the best possible performance given the
available storage".  This module implements that optimizer:

* every pattern (ungated, non-simple) α-memory of every active rule is a
  *candidate*, with an estimated **storage cost** (how many tuples a
  stored node would hold) and an estimated **benefit** of materializing
  it (the per-probe saving of iterating a stored collection instead of
  scanning — or index-probing — the base relation);
* a greedy knapsack packs the budget with the highest benefit-per-entry
  candidates;
* the chosen assignment is applied by deactivating and reactivating each
  affected rule under a callable virtual policy that pins the decision.

The estimates come from the same :class:`~repro.planner.stats.Statistics`
the query optimizer uses.  Probe frequencies are assumed uniform by
default; a ``weights`` mapping lets callers bias rules they know fire
often, and ``observed=True`` replaces the uniform assumption with the
per-memory probe counters the join step maintains at runtime —
:func:`adapt_memories` packages that feedback loop (plan from observed
frequencies, rebuild only the rules whose decision flipped, reset the
counters for a fresh window).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class MemoryChoice:
    """The optimizer's verdict for one (rule, variable) memory."""

    rule_name: str
    var: str
    relation: str
    estimated_entries: float
    benefit_per_probe: float
    materialize: bool

    @property
    def worth(self) -> float:
        """Benefit density: per-probe saving per stored entry."""
        return self.benefit_per_probe / max(self.estimated_entries, 1.0)


@dataclass
class MemoryPlan:
    """A complete materialization assignment under a budget."""

    budget: float
    choices: list[MemoryChoice]

    def materialized(self) -> list[MemoryChoice]:
        return [c for c in self.choices if c.materialize]

    def used_budget(self) -> float:
        return sum(c.estimated_entries for c in self.materialized())

    def decision(self, rule_name: str, var: str) -> bool | None:
        for choice in self.choices:
            if choice.rule_name == rule_name and choice.var == var:
                return choice.materialize
        return None

    def __str__(self) -> str:
        lines = [f"memory plan: budget {self.budget:.0f} entries, "
                 f"using {self.used_budget():.0f}"]
        for c in sorted(self.choices, key=_density_key):
            verdict = "stored " if c.materialize else "virtual"
            lines.append(
                f"  {verdict} {c.rule_name}/{c.var} on {c.relation}: "
                f"~{c.estimated_entries:.0f} entries, saves "
                f"{c.benefit_per_probe:.1f}/probe")
        return "\n".join(lines)


def _density_key(choice: MemoryChoice) -> tuple:
    """Deterministic knapsack order: benefit density descending, then
    (rule name, variable) to break ties stably."""
    return (-choice.worth, choice.rule_name, choice.var)


def plan_memories(db, budget_entries: float,
                  weights: dict[str, float] | None = None,
                  observed: bool = False) -> MemoryPlan:
    """Choose which pattern α-memories to materialize.

    ``budget_entries`` bounds the total stored α entries across all
    rules; ``weights`` optionally scales the probe benefit per rule name
    (how often its memories are consulted, default 1.0).  With
    ``observed=True`` each memory's benefit is additionally scaled by
    its *measured* probe frequency — the ``probe_count`` the join step
    maintains — normalised to mean 1.0 over the candidates, so memories
    the workload actually consults outbid cold ones (uniform frequency
    is used as a fallback when nothing has been probed yet).
    """
    stats = db.optimizer.stats
    weights = weights or {}
    network = db.manager.network
    frequency: dict[tuple[str, str], float] = {}
    if observed:
        counts = {}
        for rule in network.rules.values():
            if len(rule.variables) == 1:
                continue
            for var in rule.variables:
                spec = rule.specs[var]
                if spec.is_dynamic or spec.is_simple:
                    continue
                memory = network.memory(rule.name, var)
                counts[(rule.name, var)] = float(memory.probe_count)
        mean = (sum(counts.values()) / len(counts)) if counts else 0.0
        if mean > 0:
            frequency = {key: count / mean
                         for key, count in counts.items()}
    candidates: list[MemoryChoice] = []
    for rule in network.rules.values():
        if len(rule.variables) == 1:
            continue
        for var in rule.variables:
            spec = rule.specs[var]
            if spec.is_dynamic or spec.is_simple:
                continue
            relation = db.catalog.relation(spec.relation)
            entries = _entry_estimate(db, stats, spec)
            # Cost of answering a join probe from this memory:
            #   stored:  iterate the entries
            #   virtual: index probe (log + matches) when an index covers
            #            a join attribute, else scan the whole relation
            stored_cost = entries
            virtual_cost = float(len(relation))
            if _has_index_on_join_attr(db, rule, var):
                matches = entries / max(stats.distinct(
                    spec.relation,
                    relation.schema.names()[0]), 1)
                virtual_cost = math.log2(len(relation) + 2) + matches
            weight = weights.get(rule.name, 1.0)
            weight *= frequency.get((rule.name, var), 1.0)
            benefit = max(virtual_cost - stored_cost, 0.0) * weight
            candidates.append(MemoryChoice(
                rule.name, var, spec.relation, entries, benefit, False))

    # Greedy knapsack by benefit density.
    remaining = float(budget_entries)
    chosen: list[MemoryChoice] = []
    for candidate in sorted(candidates, key=_density_key):
        materialize = (candidate.benefit_per_probe > 0
                       and candidate.estimated_entries <= remaining)
        if materialize:
            remaining -= candidate.estimated_entries
        chosen.append(MemoryChoice(
            candidate.rule_name, candidate.var, candidate.relation,
            candidate.estimated_entries, candidate.benefit_per_probe,
            materialize))
    return MemoryPlan(float(budget_entries), chosen)


def apply_plan(db, plan: MemoryPlan, only_changes: bool = False) -> int:
    """Rebuild the affected rules' networks under the plan's choices.

    Returns the number of rules reactivated.  Each rule is deactivated
    and reactivated with a pinned virtual policy, so its memories are
    re-primed from current data.  With ``only_changes=True`` a rule
    whose memories already match the plan is left untouched — the
    online-adaptation mode, where a reactivation (re-prime plus β/P
    rebuild) is only worth paying for an actual flip.
    """
    by_rule: dict[str, dict[str, bool]] = {}
    for choice in plan.choices:
        by_rule.setdefault(choice.rule_name, {})[choice.var] = \
            choice.materialize
    reactivated = 0
    original_policy = db.manager.network.virtual_policy
    for rule_name, decisions in by_rule.items():
        record = db.manager.rule(rule_name)
        if not record.active:
            continue
        if only_changes and not _plan_differs(db, rule_name, decisions):
            continue

        def pinned(spec, decisions=decisions):
            materialize = decisions.get(spec.var)
            if materialize is None:
                return False
            return not materialize

        db.manager.deactivate(rule_name)
        db.manager.network.virtual_policy = pinned
        try:
            db.manager.activate(rule_name)
        finally:
            db.manager.network.virtual_policy = original_policy
        reactivated += 1
    return reactivated


def _plan_differs(db, rule_name: str, decisions: dict[str, bool]) -> bool:
    """Does any of the rule's memories disagree with the plan?"""
    network = db.manager.network
    for var, materialize in decisions.items():
        memory = network.memory(rule_name, var)
        if memory.is_virtual == materialize:
            return True
    return False


def optimize_memories(db, budget_entries: float,
                      weights: dict[str, float] | None = None
                      ) -> MemoryPlan:
    """Plan and apply in one step; returns the plan."""
    plan = plan_memories(db, budget_entries, weights)
    apply_plan(db, plan)
    return plan


def adapt_memories(db, budget_entries: float,
                   weights: dict[str, float] | None = None
                   ) -> tuple[MemoryPlan, int]:
    """One feedback-driven adaptation step (paper §8, made adaptive).

    Plans from the *observed* per-memory probe counters, rebuilds only
    the rules whose storage decision actually flipped, then resets the
    counters so the next step sees a fresh feedback window.  Returns
    ``(plan, rules_reactivated)``.
    """
    plan = plan_memories(db, budget_entries, weights, observed=True)
    flipped = apply_plan(db, plan, only_changes=True)
    network = db.manager.network
    for rule in network.rules.values():
        for var in rule.variables:
            memory = network.memory(rule.name, var)
            memory.probe_count = 0
            if not memory.is_virtual:
                memory.unindexed_probe_count = 0
    return plan, flipped


#: below this relation size the optimizer counts qualifying tuples
#: exactly instead of using the planner's magic-constant selectivities —
#: this is an offline reorganisation, so precision beats speed
_EXACT_COUNT_CAP = 10000


def _entry_estimate(db, stats, spec) -> float:
    relation = db.catalog.relation(spec.relation)
    if len(relation) <= _EXACT_COUNT_CAP:
        return float(sum(
            1 for stored in relation.scan()
            if spec.selection_matches(stored.values, None)))
    return stats.scan_cardinality(spec.relation, spec.var,
                                  spec.selection_conjuncts)


def _has_index_on_join_attr(db, rule, var: str) -> bool:
    relation = db.catalog.relation(rule.var_relations[var])
    for conjunct in rule.joins:
        equi = conjunct.equijoin
        if equi is None:
            continue
        attr = None
        if equi.left_var == var:
            attr = equi.left_attr
        elif equi.right_var == var:
            attr = equi.right_attr
        if attr is not None and relation.index_on(attr) is not None:
            return True
    return False
