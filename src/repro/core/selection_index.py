"""The top-level selection predicate index (paper section 4.1).

"Ariel uses a special index optimized for testing selection conditions as
the top layer in its discrimination network."  Each α-memory's selection
predicate contributes its *anchor* — the tightest single-attribute
interval constraint (point, open or closed interval) — to an interval
index on that (relation, attribute); predicates with no indexable
conjunct go on a per-relation residual list.  Probing with a tuple's
values returns every memory whose anchor the tuple satisfies, and the
caller then verifies each candidate's residual predicate.

The interval index defaults to the interval skip list; the IBS tree or
the naive :class:`LinearIntervalIndex` can be substituted (the
``ablate-isl`` and ``scale`` benchmarks do exactly that).
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable

from repro.intervals.interval import Interval
from repro.intervals.skiplist import IntervalSkipList
from repro.lang.predicates import AttrInterval


class LinearIntervalIndex:
    """Baseline 'no discrimination network' index: a flat list of
    intervals scanned on every probe.  Exists so the benchmarks can show
    what the interval skip list buys (paper §6: techniques without a
    discrimination network "simply cannot compete")."""

    def __init__(self):
        self._intervals: list[Interval] = []

    def insert(self, interval: Interval) -> None:
        if interval in self._intervals:
            raise ValueError(f"interval already present: {interval}")
        self._intervals.append(interval)

    def remove(self, interval: Interval) -> None:
        self._intervals.remove(interval)

    def stab(self, value) -> set[Interval]:
        return {iv for iv in self._intervals if iv.contains_value(value)}

    def stab_payloads(self, value) -> set[Hashable]:
        return {iv.payload for iv in self._intervals
                if iv.contains_value(value)}

    def __len__(self) -> int:
        return len(self._intervals)


class SelectionIndex:
    """Routes tuple values to the α-memories whose anchors they satisfy."""

    def __init__(self, index_factory: Callable[[], object] | None = None):
        self._factory = index_factory or IntervalSkipList
        # (relation, attribute) -> interval index of anchored targets
        self._indexes: dict[tuple[str, str], object] = {}
        # (relation, attribute) -> attribute position
        self._positions: dict[tuple[str, str], int] = {}
        # relation -> unanchored targets (always candidates)
        self._unanchored: dict[str, list] = {}
        # target -> how it was registered, for removal
        self._registered: dict[int, tuple] = {}

    # ------------------------------------------------------------------

    def add(self, relation: str, anchor: AttrInterval | None,
            target) -> None:
        """Register a target (an α-memory) under its anchor interval, or
        on the relation's residual list when it has none."""
        key = id(target)
        if key in self._registered:
            raise ValueError(f"target already registered: {target!r}")
        if anchor is None:
            self._unanchored.setdefault(relation, []).append(target)
            self._registered[key] = (relation, None, None, target)
            return
        index_key = (relation, anchor.attr)
        index = self._indexes.get(index_key)
        if index is None:
            index = self._factory()
            self._indexes[index_key] = index
            self._positions[index_key] = anchor.position
        interval = Interval(anchor.interval.low, anchor.interval.high,
                            anchor.interval.low_closed,
                            anchor.interval.high_closed,
                            payload=_TargetRef(target))
        index.insert(interval)
        self._registered[key] = (relation, anchor.attr, interval, target)

    def remove(self, target) -> None:
        """Unregister a target."""
        key = id(target)
        try:
            relation, attr, interval, kept = self._registered.pop(key)
        except KeyError:
            raise ValueError(f"target not registered: {target!r}") \
                from None
        if attr is None:
            self._unanchored[relation].remove(kept)
            return
        self._indexes[(relation, attr)].remove(interval)

    def probe(self, relation: str, values: tuple) -> list:
        """Every registered target whose anchor accepts ``values``, plus
        the relation's unanchored targets.  Null attribute values never
        satisfy an anchor (SQL comparison semantics)."""
        out: list = []
        seen: set[int] = set()
        for (index_relation, attr), index in self._indexes.items():
            if index_relation != relation:
                continue
            value = values[self._positions[(index_relation, attr)]]
            if value is None:
                continue
            for ref in index.stab_payloads(value):
                target = ref.target
                if id(target) not in seen:
                    seen.add(id(target))
                    out.append(target)
        for target in self._unanchored.get(relation, ()):
            if id(target) not in seen:
                seen.add(id(target))
                out.append(target)
        return out

    # ------------------------------------------------------------------

    def anchored_count(self) -> int:
        return sum(len(index) for index in self._indexes.values())

    def unanchored_count(self) -> int:
        return sum(len(v) for v in self._unanchored.values())

    def __len__(self) -> int:
        return len(self._registered)


class _TargetRef:
    """Identity-hashable wrapper so unhashable targets can ride inside
    frozen Interval payloads."""

    __slots__ = ("target",)

    def __init__(self, target):
        self.target = target

    def __hash__(self) -> int:
        return id(self.target)

    def __eq__(self, other) -> bool:
        return isinstance(other, _TargetRef) and other.target is self.target
