"""The top-level selection predicate index (paper section 4.1).

"Ariel uses a special index optimized for testing selection conditions as
the top layer in its discrimination network."  Each α-memory's selection
predicate contributes its *anchor* — the tightest single-attribute
interval constraint (point, open or closed interval) — to an interval
index on that (relation, attribute); predicates with no indexable
conjunct go on a per-relation residual list.  Probing with a tuple's
values returns every memory whose anchor the tuple satisfies, and the
caller then verifies each candidate's residual predicate.

Dispatch is two-level: a ``relation -> {attribute -> interval index}``
map, so a probe touches only the indexes of the token's own relation
(never scanning the system-wide index list), and the common
one-attribute-per-relation case runs with no dedup bookkeeping at all —
a target is registered under exactly one anchor, so a single stab can
never produce duplicates.

:meth:`SelectionIndex.probe_many` is the batch entry point used by the
network's set-oriented token propagation: it groups probes by relation,
dedupes repeated ``(relation, values)`` probes, and memoizes individual
attribute-value stabs within the batch.

The interval index defaults to the interval skip list; the IBS tree or
the naive :class:`LinearIntervalIndex` can be substituted (the
``ablate-isl`` and ``scale`` benchmarks do exactly that).
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable

from repro.intervals.interval import Interval
from repro.intervals.skiplist import IntervalSkipList
from repro.lang.predicates import AttrInterval
from repro.observe import NULL_STATS


class LinearIntervalIndex:
    """Baseline 'no discrimination network' index: a flat list of
    intervals scanned on every probe.  Exists so the benchmarks can show
    what the interval skip list buys (paper §6: techniques without a
    discrimination network "simply cannot compete")."""

    def __init__(self):
        self._intervals: list[Interval] = []

    def insert(self, interval: Interval) -> None:
        if interval in self._intervals:
            raise ValueError(f"interval already present: {interval}")
        self._intervals.append(interval)

    def remove(self, interval: Interval) -> None:
        self._intervals.remove(interval)

    def stab(self, value) -> set[Interval]:
        return {iv for iv in self._intervals if iv.contains_value(value)}

    def stab_payloads(self, value) -> set[Hashable]:
        return {iv.payload for iv in self._intervals
                if iv.contains_value(value)}

    def __len__(self) -> int:
        return len(self._intervals)


class _AttrIndex:
    """One relation attribute's interval index plus its tuple position."""

    __slots__ = ("index", "position")

    def __init__(self, index, position: int):
        self.index = index
        self.position = position


class SelectionIndex:
    """Routes tuple values to the α-memories whose anchors they satisfy."""

    #: engine counter registry (``selection.*``); the owning network
    #: replaces the shared disabled default with the Database's registry
    stats = NULL_STATS

    def __init__(self, index_factory: Callable[[], object] | None = None):
        self._factory = index_factory or IntervalSkipList
        # relation -> {attribute -> _AttrIndex}
        self._relations: dict[str, dict[str, _AttrIndex]] = {}
        #: relation -> anchored tuple positions.  Read-only for callers;
        #: the batched token path reads it directly to build anchor keys
        #: without a method call per token.
        self.anchor_positions: dict[str, tuple[int, ...]] = {}
        # relation -> unanchored targets (always candidates)
        self._unanchored: dict[str, list] = {}
        # target -> how it was registered, for removal
        self._registered: dict[int, tuple] = {}

    # ------------------------------------------------------------------

    def add(self, relation: str, anchor: AttrInterval | None,
            target) -> None:
        """Register a target (an α-memory) under its anchor interval, or
        on the relation's residual list when it has none."""
        key = id(target)
        if key in self._registered:
            raise ValueError(f"target already registered: {target!r}")
        if anchor is None:
            self._unanchored.setdefault(relation, []).append(target)
            self._registered[key] = (relation, None, None, target)
            return
        attr_indexes = self._relations.setdefault(relation, {})
        slot = attr_indexes.get(anchor.attr)
        if slot is None:
            slot = _AttrIndex(self._factory(), anchor.position)
            attr_indexes[anchor.attr] = slot
            self.anchor_positions[relation] = tuple(
                s.position for s in attr_indexes.values())
        interval = Interval(anchor.interval.low, anchor.interval.high,
                            anchor.interval.low_closed,
                            anchor.interval.high_closed,
                            payload=_TargetRef(target))
        slot.index.insert(interval)
        self._registered[key] = (relation, anchor.attr, interval, target)

    def remove(self, target) -> None:
        """Unregister a target."""
        key = id(target)
        try:
            relation, attr, interval, kept = self._registered.pop(key)
        except KeyError:
            raise ValueError(f"target not registered: {target!r}") \
                from None
        if attr is None:
            self._unanchored[relation].remove(kept)
            return
        self._relations[relation][attr].index.remove(interval)

    # ------------------------------------------------------------------
    # probing
    # ------------------------------------------------------------------

    def probe(self, relation: str, values: tuple,
              stab_cache: dict | None = None,
              stats=None) -> list:
        """Every registered target whose anchor accepts ``values``, plus
        the relation's unanchored targets.  Null attribute values never
        satisfy an anchor (SQL comparison semantics).

        ``stab_cache`` (a plain dict owned by the caller) memoizes
        attribute-value stabs across probes of one batch — tuples that
        repeat an attribute value skip the interval-index walk entirely.

        ``stats`` overrides the shared counter registry for this probe:
        sharded match workers pass a private registry so concurrent
        shards never touch (or interleave in) the shared one; the
        network merges the per-shard counts at the transition boundary.
        """
        return self._probe(relation, values, stab_cache, stats)

    def anchor_key(self, relation: str, values: tuple) -> tuple:
        """The projection of ``values`` onto the relation's anchored
        attribute positions — everything a probe's result can depend on.
        Two tuples with equal anchor keys get identical candidate lists,
        which is what makes batch-level probe caching effective even when
        every tuple carries a unique key column.
        """
        positions = self.anchor_positions.get(relation)
        if not positions:
            return ()
        if len(positions) == 1:
            return (values[positions[0]],)
        return tuple(values[p] for p in positions)

    def probe_many(self, items: Iterable[tuple[str, tuple]]) -> list[list]:
        """Probe a batch of ``(relation, values)`` pairs.

        Returns one candidate list per item, in order.  Repeated probes
        are answered from a batch-local cache, and individual attribute
        stabs are memoized across probes that share a value — the
        amortisation the set-oriented token path relies on.  Callers must
        not mutate the returned lists (repeats share them).
        """
        probe_cache: dict[tuple[str, tuple], list] = {}
        stab_cache: dict[tuple[int, object], list] = {}
        out: list[list] = []
        for relation, values in items:
            key = (relation, self.anchor_key(relation, values))
            got = probe_cache.get(key)
            if got is None:
                got = probe_cache[key] = self._probe(relation, values,
                                                     stab_cache)
            out.append(got)
        return out

    def _probe(self, relation: str, values: tuple,
               stab_cache: dict | None, stats=None) -> list:
        if stats is None:
            stats = self.stats
        if stats.enabled:
            counters = stats.counters
            counters["selection.probes"] = \
                counters.get("selection.probes", 0) + 1
        attr_indexes = self._relations.get(relation)
        unanchored = self._unanchored.get(relation)
        if not attr_indexes:
            return list(unanchored) if unanchored else []
        # A target is registered under exactly one anchor, so stabs of
        # distinct attribute indexes can never yield the same target and
        # no dedup set is needed.
        out: list = []
        for slot in attr_indexes.values():
            value = values[slot.position]
            if value is None:
                continue
            if stab_cache is None:
                refs = slot.index.stab_payloads(value)
            else:
                cache_key = (id(slot.index), value)
                refs = stab_cache.get(cache_key)
                if refs is None:
                    refs = stab_cache[cache_key] = \
                        slot.index.stab_payloads(value)
                elif stats.enabled:
                    counters = stats.counters
                    counters["selection.stab_memo_hits"] = \
                        counters.get("selection.stab_memo_hits", 0) + 1
            for ref in refs:
                out.append(ref.target)
        if unanchored:
            out.extend(unanchored)
        return out

    # ------------------------------------------------------------------

    def anchored_count(self) -> int:
        return sum(len(slot.index)
                   for attr_indexes in self._relations.values()
                   for slot in attr_indexes.values())

    def unanchored_count(self) -> int:
        return sum(len(v) for v in self._unanchored.values())

    def __len__(self) -> int:
        return len(self._registered)


class _TargetRef:
    """Identity-hashable wrapper so unhashable targets can ride inside
    frozen Interval payloads."""

    __slots__ = ("target",)

    def __init__(self, target):
        self.target = target

    def __hash__(self) -> int:
        return id(self.target)

    def __eq__(self, other) -> bool:
        return isinstance(other, _TargetRef) and other.target is self.target
