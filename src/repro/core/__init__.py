"""The Ariel rule system: the paper's primary contribution.

Subpackage layout (paper section in parentheses):

* ``tokens`` / ``deltasets`` — the four token kinds with event specifiers
  and the per-transition Δ-sets [I, M] that turn physical update
  sequences into logical events (§2.2.2, §4.3.1);
* ``alpha`` — the seven α-memory node kinds and the token×memory action
  table (§4.3.3, Figure 5);
* ``selection_index`` — the top-level selection predicate index over
  interval skip lists (§4.1);
* ``pnode`` — P-nodes holding the data matching each rule (§2.2.3);
* ``treat`` — the A-TREAT join network with virtual α-memories and the
  ProcessedMemories self-join protocol (§4.2);
* ``rete`` — a classic Rete network, the comparison baseline;
* ``agenda`` — the recognize-act cycle and conflict resolution (§2.2.3);
* ``action_planner`` — query modification and rule-action planning
  (§5.1–5.3);
* ``manager`` — rule install/activate/deactivate lifecycle (§6).
"""

from repro.core.tokens import Token, TokenKind, EventSpecifier
from repro.core.rules import CompiledRule
from repro.core.manager import RuleManager

__all__ = ["Token", "TokenKind", "EventSpecifier", "CompiledRule",
           "RuleManager"]
