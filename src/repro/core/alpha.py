"""α-memory nodes and the token × memory action table (paper Figure 5).

The paper identifies seven α-memory kinds — stored, virtual, dynamic-on,
dynamic-trans, simple, simple-trans, simple-on — which factor cleanly into
three orthogonal axes captured here:

* **storage**: stored (materialised entries), *virtual* (predicate only,
  answering joins by filtered base-relation scans — the A-TREAT idea), or
  *simple* (single-variable rule: matches pass straight to the P-node);
* **event gate**: the variable is bound by the rule's ``on`` clause and
  only tokens carrying the matching event specifier bind it;
* **transition gate**: the condition uses ``previous var.…`` and only
  Δ tokens bind it.

:func:`dispatch` is the action table: given a variable's gating and a
token, it returns the memory operation to perform (insert an entry,
delete by tuple id, or nothing).  One clarification to Figure 5, noted in
DESIGN.md: at an ``on delete`` memory, a ``−`` token whose specifier is
``delete`` *asserts* the event (inserts the tuple) so the rule can bind
the deleted data; the figure's "delete t" row applies to the other
specifiers, which retract prior assertions.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.rules import VariableSpec
from repro.core.tokens import Token, TokenKind
from repro.lang.ast_nodes import EventKind, EventSpec
from repro.observe import NULL_STATS
from repro.storage.tuples import TupleId


@dataclass(frozen=True)
class MemoryEntry:
    """One tuple (or transition pair) held by an α-memory."""

    tid: TupleId
    values: tuple
    old_values: tuple | None = None


@dataclass(frozen=True)
class MemoryOp:
    """The action the network must take for a token at one memory."""

    op: str                       # 'insert' | 'delete'
    entry: MemoryEntry | None = None
    tid: TupleId | None = None


def residual_memo_key(spec: VariableSpec, entry: MemoryEntry) -> tuple:
    """The batch residual-memo key for one (memory, entry) pair.

    Keys on the projection of the values the residual actually reads,
    so tuples differing only in untested columns (unique keys) share
    one evaluation.  Key shapes differ by length, so the one-position
    fast path cannot collide with the general form.  Shared by the
    serial batched path and the sharded match phase; residual
    evaluation is pure, so per-shard memo caches may re-evaluate a key
    another shard also saw without affecting results.
    """
    cur_pos, prev_pos = spec.residual_positions
    old = entry.old_values
    if old is None and len(cur_pos) == 1:
        return (id(spec), entry.values[cur_pos[0]])
    return (id(spec),
            tuple(entry.values[p] for p in cur_pos),
            None if old is None else tuple(old[p] for p in prev_pos))


def dispatch(spec: VariableSpec, token: Token) -> MemoryOp | None:
    """The Figure-5 action table, parameterised by the variable's gates.

    Returns None when the combination is a no-op ("don't care" entries).
    The caller has already verified the token's values against the
    memory's selection predicate for insertion-kind results.
    """
    if spec.is_transition:
        return _dispatch_transition(spec, token)
    if spec.event is not None:
        return _dispatch_event(spec, token)
    return _dispatch_pattern(token)


def _dispatch_pattern(token: Token) -> MemoryOp | None:
    if token.kind is TokenKind.PLUS:
        return MemoryOp("insert", MemoryEntry(token.tid, token.values))
    if token.kind is TokenKind.MINUS:
        return MemoryOp("delete", tid=token.tid)
    if token.kind is TokenKind.DELTA_PLUS:
        # "insert newt": project the new half of the pair
        return MemoryOp("insert", MemoryEntry(token.tid, token.values))
    return MemoryOp("delete", tid=token.tid)        # Δ−: "delete newt"


def _dispatch_transition(spec: VariableSpec,
                         token: Token) -> MemoryOp | None:
    if token.kind is TokenKind.DELTA_PLUS:
        if not _event_matches(spec.event, token):
            return None
        return MemoryOp("insert", MemoryEntry(token.tid, token.values,
                                              token.old_values))
    if token.kind is TokenKind.DELTA_MINUS:
        return MemoryOp("delete", tid=token.tid)
    return None                # plain +/− can never match a transition


def _dispatch_event(spec: VariableSpec, token: Token) -> MemoryOp | None:
    kind = spec.event.kind
    if kind is EventKind.APPEND:
        if token.kind is TokenKind.PLUS and token.event is not None \
                and token.event.kind is EventKind.APPEND:
            return MemoryOp("insert", MemoryEntry(token.tid, token.values))
        if token.kind is TokenKind.MINUS:
            return MemoryOp("delete", tid=token.tid)
        return None
    if kind is EventKind.DELETE:
        if token.kind is TokenKind.MINUS and token.event is not None \
                and token.event.kind is EventKind.DELETE:
            # Event assertion: bind the deleted tuple to the rule.
            return MemoryOp("insert", MemoryEntry(token.tid, token.values))
        return None
    # on replace(target-list)
    if token.kind is TokenKind.DELTA_PLUS:
        if not _event_matches(spec.event, token):
            return None
        return MemoryOp("insert", MemoryEntry(token.tid, token.values,
                                              token.old_values))
    if token.kind in (TokenKind.DELTA_MINUS, TokenKind.MINUS):
        return MemoryOp("delete", tid=token.tid)
    return None


def _event_matches(gate: EventSpec | None, token: Token) -> bool:
    """Does a Δ+ token's event specifier satisfy an on-replace gate?

    A gate with an attribute list only fires when the update touched at
    least one listed attribute (paper section 4.3).  A gate of None (pure
    transition condition) accepts any Δ+.
    """
    if gate is None:
        return True
    if token.event is None or token.event.kind is not EventKind.REPLACE:
        return False
    if not gate.attributes:
        return True
    return bool(set(gate.attributes) & set(token.event.attributes))


#: accumulated full-scan cost (probes x entries scanned) at which an
#: equality-probed but un-indexed (memory, position) earns a hash join
#: index built on the fly
PROMOTE_COST_THRESHOLD = 256

#: cap on join indexes per memory: each one is maintained by every
#: insert/remove/flush, so promotion must not grow without bound
MAX_JOIN_INDEXES = 4


class AlphaMemory:
    """A materialised α-memory: entries keyed by tuple id.

    Covers the stored, dynamic-on, dynamic-trans and simple kinds; the
    virtual kind is :class:`VirtualAlphaMemory`.  For simple memories the
    network routes entries straight to the P-node and this object stays
    empty ("simple memories never contain a persistent collection",
    paper §4.3.3).
    """

    is_virtual = False

    #: engine counter registry (``alpha.*``); the owning network replaces
    #: the shared disabled default with the Database's registry
    stats = NULL_STATS

    def __init__(self, rule_name: str, spec: VariableSpec):
        self.rule_name = rule_name
        self.spec = spec
        #: back-references set by the owning network at add_rule time so
        #: the token hot path skips the by-name lookups
        self.rule = None
        self.pnode = None
        #: how many times the join step consulted this memory (probe or
        #: scan) — the feedback signal for adaptive materialization
        self.probe_count = 0
        #: equality probes answered by a full scan for want of an index
        self.unindexed_probe_count = 0
        self._entries: dict[TupleId, MemoryEntry] = {}
        # join indexes: attribute position -> {value -> {tid -> entry}}
        # (inner dicts keep insertion order, matching entries() iteration
        # semantics for determinism)
        self._join_indexes: dict[int, dict[object,
                                           dict[TupleId,
                                                MemoryEntry]]] = {}
        # position -> sorted distinct join-key values (the leapfrog
        # iterator view over the join index); built lazily by
        # sorted_join_keys and maintained by insert/remove/flush
        self._sorted_keys: dict[int, list] = {}
        # position -> accumulated un-indexed equality-scan cost; feeds
        # the on-the-fly promotion decision in note_unindexed_probe
        self._unindexed_cost: dict[int, int] = {}

    @property
    def kind_name(self) -> str:
        """The paper's name for this memory's kind."""
        prefix = "simple" if self.spec.is_simple else (
            "dynamic" if self.spec.is_dynamic else "stored")
        if self.spec.is_transition:
            return f"{prefix}-trans-α" if prefix != "stored" \
                else "dynamic-trans-α"
        if self.spec.event is not None:
            return f"{prefix}-on-α" if prefix != "stored" \
                else "dynamic-on-α"
        if self.spec.is_new:
            return f"{prefix}-new-α" if prefix != "stored" \
                else "dynamic-new-α"
        return f"{prefix}-α"

    def insert(self, entry: MemoryEntry) -> bool:
        """Add an entry; returns False if the tid was already present
        with the same values (idempotent re-insert)."""
        existing = self._entries.get(entry.tid)
        if existing == entry:
            return False
        stats = self.stats
        if stats.enabled:
            counters = stats.counters
            counters["alpha.inserts"] = \
                counters.get("alpha.inserts", 0) + 1
        self._entries[entry.tid] = entry
        if self._join_indexes:
            for position, buckets in self._join_indexes.items():
                if existing is not None:
                    self._unindex(position, buckets,
                                  existing.values[position],
                                  existing.tid)
                value = entry.values[position]
                bucket = buckets.get(value)
                if bucket is None:
                    buckets[value] = {entry.tid: entry}
                    keys = self._sorted_keys.get(position)
                    if keys is not None and value is not None \
                            and value == value:
                        insort(keys, value)
                else:
                    bucket[entry.tid] = entry
        return True

    def remove(self, tid: TupleId) -> MemoryEntry | None:
        """Discard the entry for a tuple id, returning it if present."""
        entry = self._entries.pop(tid, None)
        if entry is not None:
            stats = self.stats
            if stats.enabled:
                counters = stats.counters
                counters["alpha.deletes"] = \
                    counters.get("alpha.deletes", 0) + 1
            for position, buckets in self._join_indexes.items():
                self._unindex(position, buckets, entry.values[position],
                              tid)
        return entry

    def get(self, tid: TupleId) -> MemoryEntry | None:
        return self._entries.get(tid)

    def entries(self) -> Iterator[MemoryEntry]:
        return iter(list(self._entries.values()))

    def flush(self) -> None:
        """Empty the memory (dynamic memories, after each transition's
        rule processing)."""
        self._entries.clear()
        for buckets in self._join_indexes.values():
            buckets.clear()
        self._sorted_keys.clear()

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # join indexes
    # ------------------------------------------------------------------

    def ensure_join_index(self, position: int) -> None:
        """Build (idempotently) a hash join-index on an attribute
        position the rule's join graph probes with equality.  Maintained
        by every subsequent insert/remove/flush."""
        if position in self._join_indexes:
            return
        buckets: dict[object, dict[TupleId, MemoryEntry]] = {}
        for entry in self._entries.values():
            buckets.setdefault(entry.values[position],
                               {})[entry.tid] = entry
        self._join_indexes[position] = buckets

    def has_join_index(self, position: int) -> bool:
        return position in self._join_indexes

    def join_index_positions(self) -> list[int]:
        """The attribute positions currently carrying a join index."""
        return list(self._join_indexes)

    def note_unindexed_probe(self, position: int) -> bool:
        """Record one equality probe that found no join index on
        ``position``.

        Accumulates the probe's full-scan cost (the current entry
        count); once the total crosses :data:`PROMOTE_COST_THRESHOLD`
        — and the memory is under :data:`MAX_JOIN_INDEXES` — the index
        is built on the spot and True is returned, telling the caller
        to answer this very probe from the fresh index.  Returns False
        while the probe must still degrade to a full scan.
        """
        cost = self._unindexed_cost.get(position, 0) \
            + max(len(self._entries), 1)
        if cost >= PROMOTE_COST_THRESHOLD \
                and len(self._join_indexes) < MAX_JOIN_INDEXES:
            self._unindexed_cost.pop(position, None)
            self.ensure_join_index(position)
            stats = self.stats
            if stats.enabled:
                stats.bump("alpha.join_indexes_promoted")
            return True
        self._unindexed_cost[position] = cost
        self.unindexed_probe_count += 1
        stats = self.stats
        if stats.enabled:
            counters = stats.counters
            counters["joins.unindexed_probes"] = \
                counters.get("joins.unindexed_probes", 0) + 1
        return False

    def join_probe(self, position: int, value) -> Iterator[MemoryEntry]:
        """Entries whose attribute at ``position`` equals ``value`` —
        the O(1) bucket lookup replacing the full-memory scan of the
        TREAT/Rete join step.  Only valid after :meth:`ensure_join_index`
        for that position."""
        stats = self.stats
        if stats.enabled:
            counters = stats.counters
            counters["alpha.join_probes"] = \
                counters.get("alpha.join_probes", 0) + 1
        bucket = self._join_indexes[position].get(value)
        if not bucket:
            return iter(())
        return iter(list(bucket.values()))

    def sorted_join_keys(self, position: int) -> list:
        """Sorted distinct join-key values of the ``position`` join
        index — the leapfrog triejoin's iterator view (ascending keys,
        ``seek`` by bisection).  Lazily materialised on first demand,
        then maintained incrementally: insert/remove adjust it only
        when a bucket appears or drains, and :meth:`flush` drops it
        with the rest of the Δ-set state.  Null and NaN keys are
        excluded — under three-valued logic they never satisfy an
        equi-join conjunct.  Only valid after :meth:`ensure_join_index`
        for the position.  Callers must treat the list as read-only.
        """
        keys = self._sorted_keys.get(position)
        if keys is None:
            keys = self._sorted_keys[position] = sorted(
                key for key in self._join_indexes[position]
                if key is not None and key == key)
            if self.stats.enabled:
                self.stats.bump("alpha.sorted_views_built")
        return keys

    def sorted_view_positions(self) -> list[int]:
        """The positions whose sorted iterator view is materialised."""
        return list(self._sorted_keys)

    def _unindex(self, position: int, buckets, value,
                 tid: TupleId) -> None:
        bucket = buckets.get(value)
        if bucket is not None:
            bucket.pop(tid, None)
            if not bucket:
                del buckets[value]
                keys = self._sorted_keys.get(position)
                if keys is not None and value is not None \
                        and value == value:
                    i = bisect_left(keys, value)
                    if i < len(keys) and keys[i] == value:
                        del keys[i]

    def __repr__(self) -> str:
        return (f"AlphaMemory({self.rule_name}/{self.spec.var}, "
                f"{self.kind_name}, {len(self)} entries)")


class VirtualAlphaMemory:
    """A virtual α-memory: the A-TREAT space optimisation (paper §4.2).

    Holds only the selection predicate; its conceptual contents are
    derived on demand by scanning the base relation with the predicate as
    a filter, optionally sharpened with an equality constraint substituted
    from the token being joined ("the predicate can be modified by
    substituting constants from a token … to make the predicate more
    selective").  An index on the constrained attribute is used when one
    exists.
    """

    is_virtual = True

    #: engine counter registry (``virtual.*``); the owning network
    #: replaces the shared disabled default with the Database's registry
    stats = NULL_STATS

    def __init__(self, rule_name: str, spec: VariableSpec):
        self.rule_name = rule_name
        self.spec = spec
        #: back-references set by the owning network at add_rule time so
        #: the token hot path skips the by-name lookups
        self.rule = None
        self.pnode = None
        #: diagnostics: how many base-relation scans this memory answered
        self.scan_count = 0
        #: join-step consultations (same feedback role as
        #: :attr:`AlphaMemory.probe_count`)
        self.probe_count = 0

    @property
    def kind_name(self) -> str:
        return "virtual-α"

    def candidates(self, catalog, equality: tuple[int, object] | None = None
                   ) -> Iterable[MemoryEntry]:
        """The memory's conceptual contents, derived from the relation.

        ``equality`` is an optional ``(position, value)`` constraint from
        the join conjunct being evaluated; with an index on that attribute
        the scan becomes an index probe.  Without one, a stored secondary
        index matching the predicate's anchor attribute narrows the scan
        to the anchor interval before falling back to the filtered heap
        scan.
        """
        self.scan_count += 1
        self.probe_count += 1
        stats = self.stats
        if stats.enabled:
            counters = stats.counters
            counters["virtual.scans"] = \
                counters.get("virtual.scans", 0) + 1
        relation = catalog.relation(self.spec.relation)
        matches = self.spec.selection_matches
        if equality is not None:
            position, value = equality
            if value is None or value != value:
                # Null — and NaN, which compares unequal even to
                # itself — never satisfies an equi-join conjunct.
                return
            attr = relation.schema.attributes[position].name
            index = (relation.index_on(attr, "hash")
                     or relation.index_on(attr, "btree"))
            if index is not None:
                for stored in relation.fetch(index.search(value)):
                    if matches(stored.values, None):
                        yield MemoryEntry(stored.tid, stored.values)
                return
            for stored in relation.scan():
                if stored.values[position] == value \
                        and matches(stored.values, None):
                    yield MemoryEntry(stored.tid, stored.values)
            return
        anchor = self.spec.analysis.anchor if self.spec.analysis else None
        if anchor is not None:
            index = relation.index_on(anchor.attr, "btree")
            if index is not None:
                from repro.intervals.interval import NEG_INF, POS_INF
                interval = anchor.interval
                low = None if interval.low is NEG_INF else interval.low
                high = None if interval.high is POS_INF else interval.high
                tids = index.range_search(
                    low, high,
                    low_inclusive=interval.low_closed,
                    high_inclusive=interval.high_closed)
                for stored in relation.fetch(tids):
                    if matches(stored.values, None):
                        yield MemoryEntry(stored.tid, stored.values)
                return
        for stored in relation.scan():
            if matches(stored.values, None):
                yield MemoryEntry(stored.tid, stored.values)

    def __len__(self) -> int:
        return 0        # stores nothing: that is the point

    def flush(self) -> None:
        return None

    def __repr__(self) -> str:
        return f"VirtualAlphaMemory({self.rule_name}/{self.spec.var})"
