"""Δ-sets [I, M] and logical-event token generation (paper §4.3.1).

For each relation updated during a transition, Ariel keeps a pair of
Δ-sets: **I** holds an entry per tuple *inserted* during the current
transition, **M** an entry per tuple that existed at the beginning of the
transition and has been *modified*.  (No third set is needed for
deletions — a deleted tuple cannot be touched again.)  These sets let the
token generator classify every physical operation into the paper's four
per-tuple life cycles and emit exactly the token sequence its Figure-5
machinery expects:

==========  ==========  =====================================
case        net effect  tokens per physical operation
==========  ==========  =====================================
1  im*      insert      ins: ``+``(append); mod: ``−``(append), ``+``(append)
2  im*d     nothing     … ; del: ``−``(append)
3  m+       modify      1st mod: ``−``(no event), ``Δ+``(replace);
                        later: ``Δ−``(replace), ``Δ+``(replace)
4  m*d      delete      … ; del: ``Δ−``(replace), ``−``(delete)
                        (plain del: ``−``(delete))
==========  ==========  =====================================

The replace target-list is recomputed against the value at the beginning
of the transition, so it names the *net* set of changed attributes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.schema import Schema
from repro.core import tokens as tok
from repro.core.tokens import EventSpecifier, Token
from repro.lang.ast_nodes import EventKind
from repro.storage.tuples import TupleId


@dataclass
class _InsertedEntry:
    """I-set entry: a tuple inserted this transition, with its current
    value (updated as in-transition modifications land)."""

    values: tuple


@dataclass
class _ModifiedEntry:
    """M-set entry: a pre-existing tuple's value at transition start and
    its current value."""

    original: tuple
    current: tuple


class DeltaSets:
    """The [I, M] Δ-set pair for every relation touched by one transition.

    ``record_*`` methods are called by the transition manager *after* the
    physical mutation has been applied to the heap; they return the tokens
    to route through the discrimination network, in order.
    """

    def __init__(self, schemas: dict[str, Schema] | None = None):
        self._inserted: dict[TupleId, _InsertedEntry] = {}
        self._modified: dict[TupleId, _ModifiedEntry] = {}
        self._schemas = schemas or {}

    # ------------------------------------------------------------------
    # recording physical operations
    # ------------------------------------------------------------------

    def record_insert(self, relation: str, tid: TupleId,
                      values: tuple) -> list[Token]:
        """A tuple was physically inserted."""
        self._inserted[tid] = _InsertedEntry(values)
        event = EventSpecifier(EventKind.APPEND)
        return [tok.plus(relation, tid, values, event)]

    def record_insert_many(self, relation: str,
                           pairs) -> list[Token]:
        """Bulk variant of :meth:`record_insert` for ``(tid, values)``
        pairs: same I-set entries and ``+`` tokens, one shared append
        event specifier."""
        inserted = self._inserted
        event = EventSpecifier(EventKind.APPEND)
        out: list[Token] = []
        for tid, values in pairs:
            inserted[tid] = _InsertedEntry(values)
            out.append(tok.plus(relation, tid, values, event))
        return out

    def record_modify(self, relation: str, tid: TupleId,
                      old_values: tuple, new_values: tuple) -> list[Token]:
        """A tuple was physically overwritten in place."""
        inserted = self._inserted.get(tid)
        if inserted is not None:
            # Case 1: modification of a tuple inserted this transition.
            # Net effect stays "insert": retract the old inserted value
            # and assert the new one, both as append events.
            event = EventSpecifier(EventKind.APPEND)
            out = [tok.minus(relation, tid, inserted.values, event),
                   tok.plus(relation, tid, new_values, event)]
            inserted.values = new_values
            return out
        modified = self._modified.get(tid)
        if modified is not None:
            # Case 3, later modifications: swap the transition pair.
            retract = tok.delta_minus(
                relation, tid, modified.current, modified.original,
                self._replace_event(relation, modified.original,
                                    modified.current))
            modified.current = new_values
            assert_ = tok.delta_plus(
                relation, tid, new_values, modified.original,
                self._replace_event(relation, modified.original,
                                    new_values))
            return [retract, assert_]
        # Case 3, first modification of a pre-existing tuple: a simple −
        # with no event specifier, then the Δ+.
        self._modified[tid] = _ModifiedEntry(old_values, new_values)
        return [tok.minus(relation, tid, old_values, None),
                tok.delta_plus(relation, tid, new_values, old_values,
                               self._replace_event(relation, old_values,
                                                   new_values))]

    def record_delete(self, relation: str, tid: TupleId,
                      last_values: tuple) -> list[Token]:
        """A tuple was physically deleted."""
        inserted = self._inserted.pop(tid, None)
        if inserted is not None:
            # Case 2: inserted then deleted within the transition — net
            # effect nothing.  The final delete generates an insert −
            # (append specifier), which must NOT match on-delete rules.
            event = EventSpecifier(EventKind.APPEND)
            return [tok.minus(relation, tid, inserted.values, event)]
        modified = self._modified.pop(tid, None)
        if modified is not None:
            # Case 4: retract the transition pair, then assert the delete
            # event.  The delete − carries the value actually deleted.
            retract = tok.delta_minus(
                relation, tid, modified.current, modified.original,
                self._replace_event(relation, modified.original,
                                    modified.current))
            return [retract,
                    tok.minus(relation, tid, last_values,
                              EventSpecifier(EventKind.DELETE))]
        # Plain deletion of an untouched tuple.
        return [tok.minus(relation, tid, last_values,
                          EventSpecifier(EventKind.DELETE))]

    # ------------------------------------------------------------------
    # inspection / lifecycle
    # ------------------------------------------------------------------

    def net_effect(self, tid: TupleId) -> str:
        """The net effect so far for a tuple: 'insert', 'modify' or
        'untouched' (deleted tuples drop out of both sets)."""
        if tid in self._inserted:
            return "insert"
        if tid in self._modified:
            return "modify"
        return "untouched"

    def inserted_count(self) -> int:
        return len(self._inserted)

    def modified_count(self) -> int:
        return len(self._modified)

    def clear(self) -> None:
        """Forget everything — called at the end of each transition."""
        self._inserted.clear()
        self._modified.clear()

    # ------------------------------------------------------------------

    def _replace_event(self, relation: str, original: tuple,
                       current: tuple) -> EventSpecifier:
        """replace(target-list) with the net set of changed attributes."""
        schema = self._schemas.get(relation)
        if schema is None:
            changed = tuple(str(i) for i, (a, b)
                            in enumerate(zip(original, current)) if a != b)
        else:
            names = schema.names()
            changed = tuple(names[i] for i, (a, b)
                            in enumerate(zip(original, current)) if a != b)
        return EventSpecifier(EventKind.REPLACE, changed)

    def register_schema(self, relation: str, schema: Schema) -> None:
        """Teach the Δ-sets a relation's attribute names (for replace
        target-lists)."""
        self._schemas[relation] = schema
