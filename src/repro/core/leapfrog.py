"""Worst-case-optimal multiway joins: leapfrog triejoin over α-memories.

The pairwise TREAT/Rete join step probes one memory at a time, so cyclic
or many-variable conditions (triangles, diamonds, stars with cross
links) degrade superlinearly no matter which seek order the planner
picks: some intermediate chain enumerates combinations the remaining
conjuncts will reject.  This module implements the alternative join step
the :class:`~repro.core.join_planner.JoinPlanner` selects for such rules
— a leapfrog triejoin (Veldhuizen) walked incrementally per token:

* the rule's equi-join conjuncts are closed into **join classes** —
  connected components of (variable, attribute-position) endpoints; a
  class is one trie attribute, and fixing its value enforces every
  conjunct inside it by transitivity;
* a token seeds the walk by fixing the classes its own positions belong
  to, exactly like the paper's §4.2 constant substitution, but for *all*
  of the seed's join attributes at once;
* each remaining class is one **leapfrog level**: every participating
  memory exposes a sorted distinct-key view (a stored α-memory's
  :meth:`~repro.core.alpha.AlphaMemory.sorted_join_keys` over its hash
  join-index, or a view grouped on the fly from a restricted probe /
  virtual scan), and the leapfrog intersection of those views — galloped
  with ``seek(key)`` bisection — enumerates exactly the values every
  memory can extend;
* complete combinations are emitted in the rule's variable order with
  the non-equi residue evaluated as early as its variables are bound, so
  P-node contents, insertion stamps (one per complete combination) and
  hence agenda recency are identical to the pairwise step's.

Null and NaN values never satisfy an equi-join conjunct under
three-valued logic, so they are excluded from every level — matching the
pairwise probe guard in ``DiscriminationNetwork._join_candidates``.

Multiway joins run in the serial apply phase of token propagation (the
sharded match phase never joins), so ``parallel_workers`` composes
unchanged.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.core.alpha import MemoryEntry
from repro.core.pnode import Match
from repro.lang.expr import Bindings

__all__ = [
    "JoinClass", "LevelVar", "Level", "MultiwayPlan",
    "build_join_classes", "equijoin_graph_is_cyclic", "build_plan",
    "leapfrog_intersection", "multiway_seek",
]


class JoinClass:
    """One equivalence class of equi-joined (variable, position) pairs.

    All member attributes must hold one shared value in any match; a
    variable appearing at several positions of one class additionally
    requires intra-tuple equality among those positions.
    """

    __slots__ = ("index", "positions")

    def __init__(self, index: int,
                 positions: dict[str, tuple[int, ...]]):
        self.index = index
        #: variable -> its attribute positions inside this class
        self.positions = positions

    def __repr__(self) -> str:
        members = ", ".join(
            f"{var}[{','.join(map(str, positions))}]"
            for var, positions in sorted(self.positions.items()))
        return f"JoinClass({self.index}: {members})"


def build_join_classes(rule) -> list[JoinClass]:
    """Union-find the rule's equi-join endpoints into join classes.

    Deterministic: classes are ordered by their smallest (var, position)
    member, and each class's position lists are sorted.
    """
    parent: dict[tuple[str, int], tuple[str, int]] = {}

    def find(node):
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    def union(a, b):
        parent.setdefault(a, a)
        parent.setdefault(b, b)
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for conjunct in rule.joins:
        equi = conjunct.equijoin
        if equi is None:
            continue
        union((equi.left_var, equi.left_position),
              (equi.right_var, equi.right_position))

    groups: dict[tuple[str, int], list[tuple[str, int]]] = {}
    for node in parent:
        groups.setdefault(find(node), []).append(node)
    classes = []
    for members in sorted(groups.values(), key=min):
        positions: dict[str, list[int]] = {}
        for var, position in sorted(members):
            positions.setdefault(var, []).append(position)
        classes.append(JoinClass(
            len(classes),
            {var: tuple(plist) for var, plist in positions.items()}))
    return classes


def equijoin_graph_is_cyclic(rule) -> bool:
    """Does the rule's equi-join graph (variables as nodes, one edge
    per joined variable *pair*) contain a cycle?  Parallel conjuncts
    between the same pair count as one edge — pairwise handles those
    with a probe plus a filter just fine; a genuine cycle is what makes
    every pairwise order enumerate a superlinear intermediate."""
    edges = set()
    for conjunct in rule.joins:
        equi = conjunct.equijoin
        if equi is not None:
            edges.add(frozenset((equi.left_var, equi.right_var)))
    parent: dict[str, str] = {}

    def find(node):
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    for edge in sorted(tuple(sorted(e)) for e in edges):
        a, b = edge
        parent.setdefault(a, a)
        parent.setdefault(b, b)
        ra, rb = find(a), find(b)
        if ra == rb:
            return True
        parent[rb] = ra
    return False


class LevelVar:
    """One memory's participation in a leapfrog level."""

    __slots__ = ("var", "positions", "constraints")

    def __init__(self, var: str, positions: tuple[int, ...],
                 constraints: tuple):
        self.var = var
        #: this variable's positions inside the level's class (the view
        #: groups on the first; extras demand intra-tuple equality)
        self.positions = positions
        #: ``(class_index, positions)`` pairs already fixed when this
        #: level runs — the equality restrictions to probe/filter with
        self.constraints = constraints


class Level:
    """One trie level: the leapfrog intersection for one join class."""

    __slots__ = ("class_index", "vars")

    def __init__(self, class_index: int, level_vars: tuple[LevelVar, ...]):
        self.class_index = class_index
        self.vars = level_vars


class MultiwayPlan:
    """A compiled leapfrog trie walk for one rule (and optional seed).

    ``seed_var`` is None for the full enumeration used when Rete
    rebuilds a multiway rule after a flush.
    """

    __slots__ = ("rule_name", "seed_var", "n_classes", "seed_positions",
                 "levels", "prefixed", "emit_order", "residual_schedule")

    def __init__(self, rule_name, seed_var, n_classes, seed_positions,
                 levels, prefixed, emit_order, residual_schedule):
        self.rule_name = rule_name
        self.seed_var = seed_var
        self.n_classes = n_classes
        #: (class_index, seed positions) for classes the seed fixes
        self.seed_positions = seed_positions
        self.levels = levels
        #: (var, constraints) for non-seed variables all of whose
        #: classes are seed-fixed: restricted once, before the walk
        self.prefixed = prefixed
        #: non-seed variables in the rule's canonical order
        self.emit_order = emit_order
        #: per emit depth, the non-equi conjuncts first fully bound there
        self.residual_schedule = residual_schedule


def build_plan(rule, seed_var: str | None, classes: list[JoinClass],
               class_order: list[int]) -> MultiwayPlan:
    """Compile the trie walk: which classes the seed fixes, the level
    sequence for the rest (in the planner-chosen ``class_order``), each
    participant's accumulated equality constraints, and the residual
    conjunct schedule for emission."""
    seed_positions = []
    fixed_of: dict[str, list] = {}
    for cls in classes:
        if seed_var is not None and seed_var in cls.positions:
            seed_positions.append((cls.index, cls.positions[seed_var]))
            for var, positions in cls.positions.items():
                if var != seed_var:
                    fixed_of.setdefault(var, []).append(
                        (cls.index, positions))
    levels = []
    in_levels: set[str] = set()
    for class_index in class_order:
        cls = classes[class_index]
        level_vars = []
        for var in sorted(cls.positions):
            level_vars.append(LevelVar(
                var, cls.positions[var],
                tuple(fixed_of.get(var, ()))))
        levels.append(Level(class_index, tuple(level_vars)))
        for var in cls.positions:
            in_levels.add(var)
            fixed_of.setdefault(var, []).append(
                (class_index, cls.positions[var]))
    prefixed = tuple(
        (var, tuple(fixed_of[var]))
        for var in rule.variables
        if var != seed_var and var not in in_levels and var in fixed_of)
    emit_order = tuple(var for var in rule.variables if var != seed_var)
    residuals = [j for j in rule.joins if j.equijoin is None]
    bound = {seed_var} if seed_var is not None else set()
    schedule = []
    for var in emit_order:
        bound.add(var)
        due = tuple(j for j in residuals if j.variables <= bound)
        residuals = [j for j in residuals if not j.variables <= bound]
        schedule.append(due)
    return MultiwayPlan(rule.name, seed_var, len(classes),
                        tuple(seed_positions), tuple(levels), prefixed,
                        emit_order, tuple(schedule))


# ----------------------------------------------------------------------
# the leapfrog intersection
# ----------------------------------------------------------------------

def leapfrog_intersection(key_lists, seek_counter: list):
    """Yield the values common to every sorted distinct-key list.

    The classic leapfrog: iterators are kept sorted by current key; the
    smallest repeatedly ``seek``\\ s (bisection, galloping past runs of
    non-matching keys) to the largest's key, and a full agreement emits
    the value.  ``seek_counter[0]`` accumulates the number of seeks
    performed (the ``joins.leapfrog_seeks`` engine counter).
    """
    for keys in key_lists:
        if not keys:
            return
    if len(key_lists) == 1:
        yield from key_lists[0]
        return
    iters = [[keys, 0, len(keys)] for keys in key_lists]
    iters.sort(key=lambda it: it[0][0])
    count = len(iters)
    at = 0
    max_key = iters[-1][0][0]
    while True:
        it = iters[at]
        keys, i, n = it
        if keys[i] == max_key:
            yield max_key
            i += 1
        else:
            i = bisect_left(keys, max_key, i + 1, n)
            seek_counter[0] += 1
        if i >= n:
            return
        it[1] = i
        max_key = keys[i]
        at += 1
        if at == count:
            at = 0


class _IndexedView:
    """Group lookup over a stored memory's live hash join-index —
    the unrestricted participant's view, paired with the memory's
    persistent :meth:`sorted_join_keys` list."""

    __slots__ = ("memory", "position")

    def __init__(self, memory, position: int):
        self.memory = memory
        self.position = position

    def __getitem__(self, value):
        return list(self.memory.join_probe(self.position, value))


# ----------------------------------------------------------------------
# the trie walk
# ----------------------------------------------------------------------

def multiway_seek(network, rule, plan: MultiwayPlan,
                  seed_entry: MemoryEntry | None, pending_vars,
                  token) -> bool:
    """Run one multiway join step; returns True when the P-node gained
    at least one match.

    With a ``seed_entry`` this finds every new complete combination
    containing the seed (the TREAT seek / Rete activation for one
    token); with None it enumerates all complete combinations (the Rete
    β-less rebuild after priming or a dynamic flush).  Stamp discipline
    matches the pairwise step exactly: the network stamp advances once
    per complete combination reaching the P-node.
    """
    memories = network._memories
    rule_name = rule.name
    pnode = network._pnodes[rule_name]
    fixed: list = [None] * plan.n_classes
    if seed_entry is not None:
        values = seed_entry.values
        for class_index, positions in plan.seed_positions:
            value = values[positions[0]]
            if value is None or value != value:
                return False      # null/NaN never equi-joins
            for position in positions[1:]:
                if values[position] != value:
                    return False
            fixed[class_index] = value
    partial: dict[str, MemoryEntry] = {}
    bindings = Bindings()
    if seed_entry is not None:
        partial[plan.seed_var] = seed_entry
        _bind(bindings, plan.seed_var, seed_entry)
    entry_cache: dict = {}
    view_cache: dict = {}
    seeks = [0]
    refined: dict[str, list] = {}

    def restricted_entries(var: str, constraints) -> list:
        """The var's memory contents under the already-fixed equality
        constraints — probed through the hash join-index (with the
        same demand-promotion feedback as the pairwise step) or the
        sharpened virtual scan, then filtered.  Memoized per seek."""
        flat = []
        for class_index, positions in constraints:
            value = fixed[class_index]
            for position in positions:
                flat.append((position, value))
        cache_key = (var, tuple(flat))
        cached = entry_cache.get(cache_key)
        if cached is not None:
            return cached
        memory = memories[(rule_name, var)]
        if memory.is_virtual:
            if flat:
                position, value = flat[0]
                entries = network._virtual_entries(
                    memory, var, partial, (position, value),
                    pending_vars, token)
                rest = flat[1:]
            else:
                entries = network._virtual_entries(
                    memory, var, partial, None, pending_vars, token)
                rest = ()
        else:
            memory.probe_count += 1
            if flat:
                position, value = flat[0]
                if memory.has_join_index(position) \
                        or memory.note_unindexed_probe(position):
                    entries = memory.join_probe(position, value)
                    rest = flat[1:]
                else:
                    entries = memory.entries()
                    rest = flat
            else:
                entries = memory.entries()
                rest = ()
        if rest:
            out = [entry for entry in entries
                   if all(entry.values[p] == v for p, v in rest)]
        else:
            out = list(entries)
        entry_cache[cache_key] = out
        return out

    def level_view(level_var: LevelVar):
        """The participant's sorted distinct-key view for one level:
        ``(keys, groups)`` where ``groups[key]`` lists the entries
        carrying that key.  An unrestricted stored participant reuses
        the memory's persistent sorted iterator; everything else is
        grouped on the fly from the restricted entries (and memoized
        per seek)."""
        var = level_var.var
        positions = level_var.positions
        constraints = level_var.constraints
        key_values = tuple(fixed[ci] for ci, _ in constraints)
        cache_key = (var, positions, key_values)
        view = view_cache.get(cache_key)
        if view is not None:
            return view
        memory = memories[(rule_name, var)]
        if not constraints and len(positions) == 1 \
                and not memory.is_virtual \
                and memory.has_join_index(positions[0]):
            view = (memory.sorted_join_keys(positions[0]),
                    _IndexedView(memory, positions[0]))
            memory.probe_count += 1
        else:
            entries = restricted_entries(var, constraints)
            first = positions[0]
            rest = positions[1:]
            groups: dict = {}
            for entry in entries:
                value = entry.values[first]
                if value is None or value != value:
                    continue
                if rest and any(entry.values[p] != value for p in rest):
                    continue
                group = groups.get(value)
                if group is None:
                    groups[value] = [entry]
                else:
                    group.append(entry)
            view = (sorted(groups), groups)
        view_cache[cache_key] = view
        return view

    matched = False
    emit_order = plan.emit_order
    schedule = plan.residual_schedule
    n_emit = len(emit_order)

    def emit(depth: int) -> None:
        nonlocal matched
        if depth == n_emit:
            network._stamp += 1
            if pnode.insert(Match.of(dict(partial)), network._stamp):
                network._note_pnode_insert()
                matched = True
            return
        var = emit_order[depth]
        conjuncts = schedule[depth]
        for entry in refined[var]:
            _bind(bindings, var, entry)
            if all(j.evaluate(bindings) is True for j in conjuncts):
                partial[var] = entry
                emit(depth + 1)
                del partial[var]
            _unbind(bindings, var)

    levels = plan.levels
    n_levels = len(levels)

    def walk(level_index: int) -> None:
        if level_index == n_levels:
            emit(0)
            return
        level = levels[level_index]
        views = []
        for level_var in level.vars:
            keys, groups = level_view(level_var)
            if not keys:
                return
            views.append((level_var.var, keys, groups))
        class_index = level.class_index
        for value in leapfrog_intersection([v[1] for v in views], seeks):
            fixed[class_index] = value
            for var, _, groups in views:
                refined[var] = groups[value]
            walk(level_index + 1)

    live = True
    for var, constraints in plan.prefixed:
        entries = restricted_entries(var, constraints)
        if not entries:
            live = False
            break
        refined[var] = entries
    if live:
        walk(0)
    if seeks[0] and network.stats.enabled:
        network.stats.bump("joins.leapfrog_seeks", seeks[0])
    return matched


def _bind(bindings: Bindings, var: str, entry: MemoryEntry) -> None:
    bindings.current[var] = entry.values
    if entry.old_values is not None:
        bindings.previous[var] = entry.old_values


def _unbind(bindings: Bindings, var: str) -> None:
    bindings.current.pop(var, None)
    bindings.previous.pop(var, None)
