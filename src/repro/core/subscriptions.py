"""Application notification: trigger delivery to subscribers.

The paper's conclusion lists as future work "support for streamlined
development of applications that can receive data from database triggers
asynchronously (e.g., safety and integrity alert monitors, stock
tickers)".  This module implements that: applications register callbacks
on rule names (or on every rule) and receive a :class:`Notification`
for each firing — the rule, the firing sequence number, and a read-only
snapshot of the matched data — decoupled from the recognize-act cycle:
callbacks are queued during rule processing and delivered after the
cycle completes, so a subscriber can never observe (or deadlock on) a
half-finished cascade, and exceptions in subscribers cannot corrupt rule
processing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.pnode import FrozenMatches


@dataclass(frozen=True)
class MatchSnapshot:
    """One matched combination, frozen for delivery: per tuple variable,
    its attribute values (and pre-transition values when present)."""

    values: dict[str, tuple]
    previous: dict[str, tuple]

    def __getitem__(self, var: str) -> tuple:
        return self.values[var]


@dataclass(frozen=True)
class Notification:
    """One rule firing as seen by a subscriber."""

    sequence: int
    rule_name: str
    matches: tuple[MatchSnapshot, ...]

    def __len__(self) -> int:
        return len(self.matches)


Subscriber = Callable[[Notification], None]


@dataclass
class _Subscription:
    rule_name: str | None           # None = every rule
    callback: Subscriber
    token: int


class SubscriptionHub:
    """Registry and delivery queue for firing subscribers."""

    def __init__(self):
        self._subscriptions: list[_Subscription] = []
        self._queue: list[Notification] = []
        self._next_token = 1
        #: exceptions raised by subscribers (delivery never propagates
        #: them into rule processing); newest last
        self.errors: list[tuple[int, Exception]] = []

    # ------------------------------------------------------------------

    def subscribe(self, callback: Subscriber,
                  rule_name: str | None = None) -> int:
        """Register a callback; returns a token for unsubscribe.

        ``rule_name`` of None subscribes to every rule's firings.
        """
        token = self._next_token
        self._next_token += 1
        self._subscriptions.append(
            _Subscription(rule_name, callback, token))
        return token

    def unsubscribe(self, token: int) -> bool:
        """Remove a subscription; returns False if the token is unknown."""
        before = len(self._subscriptions)
        self._subscriptions = [s for s in self._subscriptions
                               if s.token != token]
        return len(self._subscriptions) != before

    @property
    def active(self) -> bool:
        return bool(self._subscriptions)

    # ------------------------------------------------------------------

    def record_firing(self, sequence: int, rule_name: str,
                      matches: FrozenMatches) -> None:
        """Queue a firing for delivery (called inside the cycle)."""
        if not any(s.rule_name in (None, rule_name)
                   for s in self._subscriptions):
            return
        snapshots = tuple(
            MatchSnapshot(
                values={var: entry.values
                        for var, entry in match.bindings},
                previous={var: entry.old_values
                          for var, entry in match.bindings
                          if entry.old_values is not None})
            for match in matches.matches())
        self._queue.append(Notification(sequence, rule_name, snapshots))

    def deliver(self) -> int:
        """Deliver queued notifications; returns how many were sent.

        Called after the recognize-act cycle completes.  Subscriber
        exceptions are captured into :attr:`errors`, never raised.
        """
        delivered = 0
        queue, self._queue = self._queue, []
        for notification in queue:
            for subscription in list(self._subscriptions):
                if subscription.rule_name not in (None,
                                                  notification.rule_name):
                    continue
                try:
                    subscription.callback(notification)
                    delivered += 1
                except Exception as exc:      # noqa: BLE001 — isolate
                    self.errors.append((notification.sequence, exc))
        return delivered
