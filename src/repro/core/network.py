"""Discrimination network base: token routing, memories, priming, flush.

The shared machinery of the TREAT/A-TREAT and Rete networks:

* building one α-memory per (rule, tuple variable) with the right kind
  (stored / virtual / dynamic / simple) and registering its selection
  anchor in the top-level :class:`~repro.core.selection_index
  .SelectionIndex`;
* routing a token: probe the selection index with the token's values,
  verify each candidate memory's residual predicate, apply the Figure-5
  :func:`~repro.core.alpha.dispatch` action, and hand insertions to the
  subclass's join step;
* routing a *batch* of tokens (:meth:`DiscriminationNetwork
  .process_tokens`): a whole transition Δ-set is propagated with one
  selection-index probe per distinct (relation, values), memoized
  residual verification, and — so that virtual α-memories answer joins
  exactly as the per-token path would — a batch overlay that masks
  not-yet-propagated heap mutations from base-relation scans;
* priming at rule activation — "running one one-variable query for each
  tuple variable in the rule condition to prime the α-memory nodes, plus
  running a query equivalent to the entire rule condition to load the
  P-node" (paper section 6), both through the ordinary query optimizer;
* flushing dynamic memories (and the P-nodes fed by them) after each
  transition's rule processing.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.catalog.catalog import Catalog
from repro.core.alpha import (
    AlphaMemory, MemoryEntry, MemoryOp, VirtualAlphaMemory, dispatch,
    residual_memo_key)
from repro.core.join_planner import JoinPlanner
from repro.core.leapfrog import multiway_seek
from repro.core.pnode import Match, PNode
from repro.core.rules import CompiledRule, VariableSpec
from repro.core.selection_index import SelectionIndex
from repro.core.shard import merge_results, partition
from repro.core.tokens import Token, TokenKind
from repro.errors import RuleError
from repro.lang.expr import Bindings
from repro.observe import EngineStats, NULL_STATS
from repro.planner.optimizer import Optimizer

#: "auto" virtual policy: make a pattern memory virtual when its selection
#: keeps at least this fraction of the relation…
_VIRTUAL_SELECTIVITY = 0.25
#: …and the relation has at least this many tuples.
_VIRTUAL_MIN_ROWS = 10

VirtualPolicy = str | Callable[[VariableSpec], bool]


class DiscriminationNetwork:
    """Base class for the rule condition testing networks."""

    #: subclasses override (used in benchmarks / repr)
    network_name = "abstract"

    def __init__(self, catalog: Catalog,
                 optimizer: Optimizer | None = None,
                 selection_index: SelectionIndex | None = None,
                 virtual_policy: VirtualPolicy = "auto",
                 on_match: Callable[[CompiledRule], None] | None = None,
                 stats: EngineStats | None = None,
                 join_index_policy: str = "demand",
                 join_mode: str | None = None):
        self.catalog = catalog
        self.optimizer = optimizer or Optimizer(catalog)
        self.selection_index = selection_index or SelectionIndex()
        #: engine counter registry, shared with the selection index and
        #: every memory / P-node built by :meth:`add_rule`
        self.stats = stats or NULL_STATS
        self.selection_index.stats = self.stats
        self.virtual_policy = virtual_policy
        if join_index_policy not in ("eager", "demand"):
            raise RuleError(
                f"unknown join index policy {join_index_policy!r}; "
                f"expected 'eager' or 'demand'")
        #: "eager" builds hash join-indexes on every equality-probed
        #: position at add_rule time; "demand" (default) lets
        #: :meth:`AlphaMemory.note_unindexed_probe` promote them at
        #: runtime once a scan-cost threshold is crossed
        self.join_index_policy = join_index_policy
        #: the adaptive seek/chain-order planner (cost-driven ordering
        #: and pairwise-vs-multiway algorithm choice, memoized per
        #: cardinality bucket)
        self.join_planner = JoinPlanner(self, mode=join_mode)
        self.on_match = on_match or (lambda rule: None)
        self.rules: dict[str, CompiledRule] = {}
        self._memories: dict[tuple[str, str],
                             AlphaMemory | VirtualAlphaMemory] = {}
        self._pnodes: dict[str, PNode] = {}
        self._stamp = 0
        #: the in-flight batch, or None on the per-token path
        self._batch: _BatchState | None = None
        #: propagation worker pool (a :class:`~repro.core.shard
        #: .ShardPool`, set by the Database); None keeps every batch
        #: on the serial path
        self.worker_pool = None
        #: virtual α-memories currently in the network (overlay gate)
        self._virtual_count = 0
        #: diagnostics: tokens processed since construction
        self.tokens_processed = 0
        #: diagnostics: process_tokens batches routed since construction
        self.batches_processed = 0

    # ------------------------------------------------------------------
    # rule lifecycle
    # ------------------------------------------------------------------

    def add_rule(self, rule: CompiledRule, prime: bool = True) -> None:
        """Build the rule's memories and optionally prime them."""
        if rule.name in self.rules:
            raise RuleError(f"rule {rule.name!r} already in network")
        self.rules[rule.name] = rule
        pnode = self._pnodes[rule.name] = PNode(rule.name, rule.variables)
        pnode.stats = self.stats
        for var in rule.variables:
            spec = rule.specs[var]
            memory = self._make_memory(rule, spec)
            memory.rule = rule
            memory.pnode = pnode
            memory.stats = self.stats
            if memory.is_virtual:
                self._virtual_count += 1
            self._memories[(rule.name, var)] = memory
            self.selection_index.add(spec.relation,
                                     spec.analysis.anchor
                                     if spec.analysis else None,
                                     memory)
        self._build_join_indexes(rule)
        if prime:
            self.prime_rule(rule)

    def _build_join_indexes(self, rule: CompiledRule) -> None:
        """Under the ``"eager"`` join-index policy, give each stored
        α-memory a hash join-index on every attribute position the
        rule's join graph probes with equality, so the join step's
        candidate lookup is a bucket fetch instead of a full-memory
        scan.  Built before priming; maintained by the memories
        themselves afterwards.

        Under the default ``"demand"`` policy nothing is built here:
        the join step counts un-indexed equality scans per (memory,
        position) and :meth:`AlphaMemory.note_unindexed_probe` promotes
        an index once the accumulated scan cost crosses its threshold —
        so never-probed positions never pay index maintenance."""
        if self.join_index_policy != "eager":
            return
        for conjunct in rule.joins:
            equi = conjunct.equijoin
            if equi is None:
                continue
            for var, position in ((equi.left_var, equi.left_position),
                                  (equi.right_var, equi.right_position)):
                memory = self._memories.get((rule.name, var))
                if memory is None or memory.is_virtual \
                        or memory.spec.is_simple:
                    continue
                memory.ensure_join_index(position)

    def remove_rule(self, name: str) -> None:
        """Tear down the rule's memories and P-node."""
        rule = self.rules.pop(name, None)
        if rule is None:
            raise RuleError(f"rule {name!r} not in network")
        for var in rule.variables:
            memory = self._memories.pop((name, var))
            if memory.is_virtual:
                self._virtual_count -= 1
            self.selection_index.remove(memory)
        del self._pnodes[name]
        self.join_planner.forget(name)

    def _make_memory(self, rule: CompiledRule, spec: VariableSpec):
        if self._wants_virtual(spec):
            return VirtualAlphaMemory(rule.name, spec)
        return AlphaMemory(rule.name, spec)

    def _wants_virtual(self, spec: VariableSpec) -> bool:
        """Decide stored vs virtual for a pattern (ungated) memory.

        Virtual nodes only make sense for pattern conditions on
        multi-variable rules: dynamic memories are tiny and transient,
        and simple memories store nothing anyway.
        """
        if spec.is_dynamic or spec.is_simple:
            return False
        policy = self.virtual_policy
        if callable(policy):
            return bool(policy(spec))
        if policy == "never":
            return False
        if policy == "always":
            return True
        if policy != "auto":
            raise RuleError(f"unknown virtual policy {policy!r}")
        stats = self.optimizer.stats
        rows = stats.cardinality(spec.relation)
        if rows < _VIRTUAL_MIN_ROWS:
            return False
        kept = stats.scan_cardinality(spec.relation, spec.var,
                                      spec.selection_conjuncts)
        return kept / rows >= _VIRTUAL_SELECTIVITY

    # ------------------------------------------------------------------
    # priming
    # ------------------------------------------------------------------

    def prime_rule(self, rule: CompiledRule) -> None:
        """Load stored memories and the P-node from current data."""
        for var in rule.variables:
            spec = rule.specs[var]
            memory = self._memories[(rule.name, var)]
            if memory.is_virtual or spec.is_dynamic or spec.is_simple:
                continue
            relation = self.catalog.relation(spec.relation)
            for stored in relation.scan():
                if spec.selection_matches(stored.values, None):
                    memory.insert(MemoryEntry(stored.tid, stored.values))
        if rule.has_dynamic_variable:
            # Event/transition/new-gated rules can only match data bound
            # during a transition; nothing to load now.
            self._after_prime(rule)
            return
        plan = self.optimizer.plan_variables(
            rule.variables, rule.condition, rule.var_relations)
        pnode = self._pnodes[rule.name]
        ctx = _PrimeContext(self.catalog)
        inserted = 0
        for bound in plan.rows(ctx, Bindings()):
            parts = {var: MemoryEntry(bound.tids[var], bound.current[var])
                     for var in rule.variables}
            self._stamp += 1
            if pnode.insert(Match.of(parts), self._stamp):
                inserted += 1
        self._after_prime(rule)
        if inserted:
            if self.stats.enabled:
                self.stats.bump("pnode.inserts", inserted)
            self.on_match(rule)

    def _after_prime(self, rule: CompiledRule) -> None:
        """Subclass hook (Rete rebuilds its β chain here)."""

    # ------------------------------------------------------------------
    # token routing
    # ------------------------------------------------------------------

    def process_token(self, token: Token) -> None:
        """Route one token through the network (paper Figure 5).

        A thin wrapper over the batched path: one token, no caches."""
        self._process_one(token, None)

    def process_tokens(self, tokens: Sequence[Token]) -> None:
        """Route a transition Δ-set through the network as one batch.

        Semantically identical to calling :meth:`process_token` on each
        token in order against the per-token heap states, but
        set-oriented: the selection index is probed once per distinct
        (relation, values), residual verification is memoized, and
        virtual α-memories answer joins through a batch overlay that
        reconstructs the heap state each token would have seen had its
        mutation been routed immediately (tuples asserted by later
        tokens are masked out; tuples they retract or overwrite are
        restored).
        """
        if not isinstance(tokens, (list, tuple)):
            tokens = list(tokens)
        if not tokens:
            return
        if len(tokens) == 1:
            self._process_one(tokens[0], None)
            return
        pool = self.worker_pool
        if pool is not None and pool.accepts(len(tokens)):
            self._process_tokens_sharded(tokens, pool)
            return
        self.batches_processed += 1
        self.tokens_processed += len(tokens)
        stats = self.stats
        stats.note_tokens_routed(len(tokens), batches=1)
        # The overlay only matters to virtual-memory base-relation scans;
        # skip its per-token bookkeeping when no memory is virtual.
        track_overlay = self._virtual_count > 0
        batch = _BatchState(tokens, track_overlay=track_overlay)
        self._batch = batch
        process_one = self._process_one
        try:
            if track_overlay:
                advance = batch.advance
                for token in tokens:
                    advance(token)
                    process_one(token, batch)
            else:
                for token in tokens:
                    process_one(token, batch)
        finally:
            self._batch = None
            if stats.enabled:
                if batch.memo_hits:
                    stats.bump("selection.probe_memo_hits",
                               batch.memo_hits)
                if batch.pnode_inserts:
                    stats.bump("pnode.inserts", batch.pnode_inserts)

    def _process_tokens_sharded(self, tokens: Sequence[Token],
                                pool) -> None:
        """Route a Δ-set through the two-phase sharded pipeline.

        **Match phase (parallel, read-only):** the Δ-set is
        hash-partitioned by ``(relation, anchor-key)`` — the batch
        probe-cache key, so co-cached tokens co-shard — and each shard
        runs :meth:`_match_shard` on the worker pool: selection-index
        probes, Figure-5 dispatch, and residual verification, against
        network structures that are immutable during propagation.  No
        memory, P-node, stamp, or agenda state is touched.

        **Apply phase (serial, deterministic merge):** decisions come
        back keyed by original token index and are replayed on the
        calling thread in exactly the serial token order — memory
        mutation, joins, P-node inserts, stamps, and agenda
        notifications all happen here, so cascade firing order,
        ``max_rule_cascade`` traces, undo scopes, and WAL record order
        are identical to serial execution by construction.  (WAL
        journaling happens at mutation time, before routing, so token
        propagation never reorders the log; the durability manager's
        quiesce hook flushes deferred tokens *before* writing the
        boundary record — merge-then-flush.)
        """
        self.batches_processed += 1
        self.tokens_processed += len(tokens)
        stats = self.stats
        stats.note_tokens_routed(len(tokens), batches=1)
        shards = partition(tokens, self.selection_index, pool.workers)
        results = pool.map(self._match_shard, shards)
        decided, counters, memo_hits = merge_results(results)
        if stats.enabled:
            stats.bump("shard.batches")
            stats.bump("shard.shards", sum(1 for s in shards if s))
            stats.merge_counts(counters)
        track_overlay = self._virtual_count > 0
        batch = _BatchState(tokens, track_overlay=track_overlay)
        batch.memo_hits = memo_hits
        self._batch = batch
        process_one = self._process_one
        get_decision = decided.get
        try:
            if track_overlay:
                advance = batch.advance
                for idx, token in enumerate(tokens):
                    advance(token)
                    decision = get_decision(idx)
                    if decision is not None:
                        process_one(token, batch, decision)
            else:
                for idx, token in enumerate(tokens):
                    decision = get_decision(idx)
                    if decision is not None:
                        process_one(token, batch, decision)
        finally:
            self._batch = None
            if stats.enabled:
                if batch.memo_hits:
                    stats.bump("selection.probe_memo_hits",
                               batch.memo_hits)
                if batch.pnode_inserts:
                    stats.bump("pnode.inserts", batch.pnode_inserts)

    def _match_shard(self, items: list) -> tuple:
        """Match phase for one shard (runs on a worker thread).

        Read-only with respect to all shared network state: probes the
        selection index (immutable during propagation — rule lifecycle
        cannot interleave with a batch), applies the pure Figure-5
        dispatch table, and verifies residual predicates, memoized in
        shard-local caches.  Counters go to a private
        :class:`~repro.observe.EngineStats` merged at the boundary, so
        workers never contend on (or interleave in) the shared
        registry.

        Returns ``(decisions, counters, memo_hits)`` where each
        decision is ``(token_index, candidates, ops)`` and ``ops``
        aligns 1:1 with ``candidates``: None (skip), a delete op, or
        an insert op whose residual already verified.
        """
        local_stats = EngineStats(enabled=self.stats.enabled)
        anchor_positions = self.selection_index.anchor_positions
        offload = (self.worker_pool.offload
                   if self.worker_pool is not None else None)
        probe_cache: dict = {}
        stab_cache: dict = {}
        residual_cache: dict = {}
        deferred: dict = {} if offload is not None else None
        decisions: list = []
        memo_hits = 0
        for idx, token in items:
            positions = anchor_positions.get(token.relation)
            if not positions:
                anchor_vals: tuple = ()
            elif len(positions) == 1:
                anchor_vals = (token.values[positions[0]],)
            else:
                anchor_vals = tuple(token.values[p] for p in positions)
            probe_key = (token.relation, anchor_vals)
            candidates = probe_cache.get(probe_key)
            if candidates is None:
                candidates = probe_cache[probe_key] = \
                    self._sorted_probe(token, stab_cache, local_stats)
            else:
                memo_hits += 1
            if not candidates:
                continue
            plus_op = (MemoryOp("insert",
                                MemoryEntry(token.tid, token.values))
                       if token.kind is TokenKind.PLUS else None)
            ops: list = []
            for memory in candidates:
                spec = memory.spec
                if plus_op is not None and spec.event is None \
                        and not spec.is_transition:
                    op = plus_op
                else:
                    op = dispatch(spec, token)
                    if op is None or op.op == "delete":
                        ops.append(op)
                        continue
                entry = op.entry
                if spec.residual is None:
                    ops.append(op)
                    continue
                if spec.residual_positions is None:
                    ops.append(op if spec.residual_matches(
                        entry.values, entry.old_values) else None)
                    continue
                key = residual_memo_key(spec, entry)
                accepted = residual_cache.get(key)
                if accepted is None:
                    if deferred is not None:
                        # first sight of this key: park the slot and
                        # batch the evaluation to the process pool
                        deferred[key] = (spec, entry.values,
                                         entry.old_values)
                        residual_cache[key] = _DEFERRED_MARK
                        ops.append(_DeferredOp(key, op))
                        continue
                    accepted = residual_cache[key] = \
                        spec.residual_matches(entry.values,
                                              entry.old_values)
                elif accepted is _DEFERRED_MARK:
                    ops.append(_DeferredOp(key, op))
                    continue
                ops.append(op if accepted else None)
            decisions.append((idx, candidates, ops))
        if deferred:
            self._resolve_deferred(decisions, deferred, offload,
                                   local_stats)
        return (decisions,
                local_stats.counters if local_stats.enabled else None,
                memo_hits)

    @staticmethod
    def _resolve_deferred(decisions: list, deferred: dict, offload,
                          local_stats) -> None:
        """Replace parked residual slots with verified ops, using the
        process-pool answers when available and inline evaluation
        otherwise (the results are identical either way — residual
        evaluation is pure)."""
        answers = offload.evaluate(deferred)
        if answers is None:
            answers = {key: spec.residual_matches(values, old)
                       for key, (spec, values, old) in deferred.items()}
        elif local_stats.enabled:
            local_stats.bump("shard.residual_offloads")
            local_stats.bump("shard.residuals_offloaded",
                             len(deferred))
        for _, _, ops in decisions:
            for i, op in enumerate(ops):
                if type(op) is _DeferredOp:
                    ops[i] = op.op if answers[op.key] else None

    def _process_one(self, token: Token,
                     batch: _BatchState | None,
                     decided: tuple | None = None) -> None:
        if decided is not None:
            candidates, ops = decided
            op_iter = iter(ops)
        elif batch is None:
            self.tokens_processed += 1
            self.stats.note_tokens_routed()
            candidates = self._sorted_probe(token, None)
            op_iter = None
        else:
            # Key on the anchored attribute values only: tuples differing
            # just in unanchored columns share one probe + sort.
            positions = self.selection_index.anchor_positions.get(
                token.relation)
            if not positions:
                anchor_vals: tuple = ()
            elif len(positions) == 1:
                anchor_vals = (token.values[positions[0]],)
            else:
                anchor_vals = tuple(token.values[p] for p in positions)
            probe_key = (token.relation, anchor_vals)
            candidates = batch.probe_cache.get(probe_key)
            if candidates is None:
                candidates = batch.probe_cache[probe_key] = \
                    self._sorted_probe(token, batch.stab_cache)
            else:
                batch.memo_hits += 1
            op_iter = None
        # The ProcessedMemories bookkeeping only matters when this token
        # reaches more than one memory; the common single-candidate case
        # skips it entirely.
        if len(candidates) > 1:
            pending: dict[str, set[str]] | None = {}
            for memory in candidates:
                pending.setdefault(memory.rule_name, set()).add(
                    memory.spec.var)
        else:
            pending = None
        deleted_rules: set[str] = set()
        # A + token means "insert (tid, values)" at every pattern-gated
        # memory (Figure 5, first column): build that entry once and skip
        # the dispatch-table walk for this overwhelmingly common case.
        # (The sharded match phase already resolved ops; its apply calls
        # skip dispatch and residual work entirely.)
        plus_entry = (MemoryEntry(token.tid, token.values)
                      if op_iter is None and token.kind is TokenKind.PLUS
                      else None)
        for memory in candidates:
            rule = memory.rule
            spec = memory.spec
            if pending is None:
                pending_vars: set[str] | tuple = ()
            else:
                pending[rule.name].discard(spec.var)
                pending_vars = pending[rule.name]
            if op_iter is not None:
                # precomputed decision: residual already verified
                op = next(op_iter)
                if op is None:
                    continue
                if op.op == "delete":
                    self._apply_delete(rule, memory, op.tid,
                                       deleted_rules)
                    continue
                entry = op.entry
            elif plus_entry is not None and spec.event is None \
                    and not spec.is_transition:
                entry = plus_entry
            else:
                op = dispatch(spec, token)
                if op is None:
                    continue
                if op.op == "delete":
                    self._apply_delete(rule, memory, op.tid,
                                       deleted_rules)
                    continue
                entry = op.entry
            if op_iter is None:
                # insertion: verify the residual before accepting
                if spec.residual is None:
                    accepted = True
                elif batch is None or spec.residual_positions is None:
                    accepted = spec.residual_matches(entry.values,
                                                     entry.old_values)
                else:
                    key = residual_memo_key(spec, entry)
                    residual_cache = batch.residual_cache
                    accepted = residual_cache.get(key)
                    if accepted is None:
                        accepted = residual_cache[key] = \
                            spec.residual_matches(entry.values,
                                                  entry.old_values)
                if not accepted:
                    continue
            if spec.is_simple:
                # Simple memories pass matching data straight to the
                # P-node (paper section 4.3.3).
                self._stamp += 1
                if memory.pnode.insert(Match(((spec.var, entry),)),
                                       self._stamp):
                    self._note_pnode_insert()
                    self.on_match(rule)
                continue
            self._handle_insert(rule, spec, memory, entry,
                                pending_vars=pending_vars,
                                token=token)

    def _apply_delete(self, rule: CompiledRule, memory, tid,
                      deleted_rules: set[str]) -> None:
        """Apply one delete-kind memory op: drop the entry from a
        stored memory, and — once per (rule, token) — purge the
        P-node and run the subclass delete hook."""
        if not memory.is_virtual and not memory.spec.is_simple:
            memory.remove(tid)
        if rule.name not in deleted_rules:
            deleted_rules.add(rule.name)
            memory.pnode.delete_by_tid(tid)
            self._handle_delete(rule, tid)

    def _note_pnode_insert(self) -> None:
        """Count one accepted P-node insertion: batch-aggregated while
        a batch is in flight (a per-event bump would dominate the
        counter budget on large batches), a direct bump otherwise."""
        batch = self._batch
        if batch is not None:
            batch.pnode_inserts += 1
        elif self.stats.enabled:
            self.stats.bump("pnode.inserts")

    def _handle_insert(self, rule: CompiledRule, spec: VariableSpec,
                       memory, entry: MemoryEntry,
                       pending_vars: set[str], token: Token) -> None:
        """Subclass hook: store the entry and seek new combinations.

        ``pending_vars`` are this rule's variables that will receive the
        same token later in the processing order — the ProcessedMemories
        protocol: the token's own tuple must be excluded when consulting
        their (virtual) memories, so self-joins count each combination
        exactly once.
        """
        raise NotImplementedError

    def _handle_delete(self, rule: CompiledRule, tid) -> None:
        """Subclass hook after a deletion (Rete drops β partials here).

        Called once per (rule, token); α-memory and P-node cleanup has
        already happened.
        """

    def _run_multiway(self, rule: CompiledRule, plan,
                      seed_entry: MemoryEntry | None, pending_vars,
                      token: Token | None) -> bool:
        """Run one leapfrog-triejoin step (see
        :func:`repro.core.leapfrog.multiway_seek`); returns True when
        the rule's P-node gained a match.  Always called from the
        serial apply phase, so it composes with sharded propagation."""
        if self.stats.enabled:
            self.stats.bump("joins.multiway_seeks")
        return multiway_seek(self, rule, plan, seed_entry, pending_vars,
                             token)

    def _sorted_probe(self, token: Token, stab_cache: dict | None,
                      stats: EngineStats | None = None) -> list:
        candidates = self.selection_index.probe(token.relation,
                                                token.values, stab_cache,
                                                stats=stats)
        # Deterministic processing order defines the sequential
        # "ProcessedMemories" semantics for self-joins.
        candidates.sort(key=_memory_order)
        return candidates

    def _join_candidates(self, memory, var: str, partial: dict,
                         conjuncts, pending_vars, token: Token | None):
        """One join step's candidate entries, plus the equi-join
        conjunct the access path already *enforces* (None when every
        conjunct must still be evaluated over the candidates).

        Stored memories answer an equality probe from a hash
        join-index bucket; a probe that finds no index is noted (the
        demand-driven promotion signal) and degrades — explicitly — to
        a full-memory scan with no conjunct enforced.  Virtual memories
        answer from the base relation via :meth:`_virtual_entries`,
        whose equality sharpening is exact, so the probed conjunct is
        enforced there too.  Null and NaN probe values yield no
        candidates: under three-valued logic they never satisfy an
        equi-join conjunct.
        """
        probe = equality_probe(var, partial, conjuncts)
        if not memory.is_virtual:
            memory.probe_count += 1
            if probe is None:
                return memory.entries(), None
            position, value, conjunct = probe
            if value is None or value != value:
                return (), conjunct
            if memory.has_join_index(position) \
                    or memory.note_unindexed_probe(position):
                return memory.join_probe(position, value), conjunct
            # degraded path: no join index (yet) — scan everything and
            # let the conjunct be evaluated like any other
            return memory.entries(), None
        if probe is None:
            equality, enforced = None, None
        else:
            equality, enforced = (probe[0], probe[1]), probe[2]
        entries = self._virtual_entries(memory, var, partial, equality,
                                        pending_vars, token)
        return entries, enforced

    def _virtual_entries(self, memory, var: str, partial: dict,
                         equality: tuple[int, object] | None,
                         pending_vars, token: Token | None
                         ) -> Iterable[MemoryEntry]:
        """A virtual α-memory's conceptual contents for one join step.

        Applies the bound-constant sharpening of paper §4.2, the
        ProcessedMemories own-tuple exclusion, and — on the batched path —
        the batch overlay: heap tuples whose state at this point of the
        token sequence differs from the final heap state are masked, and
        their in-sequence values re-derived from the pending tokens, so
        "a virtual α-memory node implicitly contains exactly the same set
        of tokens as a stored α-memory node" holds mid-batch too.
        """
        if equality is not None:
            value = equality[1]
            if value is None or value != value:
                # null/NaN never satisfies an equi-join conjunct
                return
        exclude = (token.tid if token is not None and var in pending_vars
                   and token.relation == memory.spec.relation else None)
        batch = self._batch
        overlay = (batch.overlay_for(memory.spec.relation)
                   if batch is not None else None)
        if not overlay:
            if exclude is None:
                yield from memory.candidates(self.catalog, equality)
                return
            for entry in memory.candidates(self.catalog, equality):
                if entry.tid != exclude:
                    yield entry
            return
        for entry in memory.candidates(self.catalog, equality):
            if entry.tid in overlay:
                continue
            if exclude is not None and entry.tid == exclude:
                continue
            yield entry
        matches = memory.spec.selection_matches
        position, value = equality if equality is not None else (None,
                                                                 None)
        if equality is not None and value is None:
            return
        for tid, values in overlay.items():
            if values is _ABSENT:
                continue
            if exclude is not None and tid == exclude:
                continue
            if position is not None and values[position] != value:
                continue
            if matches(values, None):
                yield MemoryEntry(tid, values)

    # ------------------------------------------------------------------
    # transition lifecycle
    # ------------------------------------------------------------------

    def flush_dynamic(self) -> None:
        """Empty every dynamic memory and the P-nodes they feed.

        Called after the recognize-act processing of each transition:
        "the binding between the matching data and the condition should be
        broken" (paper section 4.3.2).
        """
        for rule in self.rules.values():
            if not rule.has_dynamic_variable:
                continue
            for var in rule.dynamic_variables:
                self._memories[(rule.name, var)].flush()
            self._pnodes[rule.name].clear()
            self._after_flush(rule)

    def _after_flush(self, rule: CompiledRule) -> None:
        """Subclass hook (Rete rebuilds its β chain here)."""

    # ------------------------------------------------------------------
    # access / diagnostics
    # ------------------------------------------------------------------

    def pnode(self, rule_name: str) -> PNode:
        return self._pnodes[rule_name]

    def memory(self, rule_name: str, var: str):
        return self._memories[(rule_name, var)]

    def next_stamp(self) -> int:
        self._stamp += 1
        return self._stamp

    def memory_entry_count(self, rule_name: str | None = None) -> int:
        """Materialised α-memory entries (virtual nodes count zero) —
        the storage the A-TREAT virtual-memory optimisation saves."""
        total = 0
        for (name, _), memory in self._memories.items():
            if rule_name is None or name == rule_name:
                total += len(memory)
        return total

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({len(self.rules)} rules, "
                f"{self.memory_entry_count()} α entries)")


def _memory_order(memory) -> tuple[str, str]:
    return (memory.rule_name, memory.spec.var)


#: residual-cache sentinel: the key's evaluation is parked with the
#: process-pool offload (sharded match phase only)
_DEFERRED_MARK = object()


class _DeferredOp:
    """A decision slot awaiting a process-pool residual verdict."""

    __slots__ = ("key", "op")

    def __init__(self, key, op):
        self.key = key
        self.op = op


#: overlay sentinel: the tuple is absent at this point of the sequence
_ABSENT = object()


class _BatchState:
    """Per-batch caches plus the heap-state overlay.

    Token streams are a faithful heap diff (``+``/``Δ+`` assert a tuple
    value, ``−``/``Δ−`` retract one; insertion tokens close each
    mutation's token group), so replaying token effects reconstructs the
    exact heap state the per-token path would expose to virtual-memory
    scans at every join point.  ``overlay`` maps, per relation, the tids
    whose in-sequence state still differs from the final heap state to
    that in-sequence state (a values tuple, or :data:`_ABSENT`); a tid
    drops out once its last token is processed.
    """

    __slots__ = ("probe_cache", "stab_cache", "residual_cache",
                 "memo_hits", "pnode_inserts", "_remaining", "_overlay")

    def __init__(self, tokens: Sequence[Token], track_overlay: bool = True):
        self.probe_cache: dict = {}
        self.stab_cache: dict = {}
        self.residual_cache: dict = {}
        #: probe-cache hits and P-node insertions, aggregated into
        #: ``selection.probe_memo_hits`` / ``pnode.inserts`` once per
        #: batch — a per-event EngineStats.bump() would dominate the
        #: counter overhead budget on large batches
        self.memo_hits = 0
        self.pnode_inserts = 0
        if not track_overlay:
            self._remaining = None
            self._overlay = None
            return
        remaining: dict[tuple, int] = {}
        overlay: dict[str, dict] = {}
        for token in tokens:
            key = (token.relation, token.tid)
            count = remaining.get(key)
            if count is None:
                remaining[key] = 1
                overlay.setdefault(token.relation, {})[token.tid] = \
                    _pre_batch_state(token)
            else:
                remaining[key] = count + 1
        self._remaining = remaining
        self._overlay = overlay

    def advance(self, token: Token) -> None:
        """Apply one token's heap effect before it is routed."""
        if self._remaining is None:
            return
        key = (token.relation, token.tid)
        left = self._remaining[key] - 1
        relation_overlay = self._overlay[token.relation]
        if left == 0:
            del self._remaining[key]
            relation_overlay.pop(token.tid, None)
        else:
            self._remaining[key] = left
            relation_overlay[token.tid] = (
                token.values if token.kind.is_insertion else _ABSENT)

    def overlay_for(self, relation: str) -> dict | None:
        if self._overlay is None:
            return None
        overlay = self._overlay.get(relation)
        return overlay if overlay else None


def _pre_batch_state(token: Token):
    """A tuple's heap state just before its first in-batch token.

    ``+`` only ever opens a tid's in-batch history for a fresh insert
    (case-1 re-assertions always follow their ``−`` within one mutation
    group); ``−``/``Δ−`` carry the value they retract; a leading ``Δ+``
    (only possible when an earlier batch already routed the pair's
    retraction) re-asserts over ``old_values``.
    """
    if token.kind is TokenKind.PLUS:
        return _ABSENT
    if token.kind is TokenKind.DELTA_PLUS:
        return token.old_values
    return token.values


class _PrimeContext:
    """Minimal execution context for priming queries (no hooks)."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog


def equality_probe(var: str, partial: dict,
                   conjuncts) -> tuple[int, object, object] | None:
    """Constant substitution into one join step (paper §4.2): find an
    equi-join conjunct linking ``var`` to an already-bound variable and
    return (position in var's tuple, the bound value, the conjunct) so
    the step can probe an index or hash bucket — and skip re-evaluating
    the conjunct the probe already enforces.
    """
    for conjunct in conjuncts:
        equi = conjunct.equijoin
        if equi is None:
            continue
        if equi.left_var == var and equi.right_var in partial:
            other = partial[equi.right_var]
            return (equi.left_position, other.values[equi.right_position],
                    conjunct)
        if equi.right_var == var and equi.left_var in partial:
            other = partial[equi.left_var]
            return (equi.right_position, other.values[equi.left_position],
                    conjunct)
    return None


def equality_constraint(var: str, partial: dict,
                        conjuncts) -> tuple[int, object] | None:
    """The (position, value) form of :func:`equality_probe` — the
    original virtual-node sharpening interface, kept for callers that
    do not care which conjunct the probe enforces."""
    probe = equality_probe(var, partial, conjuncts)
    return None if probe is None else (probe[0], probe[1])
