"""Discrimination network base: token routing, memories, priming, flush.

The shared machinery of the TREAT/A-TREAT and Rete networks:

* building one α-memory per (rule, tuple variable) with the right kind
  (stored / virtual / dynamic / simple) and registering its selection
  anchor in the top-level :class:`~repro.core.selection_index
  .SelectionIndex`;
* routing a token: probe the selection index with the token's values,
  verify each candidate memory's residual predicate, apply the Figure-5
  :func:`~repro.core.alpha.dispatch` action, and hand insertions to the
  subclass's join step;
* priming at rule activation — "running one one-variable query for each
  tuple variable in the rule condition to prime the α-memory nodes, plus
  running a query equivalent to the entire rule condition to load the
  P-node" (paper section 6), both through the ordinary query optimizer;
* flushing dynamic memories (and the P-nodes fed by them) after each
  transition's rule processing.
"""

from __future__ import annotations

from typing import Callable

from repro.catalog.catalog import Catalog
from repro.core.alpha import (
    AlphaMemory, MemoryEntry, VirtualAlphaMemory, dispatch)
from repro.core.pnode import Match, PNode
from repro.core.rules import CompiledRule, VariableSpec
from repro.core.selection_index import SelectionIndex
from repro.core.tokens import Token
from repro.errors import RuleError
from repro.lang.expr import Bindings
from repro.planner.optimizer import Optimizer

#: "auto" virtual policy: make a pattern memory virtual when its selection
#: keeps at least this fraction of the relation…
_VIRTUAL_SELECTIVITY = 0.25
#: …and the relation has at least this many tuples.
_VIRTUAL_MIN_ROWS = 10

VirtualPolicy = str | Callable[[VariableSpec], bool]


class DiscriminationNetwork:
    """Base class for the rule condition testing networks."""

    #: subclasses override (used in benchmarks / repr)
    network_name = "abstract"

    def __init__(self, catalog: Catalog,
                 optimizer: Optimizer | None = None,
                 selection_index: SelectionIndex | None = None,
                 virtual_policy: VirtualPolicy = "auto",
                 on_match: Callable[[CompiledRule], None] | None = None):
        self.catalog = catalog
        self.optimizer = optimizer or Optimizer(catalog)
        self.selection_index = selection_index or SelectionIndex()
        self.virtual_policy = virtual_policy
        self.on_match = on_match or (lambda rule: None)
        self.rules: dict[str, CompiledRule] = {}
        self._memories: dict[tuple[str, str],
                             AlphaMemory | VirtualAlphaMemory] = {}
        self._pnodes: dict[str, PNode] = {}
        self._stamp = 0
        #: diagnostics: tokens processed since construction
        self.tokens_processed = 0

    # ------------------------------------------------------------------
    # rule lifecycle
    # ------------------------------------------------------------------

    def add_rule(self, rule: CompiledRule, prime: bool = True) -> None:
        """Build the rule's memories and optionally prime them."""
        if rule.name in self.rules:
            raise RuleError(f"rule {rule.name!r} already in network")
        self.rules[rule.name] = rule
        self._pnodes[rule.name] = PNode(rule.name, rule.variables)
        for var in rule.variables:
            spec = rule.specs[var]
            memory = self._make_memory(rule, spec)
            self._memories[(rule.name, var)] = memory
            self.selection_index.add(spec.relation,
                                     spec.analysis.anchor
                                     if spec.analysis else None,
                                     memory)
        if prime:
            self.prime_rule(rule)

    def remove_rule(self, name: str) -> None:
        """Tear down the rule's memories and P-node."""
        rule = self.rules.pop(name, None)
        if rule is None:
            raise RuleError(f"rule {name!r} not in network")
        for var in rule.variables:
            memory = self._memories.pop((name, var))
            self.selection_index.remove(memory)
        del self._pnodes[name]

    def _make_memory(self, rule: CompiledRule, spec: VariableSpec):
        if self._wants_virtual(spec):
            return VirtualAlphaMemory(rule.name, spec)
        return AlphaMemory(rule.name, spec)

    def _wants_virtual(self, spec: VariableSpec) -> bool:
        """Decide stored vs virtual for a pattern (ungated) memory.

        Virtual nodes only make sense for pattern conditions on
        multi-variable rules: dynamic memories are tiny and transient,
        and simple memories store nothing anyway.
        """
        if spec.is_dynamic or spec.is_simple:
            return False
        policy = self.virtual_policy
        if callable(policy):
            return bool(policy(spec))
        if policy == "never":
            return False
        if policy == "always":
            return True
        if policy != "auto":
            raise RuleError(f"unknown virtual policy {policy!r}")
        stats = self.optimizer.stats
        rows = stats.cardinality(spec.relation)
        if rows < _VIRTUAL_MIN_ROWS:
            return False
        kept = stats.scan_cardinality(spec.relation, spec.var,
                                      spec.selection_conjuncts)
        return kept / rows >= _VIRTUAL_SELECTIVITY

    # ------------------------------------------------------------------
    # priming
    # ------------------------------------------------------------------

    def prime_rule(self, rule: CompiledRule) -> None:
        """Load stored memories and the P-node from current data."""
        for var in rule.variables:
            spec = rule.specs[var]
            memory = self._memories[(rule.name, var)]
            if memory.is_virtual or spec.is_dynamic or spec.is_simple:
                continue
            relation = self.catalog.relation(spec.relation)
            for stored in relation.scan():
                if spec.selection_matches(stored.values, None):
                    memory.insert(MemoryEntry(stored.tid, stored.values))
        if rule.has_dynamic_variable:
            # Event/transition/new-gated rules can only match data bound
            # during a transition; nothing to load now.
            self._after_prime(rule)
            return
        plan = self.optimizer.plan_variables(
            rule.variables, rule.condition, rule.var_relations)
        pnode = self._pnodes[rule.name]
        ctx = _PrimeContext(self.catalog)
        inserted = False
        for bound in plan.rows(ctx, Bindings()):
            parts = {var: MemoryEntry(bound.tids[var], bound.current[var])
                     for var in rule.variables}
            self._stamp += 1
            if pnode.insert(Match.of(parts), self._stamp):
                inserted = True
        self._after_prime(rule)
        if inserted:
            self.on_match(rule)

    def _after_prime(self, rule: CompiledRule) -> None:
        """Subclass hook (Rete rebuilds its β chain here)."""

    # ------------------------------------------------------------------
    # token routing
    # ------------------------------------------------------------------

    def process_token(self, token: Token) -> None:
        """Route one token through the network (paper Figure 5)."""
        self.tokens_processed += 1
        candidates = self.selection_index.probe(token.relation,
                                                token.values)
        # Deterministic processing order defines the sequential
        # "ProcessedMemories" semantics for self-joins.
        candidates.sort(key=lambda m: (m.rule_name, m.spec.var))
        pending: dict[str, set[str]] = {}
        for memory in candidates:
            pending.setdefault(memory.rule_name, set()).add(
                memory.spec.var)
        deleted_rules: set[str] = set()
        for memory in candidates:
            rule = self.rules[memory.rule_name]
            spec = memory.spec
            op = dispatch(spec, token)
            if op is None:
                pending[rule.name].discard(spec.var)
                continue
            if op.op == "delete":
                pending[rule.name].discard(spec.var)
                if not memory.is_virtual and not spec.is_simple:
                    memory.remove(op.tid)
                if rule.name not in deleted_rules:
                    deleted_rules.add(rule.name)
                    self._pnodes[rule.name].delete_by_tid(op.tid)
                    self._handle_delete(rule, op.tid)
                continue
            # insertion: verify the residual predicate before accepting
            entry = op.entry
            if not spec.residual_matches(entry.values, entry.old_values):
                pending[rule.name].discard(spec.var)
                continue
            pending[rule.name].discard(spec.var)
            if spec.is_simple:
                # Simple memories pass matching data straight to the
                # P-node (paper section 4.3.3).
                self._stamp += 1
                if self._pnodes[rule.name].insert(
                        Match.of({spec.var: entry}), self._stamp):
                    self.on_match(rule)
                continue
            self._handle_insert(rule, spec, memory, entry,
                                pending_vars=pending[rule.name],
                                token=token)

    def _handle_insert(self, rule: CompiledRule, spec: VariableSpec,
                       memory, entry: MemoryEntry,
                       pending_vars: set[str], token: Token) -> None:
        """Subclass hook: store the entry and seek new combinations.

        ``pending_vars`` are this rule's variables that will receive the
        same token later in the processing order — the ProcessedMemories
        protocol: the token's own tuple must be excluded when consulting
        their (virtual) memories, so self-joins count each combination
        exactly once.
        """
        raise NotImplementedError

    def _handle_delete(self, rule: CompiledRule, tid) -> None:
        """Subclass hook after a deletion (Rete drops β partials here).

        Called once per (rule, token); α-memory and P-node cleanup has
        already happened.
        """

    # ------------------------------------------------------------------
    # transition lifecycle
    # ------------------------------------------------------------------

    def flush_dynamic(self) -> None:
        """Empty every dynamic memory and the P-nodes they feed.

        Called after the recognize-act processing of each transition:
        "the binding between the matching data and the condition should be
        broken" (paper section 4.3.2).
        """
        for rule in self.rules.values():
            if not rule.has_dynamic_variable:
                continue
            for var in rule.dynamic_variables:
                self._memories[(rule.name, var)].flush()
            self._pnodes[rule.name].clear()
            self._after_flush(rule)

    def _after_flush(self, rule: CompiledRule) -> None:
        """Subclass hook (Rete rebuilds its β chain here)."""

    # ------------------------------------------------------------------
    # access / diagnostics
    # ------------------------------------------------------------------

    def pnode(self, rule_name: str) -> PNode:
        return self._pnodes[rule_name]

    def memory(self, rule_name: str, var: str):
        return self._memories[(rule_name, var)]

    def next_stamp(self) -> int:
        self._stamp += 1
        return self._stamp

    def memory_entry_count(self, rule_name: str | None = None) -> int:
        """Materialised α-memory entries (virtual nodes count zero) —
        the storage the A-TREAT virtual-memory optimisation saves."""
        total = 0
        for (name, _), memory in self._memories.items():
            if rule_name is None or name == rule_name:
                total += len(memory)
        return total

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({len(self.rules)} rules, "
                f"{self.memory_entry_count()} α entries)")


class _PrimeContext:
    """Minimal execution context for priming queries (no hooks)."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog


def equality_constraint(var: str, partial: dict,
                        conjuncts) -> tuple[int, object] | None:
    """Constant substitution into a virtual node's predicate (paper §4.2):
    find an equi-join conjunct linking ``var`` to an already-bound
    variable and return (position in var's tuple, the bound value) so the
    virtual memory's base-relation scan can become an index probe.
    """
    for conjunct in conjuncts:
        equi = conjunct.equijoin
        if equi is None:
            continue
        if equi.left_var == var and equi.right_var in partial:
            other = partial[equi.right_var]
            return (equi.left_position, other.values[equi.right_position])
        if equi.right_var == var and equi.left_var in partial:
            other = partial[equi.left_var]
            return (equi.right_position, other.values[equi.left_position])
    return None
