"""Adaptive join planning for the TREAT/Rete seek path (paper §8).

The paper's join step walks a *static* variable order; Hanson notes the
recognize phase leaves "tremendous possibilities for optimization".
This module replaces the static ``rule.join_order_from(seed_var)`` with
a cost-driven greedy planner that, at each depth, picks the cheapest
next variable using **live** cardinalities — ``len(memory)`` for stored
α-memories, :class:`~repro.planner.stats.Statistics` estimates for
virtual ones — and strongly prefers variables reachable through a bound
equi-join conjunct (a hash-bucket or index probe) over unfiltered scans.

Planning stays off the hot path by memoizing the chosen order per
``(rule, seed variable, cardinality-bucket signature)``: the signature
buckets each memory's cardinality by its bit length, so an order is
re-planned only when some memory's size changes by ~2x, and the whole
cache is invalidated when the catalog version moves (DDL, rule
lifecycle, index creation).

The same machinery plans the Rete β-chain order
(:meth:`JoinPlanner.chain_order`), recomputed whenever a rule's chain
is rebuilt from α contents.
"""

from __future__ import annotations

import math

from repro.core.rules import CompiledRule

#: additive cost making a variable with no join conjunct to the bound
#: set (a cartesian step) lose to any connected alternative
_CARTESIAN_COST = 1.0e12


class JoinPlanner:
    """Cost-driven seek ordering over a discrimination network.

    Owned by the network; consulted by the TREAT seek
    (:meth:`order`) and the Rete β-chain rebuild (:meth:`chain_order`).
    """

    def __init__(self, network):
        self.network = network
        #: test hook: a callable ``(rule, seed_var) -> list[str]`` that
        #: overrides :meth:`order` entirely (the join-order permutation
        #: property test and the static-baseline benchmark use it)
        self.forced = None
        self._orders: dict[tuple, list[str]] = {}
        self._chains: dict[tuple, list[str]] = {}
        # (rule, var, relation-cardinality bucket) -> estimated rows a
        # virtual memory's selection keeps (Statistics calls are not
        # hot-path cheap, so they are cached alongside the orders)
        self._virtual_rows: dict[tuple, float] = {}
        self._version: int | None = None

    # ------------------------------------------------------------------
    # cache lifecycle
    # ------------------------------------------------------------------

    def invalidate(self) -> None:
        """Drop every memoized order and estimate."""
        self._orders.clear()
        self._chains.clear()
        self._virtual_rows.clear()

    def forget(self, rule_name: str) -> None:
        """Drop cached plans of one rule (rule removal)."""
        for cache in (self._orders, self._chains):
            for key in [k for k in cache if k[0] == rule_name]:
                del cache[key]

    def _sync(self) -> None:
        version = self.network.catalog.version
        if version != self._version:
            self.invalidate()
            self._version = version

    # ------------------------------------------------------------------
    # the planning entry points
    # ------------------------------------------------------------------

    def order(self, rule: CompiledRule, seed_var: str) -> list[str]:
        """The seek order for one TREAT join step: the rule's remaining
        variables, cheapest-next-first under current cardinalities."""
        if self.forced is not None:
            return list(self.forced(rule, seed_var))
        self._sync()
        key = (rule.name, seed_var, self._signature(rule))
        order = self._orders.get(key)
        stats = self.network.stats
        if order is not None:
            if stats.enabled:
                counters = stats.counters
                counters["joins.order_cache_hits"] = \
                    counters.get("joins.order_cache_hits", 0) + 1
            return order
        order = self._greedy(rule, {seed_var})
        self._orders[key] = order
        if stats.enabled:
            stats.bump("joins.orders_planned")
        return order

    def chain_order(self, rule: CompiledRule) -> list[str]:
        """A full variable order for the Rete β chain: the cheapest
        start variable, then the greedy extension order."""
        self._sync()
        key = (rule.name, self._signature(rule))
        chain = self._chains.get(key)
        if chain is not None:
            return chain
        start = min(rule.variables,
                    key=lambda v: (self._rows(rule, v), v))
        chain = [start] + self._greedy(rule, {start})
        self._chains[key] = chain
        if self.network.stats.enabled:
            self.network.stats.bump("joins.chains_planned")
        return chain

    # ------------------------------------------------------------------
    # the greedy cost model
    # ------------------------------------------------------------------

    def _greedy(self, rule: CompiledRule, bound: set[str]) -> list[str]:
        bound = set(bound)
        remaining = [v for v in rule.variables if v not in bound]
        order: list[str] = []
        while remaining:
            best = None
            best_cost = math.inf
            for var in remaining:        # rule.variables is sorted, so
                cost = self._step_cost(rule, var, bound)
                if cost < best_cost:     # ties resolve to the first
                    best, best_cost = var, cost
            remaining.remove(best)
            bound.add(best)
            order.append(best)
        return order

    def _step_cost(self, rule: CompiledRule, var: str,
                   bound: set[str]) -> float:
        """Estimated cost of extending the partial combination by one
        variable: access cost of producing its candidates plus the
        expected candidate count (which the deeper levels multiply)."""
        memory = self.network._memories[(rule.name, var)]
        spec = memory.spec
        stats = self.network.optimizer.stats
        equi = self._bound_equijoin(rule, var, bound)
        if memory.is_virtual:
            relation_rows = float(stats.cardinality(spec.relation))
            rows = self._virtual_rows_estimate(rule, var, spec, stats)
            if equi is not None:
                attr, _position = equi
                output = stats.equijoin_bucket(spec.relation, attr, rows)
                relation = self.network.catalog.relation(spec.relation)
                if relation.index_on(attr) is not None:
                    access = math.log2(relation_rows + 2.0) + output
                else:
                    access = relation_rows
                return access + output
            cost = relation_rows + rows
        else:
            rows = float(len(memory))
            if equi is not None:
                attr, _position = equi
                # hash-bucket fetch: cheap whether the join index exists
                # already or is about to be promoted on demand
                output = stats.equijoin_bucket(spec.relation, attr, rows)
                return 1.0 + 2.0 * output
            cost = 2.0 * rows
        if not self._connected(rule, var, bound):
            cost += _CARTESIAN_COST
        return cost

    def _rows(self, rule: CompiledRule, var: str) -> float:
        """Live candidate-count estimate of one memory: the stored
        entry count, or the virtual node's filtered-scan estimate."""
        memory = self.network._memories[(rule.name, var)]
        if memory.is_virtual:
            return self._virtual_rows_estimate(
                rule, var, memory.spec, self.network.optimizer.stats)
        return float(len(memory))

    def _virtual_rows_estimate(self, rule: CompiledRule, var: str,
                               spec, stats) -> float:
        bucket = stats.cardinality(spec.relation).bit_length()
        key = (rule.name, var, bucket)
        rows = self._virtual_rows.get(key)
        if rows is None:
            rows = stats.scan_cardinality(spec.relation, var,
                                          spec.selection_conjuncts)
            self._virtual_rows[key] = rows
        return rows

    @staticmethod
    def _bound_equijoin(rule: CompiledRule, var: str,
                        bound: set[str]) -> tuple[str, int] | None:
        """The (attribute, position) of an equi-join conjunct linking
        ``var`` to an already-bound variable, if any."""
        for other, attr, position in rule.equijoins_by_var.get(var, ()):
            if other in bound:
                return attr, position
        return None

    @staticmethod
    def _connected(rule: CompiledRule, var: str, bound: set[str]) -> bool:
        return any(var in j.variables and j.variables & bound
                   for j in rule.joins)

    # ------------------------------------------------------------------
    # signatures
    # ------------------------------------------------------------------

    def _signature(self, rule: CompiledRule) -> tuple[int, ...]:
        """Cardinality-bucket signature: one log2 bucket per variable,
        so memoized orders survive small size drift but re-plan when a
        memory roughly doubles or halves."""
        memories = self.network._memories
        catalog = self.network.catalog
        sig = []
        for var in rule.variables:
            memory = memories[(rule.name, var)]
            if memory.is_virtual:
                n = len(catalog.relation(memory.spec.relation))
            else:
                n = len(memory)
            sig.append(n.bit_length())
        return tuple(sig)

    # ------------------------------------------------------------------
    # introspection (the CLI's ``\plan``)
    # ------------------------------------------------------------------

    def describe(self, rule: CompiledRule) -> str:
        """Current join plan of one rule: per-memory storage decision
        and index set, the seek order from every seed, and (for Rete)
        the β-chain order."""
        network = self.network
        stats = network.optimizer.stats
        lines = [f"join plan for rule {rule.name} "
                 f"({network.network_name} network)"]
        for var in rule.variables:
            memory = network._memories[(rule.name, var)]
            spec = memory.spec
            relation = network.catalog.relation(spec.relation)
            if memory.is_virtual:
                rows = self._virtual_rows_estimate(rule, var, spec, stats)
                lines.append(
                    f"  {var} in {spec.relation}: virtual, "
                    f"~{rows:.0f} of {len(relation)} row(s), "
                    f"{memory.probe_count} probe(s)")
            elif spec.is_simple:
                lines.append(f"  {var} in {spec.relation}: simple "
                             f"(routed straight to the P-node)")
            else:
                names = relation.schema.names()
                indexed = ", ".join(
                    names[p] for p in sorted(memory.join_index_positions()))
                lines.append(
                    f"  {var} in {spec.relation}: stored, "
                    f"{len(memory)} entries, "
                    f"join-index(es) [{indexed}], "
                    f"{memory.probe_count} probe(s), "
                    f"{memory.unindexed_probe_count} unindexed")
        if len(rule.variables) > 1:
            for seed in rule.variables:
                order = self.order(rule, seed)
                lines.append(f"  seek from {seed}: "
                             + " -> ".join([seed] + order))
            states = getattr(network, "_states", None)
            if states is not None and rule.name in states:
                lines.append("  beta chain: "
                             + " -> ".join(states[rule.name].order))
        return "\n".join(lines)
