"""Adaptive join planning for the TREAT/Rete seek path (paper §8).

The paper's join step walks a *static* variable order; Hanson notes the
recognize phase leaves "tremendous possibilities for optimization".
This module replaces the static ``rule.join_order_from(seed_var)`` with
a cost-driven greedy planner that, at each depth, picks the cheapest
next variable using **live** cardinalities — ``len(memory)`` for stored
α-memories, :class:`~repro.planner.stats.Statistics` estimates for
virtual ones — and strongly prefers variables reachable through a bound
equi-join conjunct (a hash-bucket or index probe) over unfiltered scans.

Planning stays off the hot path by memoizing the chosen order per
``(rule, seed variable, cardinality-bucket signature)``: the signature
buckets each memory's cardinality by its bit length, so an order is
re-planned only when some memory's size changes by ~2x, and the whole
cache is invalidated when the catalog version moves (DDL, rule
lifecycle, index creation).

The same machinery plans the Rete β-chain order
(:meth:`JoinPlanner.chain_order`), recomputed whenever a rule's chain
is rebuilt from α contents.

Beyond *ordering* the pairwise chain, the planner also decides the join
**algorithm**: for cyclic or many-variable equi-join graphs — where every
pairwise order enumerates a superlinear intermediate — it can route the
step to the worst-case-optimal leapfrog triejoin of
:mod:`repro.core.leapfrog` (:meth:`JoinPlanner.seek_plan` for TREAT,
:meth:`JoinPlanner.chain_plan` for Rete).  The choice is cost-driven,
memoized per cardinality-bucket signature with the same catalog-version
invalidation, and overridable per Database via ``join_mode`` (or the
``REPRO_JOIN_MODE`` environment variable): ``auto`` (default),
``pairwise``, or ``multiway``.
"""

from __future__ import annotations

import math
import os

from repro.catalog.schema import AttributeType
from repro.core.leapfrog import (
    build_join_classes, build_plan, equijoin_graph_is_cyclic)
from repro.core.rules import CompiledRule
from repro.errors import RuleError

#: additive cost making a variable with no join conjunct to the bound
#: set (a cartesian step) lose to any connected alternative
_CARTESIAN_COST = 1.0e12

#: under ``auto``, multiway must beat the estimated pairwise cost by
#: this margin — hysteresis against flapping on crude estimates
_MULTIWAY_MARGIN = 0.75

JOIN_MODES = ("auto", "pairwise", "multiway")


def resolve_join_mode(mode: str | None) -> str:
    """Resolve a ``join_mode`` setting: an explicit value wins, then the
    ``REPRO_JOIN_MODE`` environment variable, then ``"auto"`` (the same
    resolution scheme as ``shard.resolve_workers``)."""
    if mode is None:
        raw = os.environ.get("REPRO_JOIN_MODE", "").strip().lower()
        mode = raw or "auto"
    if mode not in JOIN_MODES:
        raise RuleError(f"unknown join mode {mode!r}; expected one of "
                        + ", ".join(repr(m) for m in JOIN_MODES))
    return mode


class _MultiwayShape:
    """Structural multiway facts of one rule, memoized per rule.

    ``candidate`` — the shape where pairwise degrades (cyclic graph, or
    4+ variables) and ``auto`` should weigh multiway at all;
    ``eligible`` — multiway is executable and semantics-preserving
    (every variable reaches an equi-join class, and no class mixes text
    with numeric attributes, which sorted views cannot compare).
    """

    __slots__ = ("classes", "cyclic", "candidate", "eligible", "reason")

    def __init__(self, classes, cyclic, candidate, eligible, reason):
        self.classes = classes
        self.cyclic = cyclic
        self.candidate = candidate
        self.eligible = eligible
        self.reason = reason


class JoinPlanner:
    """Cost-driven seek ordering over a discrimination network.

    Owned by the network; consulted by the TREAT seek
    (:meth:`order`) and the Rete β-chain rebuild (:meth:`chain_order`).
    """

    def __init__(self, network, mode: str | None = None):
        self.network = network
        #: "auto" | "pairwise" | "multiway" (see :func:`resolve_join_mode`)
        self.mode = resolve_join_mode(mode)
        #: test hook: a callable ``(rule, seed_var) -> list[str]`` that
        #: overrides :meth:`order` entirely (the join-order permutation
        #: property test and the static-baseline benchmark use it);
        #: forcing an order also forces the pairwise algorithm
        self.forced = None
        self._orders: dict[tuple, list[str]] = {}
        self._chains: dict[tuple, list[str]] = {}
        # algorithm decisions and compiled multiway plans, memoized like
        # the orders (per cardinality-bucket signature)
        self._seek_plans: dict[tuple, tuple] = {}
        self._chain_plans: dict[tuple, tuple] = {}
        self._multiway_plans: dict[tuple, object] = {}
        self._shapes: dict[str, _MultiwayShape] = {}
        # (rule, var, relation-cardinality bucket) -> estimated rows a
        # virtual memory's selection keeps (Statistics calls are not
        # hot-path cheap, so they are cached alongside the orders)
        self._virtual_rows: dict[tuple, float] = {}
        self._version: int | None = None

    # ------------------------------------------------------------------
    # cache lifecycle
    # ------------------------------------------------------------------

    def invalidate(self) -> None:
        """Drop every memoized order, plan and estimate."""
        self._orders.clear()
        self._chains.clear()
        self._seek_plans.clear()
        self._chain_plans.clear()
        self._multiway_plans.clear()
        self._shapes.clear()
        self._virtual_rows.clear()

    def forget(self, rule_name: str) -> None:
        """Drop cached plans of one rule (rule removal)."""
        for cache in (self._orders, self._chains, self._seek_plans,
                      self._chain_plans, self._multiway_plans):
            for key in [k for k in cache if k[0] == rule_name]:
                del cache[key]
        self._shapes.pop(rule_name, None)

    def _sync(self) -> None:
        version = self.network.catalog.version
        if version != self._version:
            self.invalidate()
            self._version = version

    # ------------------------------------------------------------------
    # the planning entry points
    # ------------------------------------------------------------------

    def order(self, rule: CompiledRule, seed_var: str) -> list[str]:
        """The seek order for one TREAT join step: the rule's remaining
        variables, cheapest-next-first under current cardinalities."""
        if self.forced is not None:
            return list(self.forced(rule, seed_var))
        self._sync()
        key = (rule.name, seed_var, self._signature(rule))
        order = self._orders.get(key)
        stats = self.network.stats
        if order is not None:
            if stats.enabled:
                counters = stats.counters
                counters["joins.order_cache_hits"] = \
                    counters.get("joins.order_cache_hits", 0) + 1
            return order
        order = self._greedy(rule, {seed_var})
        self._orders[key] = order
        if stats.enabled:
            stats.bump("joins.orders_planned")
        return order

    def chain_order(self, rule: CompiledRule) -> list[str]:
        """A full variable order for the Rete β chain: the cheapest
        start variable, then the greedy extension order."""
        self._sync()
        key = (rule.name, self._signature(rule))
        chain = self._chains.get(key)
        if chain is not None:
            return chain
        start = min(rule.variables,
                    key=lambda v: (self._rows(rule, v), v))
        chain = [start] + self._greedy(rule, {start})
        self._chains[key] = chain
        if self.network.stats.enabled:
            self.network.stats.bump("joins.chains_planned")
        return chain

    # ------------------------------------------------------------------
    # join-algorithm selection (pairwise chain vs leapfrog multiway)
    # ------------------------------------------------------------------

    def seek_plan(self, rule: CompiledRule,
                  seed_var: str) -> tuple[str, object]:
        """The TREAT join step for one seed: ``("pairwise", order)`` or
        ``("multiway", MultiwayPlan)``.  Pairwise is the default — and
        the only choice for 2-variable rules, forced orders, and
        ``join_mode="pairwise"`` — so acyclic small rules keep the
        exact PR 4 seek path."""
        if self.forced is not None or self.mode == "pairwise" \
                or len(rule.variables) < 3:
            return ("pairwise", self.order(rule, seed_var))
        self._sync()
        key = (rule.name, seed_var, self._signature(rule))
        decision = self._seek_plans.get(key)
        if decision is None:
            decision = self._seek_plans[key] = self._decide(rule,
                                                            seed_var)
        if decision[0] == "pairwise":
            return ("pairwise", self.order(rule, seed_var))
        return decision

    def chain_plan(self, rule: CompiledRule) -> tuple[str, object]:
        """The Rete analogue of :meth:`seek_plan`, decided whenever the
        β chain is rebuilt: ``("pairwise", chain_order)`` keeps the β
        chain; ``("multiway", MultiwayPlan)`` (the seedless full plan)
        bypasses β state entirely for this rule."""
        if self.forced is not None or self.mode == "pairwise" \
                or len(rule.variables) < 3:
            return ("pairwise", self.chain_order(rule))
        self._sync()
        key = (rule.name, self._signature(rule))
        decision = self._chain_plans.get(key)
        if decision is None:
            decision = self._chain_plans[key] = self._decide(rule, None)
        if decision[0] == "pairwise":
            return ("pairwise", self.chain_order(rule))
        return decision

    def multiway_seek_plan(self, rule: CompiledRule, seed_var: str):
        """The seeded multiway plan for a rule whose Rete state pinned
        multiway at rebuild time — built unconditionally, since the
        algorithm must stay what the β-less state assumes until the
        next rebuild."""
        self._sync()
        key = (rule.name, seed_var)
        plan = self._multiway_plans.get(key)
        if plan is None:
            shape = self._shape(rule)
            plan = build_plan(rule, seed_var, shape.classes,
                              self._class_order(rule, seed_var, shape))
            self._multiway_plans[key] = plan
        return plan

    def _decide(self, rule: CompiledRule,
                seed_var: str | None) -> tuple[str, object]:
        shape = self._shape(rule)
        stats = self.network.stats
        if not shape.eligible or (self.mode != "multiway"
                                  and not shape.candidate):
            if shape.candidate and not shape.eligible and stats.enabled:
                stats.bump("joins.multiway_fallbacks")
            return ("pairwise", None)
        if self.mode != "multiway":
            pairwise_cost = self._pairwise_cost(rule, seed_var)
            multiway_cost = self._multiway_cost(rule, seed_var, shape)
            if multiway_cost >= pairwise_cost * _MULTIWAY_MARGIN:
                if stats.enabled:
                    stats.bump("joins.multiway_fallbacks")
                return ("pairwise", None)
        plan = build_plan(rule, seed_var, shape.classes,
                          self._class_order(rule, seed_var, shape))
        if stats.enabled:
            stats.bump("joins.multiway_planned")
        return ("multiway", plan)

    def _shape(self, rule: CompiledRule) -> _MultiwayShape:
        shape = self._shapes.get(rule.name)
        if shape is None:
            shape = self._shapes[rule.name] = self._build_shape(rule)
        return shape

    def _build_shape(self, rule: CompiledRule) -> _MultiwayShape:
        classes = build_join_classes(rule)
        covered: set[str] = set()
        for cls in classes:
            covered.update(cls.positions)
        eligible, reason = True, ""
        if not classes:
            eligible, reason = False, "no equi-join conjuncts"
        elif covered != set(rule.variables):
            missing = ", ".join(sorted(set(rule.variables) - covered))
            eligible, reason = False, \
                f"variable(s) {missing} reach no equi-join"
        elif not self._class_types_compatible(rule, classes):
            eligible, reason = False, \
                "join class mixes text and numeric attributes"
        cyclic = equijoin_graph_is_cyclic(rule)
        candidate = cyclic or len(rule.variables) >= 4
        return _MultiwayShape(classes, cyclic, candidate, eligible,
                              reason)

    def _class_types_compatible(self, rule: CompiledRule,
                                classes) -> bool:
        """Can each class's attributes be compared under one sort
        order?  int/float/bool share Python's numeric ordering; text
        does not mix with them (sorted views would raise TypeError)."""
        catalog = self.network.catalog
        for cls in classes:
            families = set()
            for var, positions in cls.positions.items():
                schema = catalog.relation(
                    rule.specs[var].relation).schema
                for position in positions:
                    families.add(schema.attributes[position].type
                                 is AttributeType.TEXT)
            if len(families) > 1:
                return False
        return True

    def _class_order(self, rule: CompiledRule, seed_var: str | None,
                     shape: _MultiwayShape) -> list[int]:
        """Level order for the classes the seed does not fix: smallest
        estimated participant first, class index as the tie-break."""
        remaining = [cls for cls in shape.classes
                     if seed_var is None
                     or seed_var not in cls.positions]
        return [cls.index for cls in sorted(
            remaining,
            key=lambda cls: (min(self._rows(rule, var)
                                 for var in cls.positions),
                             cls.index))]

    def _pairwise_cost(self, rule: CompiledRule,
                       seed_var: str | None) -> float:
        """Simulated cost of the pairwise chain: each step's access
        cost scaled by the expected fan-out of the steps before it."""
        if seed_var is None:
            order = self.chain_order(rule)
            bound = {order[0]}
            fanout = max(self._rows(rule, order[0]), 1.0)
            total = fanout
            steps = order[1:]
        else:
            bound = {seed_var}
            fanout = 1.0
            total = 0.0
            steps = self.order(rule, seed_var)
        for var in steps:
            total += fanout * self._step_cost(rule, var, bound)
            fanout *= max(self._expected_out(rule, var, bound), 0.5)
            bound.add(var)
        return total

    def _multiway_cost(self, rule: CompiledRule, seed_var: str | None,
                       shape: _MultiwayShape) -> float:
        """Leapfrog cost: per level, every participant's restricted
        view is built (linear in its restricted size, plus a galloping
        log factor), and the intersection's output — the next level's
        fan-out — is bounded by the smallest view."""
        stats = self.network.optimizer.stats
        constrained: set[str] = set()
        if seed_var is not None:
            for cls in shape.classes:
                if seed_var in cls.positions:
                    constrained.update(v for v in cls.positions
                                       if v != seed_var)
        total, fanout = 0.0, 1.0
        for class_index in self._class_order(rule, seed_var, shape):
            cls = shape.classes[class_index]
            ests = []
            for var in sorted(cls.positions):
                rows = self._rows(rule, var)
                if var in constrained:
                    spec = rule.specs[var]
                    attr = self._attr_name(rule, var,
                                           cls.positions[var][0])
                    rows = stats.equijoin_bucket(spec.relation, attr,
                                                 rows)
                ests.append(max(rows, 0.5))
            total += fanout * (sum(ests) + math.log2(max(ests) + 2.0))
            fanout *= max(min(ests), 0.5)
            constrained.update(cls.positions)
        return total

    def _expected_out(self, rule: CompiledRule, var: str,
                      bound: set[str]) -> float:
        """Expected candidates one pairwise step emits per upstream
        combination."""
        rows = self._rows(rule, var)
        equi = self._bound_equijoin(rule, var, bound)
        if equi is not None:
            return self.network.optimizer.stats.equijoin_bucket(
                rule.specs[var].relation, equi[0], rows)
        return rows

    def _attr_name(self, rule: CompiledRule, var: str,
                   position: int) -> str:
        relation = self.network.catalog.relation(
            rule.specs[var].relation)
        return relation.schema.attributes[position].name

    # ------------------------------------------------------------------
    # the greedy cost model
    # ------------------------------------------------------------------

    def _greedy(self, rule: CompiledRule, bound: set[str]) -> list[str]:
        bound = set(bound)
        remaining = [v for v in rule.variables if v not in bound]
        order: list[str] = []
        while remaining:
            best = None
            best_cost = math.inf
            for var in remaining:        # rule.variables is sorted, so
                cost = self._step_cost(rule, var, bound)
                if cost < best_cost:     # ties resolve to the first
                    best, best_cost = var, cost
            remaining.remove(best)
            bound.add(best)
            order.append(best)
        return order

    def _step_cost(self, rule: CompiledRule, var: str,
                   bound: set[str]) -> float:
        """Estimated cost of extending the partial combination by one
        variable: access cost of producing its candidates plus the
        expected candidate count (which the deeper levels multiply)."""
        memory = self.network._memories[(rule.name, var)]
        spec = memory.spec
        stats = self.network.optimizer.stats
        equi = self._bound_equijoin(rule, var, bound)
        if memory.is_virtual:
            relation_rows = float(stats.cardinality(spec.relation))
            rows = self._virtual_rows_estimate(rule, var, spec, stats)
            if equi is not None:
                attr, _position = equi
                output = stats.equijoin_bucket(spec.relation, attr, rows)
                relation = self.network.catalog.relation(spec.relation)
                if relation.index_on(attr) is not None:
                    access = math.log2(relation_rows + 2.0) + output
                else:
                    access = relation_rows
                return access + output
            cost = relation_rows + rows
        else:
            rows = float(len(memory))
            if equi is not None:
                attr, _position = equi
                # hash-bucket fetch: cheap whether the join index exists
                # already or is about to be promoted on demand
                output = stats.equijoin_bucket(spec.relation, attr, rows)
                return 1.0 + 2.0 * output
            cost = 2.0 * rows
        if not self._connected(rule, var, bound):
            cost += _CARTESIAN_COST
        return cost

    def _rows(self, rule: CompiledRule, var: str) -> float:
        """Live candidate-count estimate of one memory: the stored
        entry count, or the virtual node's filtered-scan estimate."""
        memory = self.network._memories[(rule.name, var)]
        if memory.is_virtual:
            return self._virtual_rows_estimate(
                rule, var, memory.spec, self.network.optimizer.stats)
        return float(len(memory))

    def _virtual_rows_estimate(self, rule: CompiledRule, var: str,
                               spec, stats) -> float:
        bucket = stats.cardinality(spec.relation).bit_length()
        key = (rule.name, var, bucket)
        rows = self._virtual_rows.get(key)
        if rows is None:
            rows = stats.scan_cardinality(spec.relation, var,
                                          spec.selection_conjuncts)
            self._virtual_rows[key] = rows
        return rows

    @staticmethod
    def _bound_equijoin(rule: CompiledRule, var: str,
                        bound: set[str]) -> tuple[str, int] | None:
        """The (attribute, position) of an equi-join conjunct linking
        ``var`` to an already-bound variable, if any."""
        for other, attr, position in rule.equijoins_by_var.get(var, ()):
            if other in bound:
                return attr, position
        return None

    @staticmethod
    def _connected(rule: CompiledRule, var: str, bound: set[str]) -> bool:
        return any(var in j.variables and j.variables & bound
                   for j in rule.joins)

    # ------------------------------------------------------------------
    # signatures
    # ------------------------------------------------------------------

    def _signature(self, rule: CompiledRule) -> tuple[int, ...]:
        """Cardinality-bucket signature: one log2 bucket per variable,
        so memoized orders survive small size drift but re-plan when a
        memory roughly doubles or halves."""
        memories = self.network._memories
        catalog = self.network.catalog
        sig = []
        for var in rule.variables:
            memory = memories[(rule.name, var)]
            if memory.is_virtual:
                n = len(catalog.relation(memory.spec.relation))
            else:
                n = len(memory)
            sig.append(n.bit_length())
        return tuple(sig)

    # ------------------------------------------------------------------
    # introspection (the CLI's ``\plan``)
    # ------------------------------------------------------------------

    def describe(self, rule: CompiledRule) -> str:
        """Current join plan of one rule: per-memory storage decision
        and index set, the seek order from every seed, and (for Rete)
        the β-chain order."""
        network = self.network
        stats = network.optimizer.stats
        lines = [f"join plan for rule {rule.name} "
                 f"({network.network_name} network)"]
        for var in rule.variables:
            memory = network._memories[(rule.name, var)]
            spec = memory.spec
            relation = network.catalog.relation(spec.relation)
            if memory.is_virtual:
                rows = self._virtual_rows_estimate(rule, var, spec, stats)
                lines.append(
                    f"  {var} in {spec.relation}: virtual, "
                    f"~{rows:.0f} of {len(relation)} row(s), "
                    f"{memory.probe_count} probe(s)")
            elif spec.is_simple:
                lines.append(f"  {var} in {spec.relation}: simple "
                             f"(routed straight to the P-node)")
            else:
                names = relation.schema.names()
                indexed = ", ".join(
                    names[p] for p in sorted(memory.join_index_positions()))
                lines.append(
                    f"  {var} in {spec.relation}: stored, "
                    f"{len(memory)} entries, "
                    f"join-index(es) [{indexed}], "
                    f"{memory.probe_count} probe(s), "
                    f"{memory.unindexed_probe_count} unindexed")
        if len(rule.variables) > 1:
            if len(rule.variables) >= 3 and self.mode != "pairwise" \
                    and self.forced is None:
                shape = self._shape(rule)
                graph = "cyclic" if shape.cyclic else "acyclic"
                note = "" if shape.eligible \
                    else f" — pairwise only ({shape.reason})"
                lines.append(
                    f"  multiway: {graph} equi-join graph, "
                    f"{len(shape.classes)} join class(es), "
                    f"mode={self.mode}{note}")
            for seed in rule.variables:
                mode, payload = self.seek_plan(rule, seed)
                if mode == "multiway":
                    lines.append(f"  seek from {seed}: "
                                 + self._describe_multiway(rule,
                                                           payload))
                else:
                    lines.append(f"  seek from {seed}: "
                                 + " -> ".join([seed] + payload))
            states = getattr(network, "_states", None)
            if states is not None and rule.name in states:
                state = states[rule.name]
                if getattr(state, "multiway_plan", None) is not None:
                    lines.append("  beta chain: bypassed "
                                 "(multiway join step)")
                else:
                    lines.append("  beta chain: "
                                 + " -> ".join(state.order))
        return "\n".join(lines)

    def _describe_multiway(self, rule: CompiledRule, plan) -> str:
        """One-line rendering of a multiway plan: the leapfrog level
        sequence with each participant's iterator source, then the
        emission order."""
        network = self.network
        parts = []
        for level in plan.levels:
            sources = []
            for level_var in level.vars:
                memory = network._memories[(rule.name, level_var.var)]
                attr = self._attr_name(rule, level_var.var,
                                       level_var.positions[0])
                if memory.is_virtual:
                    source = "virtual scan"
                elif level_var.constraints:
                    source = "restricted probe"
                elif memory.has_join_index(level_var.positions[0]):
                    source = "sorted join-index view"
                else:
                    source = "memory scan"
                sources.append(f"{level_var.var}.{attr} via {source}")
            parts.append("leapfrog[" + " & ".join(sources) + "]")
        for var, _constraints in plan.prefixed:
            parts.append(f"{var} via restricted probe")
        seed = plan.seed_var if plan.seed_var is not None else "(all)"
        emit = " -> ".join(plan.emit_order)
        levels = "; ".join(parts) if parts else "seed-fixed"
        return f"multiway from {seed}: {levels}; emit {emit}"
