"""Rule and network introspection: human-readable descriptions.

Renders what the paper's figures show — the discrimination network built
for a rule (Figures 3/4: α-memory kinds, selection predicates, join
predicates, the P-node) and the modified rule action (Figure 7) — for
debugging, the CLI's ``\\rule`` command, and tests.
"""

from __future__ import annotations

from repro.core.action_planner import modified_action_text
from repro.core.manager import RuleManager
from repro.core.rules import CompiledRule
from repro.lang.ast_nodes import deparse


def describe_rule(manager: RuleManager, name: str) -> str:
    """A multi-line description of one rule and its network structures."""
    record = manager.rule(name)
    lines = [f"rule {name}"]
    ruleset = record.definition.ruleset or "default_rules"
    lines.append(f"  ruleset:  {ruleset}")
    lines.append(f"  priority: {record.definition.priority!r}")
    lines.append(f"  status:   "
                 f"{'active' if record.active else 'installed'}")
    if record.definition.event is not None:
        event = record.definition.event
        text = f"on {event.kind.value} {event.relation}"
        if event.attributes:
            text += f" ({', '.join(event.attributes)})"
        lines.append(f"  event:    {text}")
    if record.definition.condition is not None:
        lines.append(f"  if:       "
                     f"{deparse(record.definition.condition)}")
    if not record.active:
        lines.append(f"  then:     {deparse(record.definition.action)}")
        return "\n".join(lines)

    rule = record.compiled
    lines.append("  network:")
    for var in rule.variables:
        lines.append("    " + _describe_memory(manager, rule, var))
    if rule.joins:
        joins = " and ".join(deparse(j.expr) for j in rule.joins)
        lines.append(f"    joins: {joins}")
    pnode = manager.network.pnode(name)
    lines.append(f"    P-node: {len(pnode)} match(es)")
    lines.append("  modified action (query modification):")
    for line in modified_action_text(rule).splitlines():
        lines.append(f"    {line}")
    return "\n".join(lines)


def _describe_memory(manager: RuleManager, rule: CompiledRule,
                     var: str) -> str:
    spec = rule.specs[var]
    memory = manager.network.memory(rule.name, var)
    parts = [f"{var} in {spec.relation}: {memory.kind_name}"]
    anchor = spec.analysis.anchor if spec.analysis else None
    if anchor is not None:
        parts.append(f"anchor {anchor.attr} in {anchor.interval}")
    if spec.analysis and spec.analysis.residual is not None:
        parts.append(f"residual [{deparse(spec.analysis.residual)}]")
    if not memory.is_virtual and not spec.is_simple:
        parts.append(f"{len(memory)} entries")
    return ", ".join(parts)


def describe_join_plan(manager: RuleManager, name: str) -> str:
    """The adaptive join plan of one active rule (the CLI's ``\\plan``):
    per-memory storage decision, join-index set and probe feedback, plus
    the planner's seek order from every seed variable."""
    record = manager.rule(name)
    if not record.active:
        return f"rule {name} is not active (no join plan)"
    return manager.network.join_planner.describe(record.compiled)


def probe_tuple(manager: RuleManager, relation: str,
                values: tuple, old_values: tuple | None = None) -> list:
    """Dry-run the selection layer: which rule memories would a tuple
    with these values satisfy?

    Returns ``(rule_name, var, kind_name)`` triples for every α-memory
    whose full selection predicate the values pass — without generating
    tokens or touching any state.  A debugging aid: "why did (or didn't)
    this update wake rule X?".
    """
    manager.catalog.relation(relation).schema.coerce_values(values)
    out = []
    for memory in manager.network.selection_index.probe(relation, values):
        spec = memory.spec
        if spec.selection_matches(values, old_values):
            out.append((memory.rule_name, spec.var, memory.kind_name))
    return sorted(out)


def explain_probe(manager: RuleManager, relation: str,
                  values: tuple, old_values: tuple | None = None) -> str:
    """Human-readable form of :func:`probe_tuple`."""
    hits = probe_tuple(manager, relation, values, old_values)
    if not hits:
        return (f"a {relation} tuple {values!r} satisfies no rule "
                f"selection predicate")
    lines = [f"a {relation} tuple {values!r} satisfies:"]
    for rule_name, var, kind in hits:
        lines.append(f"  {rule_name}/{var} ({kind})")
    return "\n".join(lines)


def network_summary(manager: RuleManager) -> str:
    """A table of every installed rule and top-level network statistics."""
    network = manager.network
    lines = [f"network: {network.network_name}"]
    lines.append(
        f"selection index: {network.selection_index.anchored_count()} "
        f"anchored predicate(s), "
        f"{network.selection_index.unanchored_count()} unanchored")
    lines.append(f"tokens processed: {network.tokens_processed}")
    records = manager.installed_rules()
    if not records:
        lines.append("no rules installed")
        return "\n".join(lines)
    lines.append(f"{'rule':<24} {'status':<9} {'priority':>8} "
                 f"{'vars':>4} {'α entries':>9} {'P-node':>6}")
    for record in sorted(records, key=lambda r: r.name):
        if record.active:
            rule = record.compiled
            entries = network.memory_entry_count(record.name)
            pnode = len(network.pnode(record.name))
            lines.append(
                f"{record.name:<24} {'active':<9} "
                f"{record.definition.priority:>8} "
                f"{len(rule.variables):>4} {entries:>9} {pnode:>6}")
        else:
            lines.append(
                f"{record.name:<24} {'installed':<9} "
                f"{record.definition.priority:>8} "
                f"{'-':>4} {'-':>9} {'-':>6}")
    return "\n".join(lines)
