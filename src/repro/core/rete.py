"""A Rete network, optionally with virtual α-memories.

Rete (Forgy 1982) materialises β-memories — one per prefix of the rule's
variable list — holding the partial joins.  A token entering α-memory *i*
joins leftward against the level *i−1* β-memory and cascades rightward
through the remaining α-memories, storing every surviving partial; a
deletion removes all β partials (and P-node matches) involving the tuple.

The paper notes the virtual-memory technique "could also be used in the
Rete algorithm": with ``virtual_policy`` enabled, rightward cascade steps
consult a virtual α by scanning (or index-probing, via constant
substitution) its base relation, with the same sequential
ProcessedMemories exclusion protocol as A-TREAT for self-joins.  The β
state stays materialised either way — that is what distinguishes Rete
from TREAT, and what the ``ablate-net`` benchmark measures.

α-memory handling, selection-index routing, event and transition gating
are all inherited from the shared base; this class only adds the β
chain.  Dynamic rules rebuild their β chain after the flush at the end
of each transition's rule processing.
"""

from __future__ import annotations

from repro.core.alpha import MemoryEntry
from repro.core.network import DiscriminationNetwork
from repro.core.pnode import Match
from repro.core.rules import CompiledRule, JoinConjunct, VariableSpec
from repro.core.tokens import Token
from repro.lang.expr import Bindings
from repro.storage.tuples import TupleId


class _ReteState:
    """The β chain of one rule."""

    def __init__(self, rule: CompiledRule):
        #: pinned at :meth:`ReteNetwork._rebuild`: when set, the rule
        #: runs the leapfrog multiway step and keeps no β state at all
        #: (the only safe place to flip algorithms — β keys are tid
        #: tuples over order prefixes, meaningless across a switch)
        self.multiway_plan = None
        self.set_order(rule, list(rule.variables))

    def set_order(self, rule: CompiledRule, order: list[str]) -> None:
        """Adopt a chain order: β keys are tid tuples over order
        prefixes, so this is only safe when the chain is empty (at
        construction or right after :meth:`clear`)."""
        self.order: list[str] = list(order)
        #: betas[i] holds partials over order[0..i], keyed by tid tuple
        self.betas: list[dict[tuple, dict[str, MemoryEntry]]] = [
            {} for _ in self.order]
        #: conjuncts first evaluable at each level
        self.level_conjuncts: list[list[JoinConjunct]] = []
        bound: set[str] = set()
        for var in self.order:
            before = set(bound)
            bound.add(var)
            self.level_conjuncts.append(
                [j for j in rule.joins
                 if j.variables <= bound and not j.variables <= before])

    def entry_count(self) -> int:
        return sum(len(level) for level in self.betas)

    def clear(self) -> None:
        for level in self.betas:
            level.clear()


class ReteNetwork(DiscriminationNetwork):
    """Rete with materialised β-memories (α-memories stored or virtual
    per ``virtual_policy``; the ``Database(network="rete")`` default is
    all-stored, the classic baseline)."""

    network_name = "Rete"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._states: dict[str, _ReteState] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def add_rule(self, rule: CompiledRule, prime: bool = True) -> None:
        self._states[rule.name] = _ReteState(rule)
        super().add_rule(rule, prime)

    def remove_rule(self, name: str) -> None:
        super().remove_rule(name)
        del self._states[name]

    def _after_prime(self, rule: CompiledRule) -> None:
        self._rebuild(rule)

    def _after_flush(self, rule: CompiledRule) -> None:
        self._rebuild(rule)

    def _rebuild(self, rule: CompiledRule) -> None:
        """Recompute the β chain from current α contents — adopting the
        planner's cost-driven chain order while the chain is empty (the
        only safe reorder point: β keys are tid tuples over order
        prefixes)."""
        state = self._states[rule.name]
        state.clear()
        if len(rule.variables) == 1:
            return
        mode, payload = self.join_planner.chain_plan(rule)
        if mode == "multiway":
            # β-less: re-derive the P-node by a full (seedless) trie
            # walk — stamp-count identical to the pairwise re-cascade,
            # since both advance once per complete combination.
            state.multiway_plan = payload
            self._run_multiway(rule, payload, None, frozenset(), None)
            return
        state.multiway_plan = None
        order = payload
        if order != state.order:
            state.set_order(rule, order)
        first = self._memories[(rule.name, state.order[0])]
        entries, _ = self._join_candidates(first, state.order[0], {}, [],
                                           frozenset(), None)
        for entry in entries:
            self._cascade(rule, state, 0, {state.order[0]: entry},
                          pending_vars=frozenset(), token=None,
                          emit=False)

    # ------------------------------------------------------------------
    # token handling
    # ------------------------------------------------------------------

    def _handle_insert(self, rule: CompiledRule, spec: VariableSpec,
                       memory, entry: MemoryEntry,
                       pending_vars: set[str], token: Token) -> None:
        if not memory.is_virtual:
            if not memory.insert(entry):
                return
        if len(rule.variables) == 1:
            return            # simple-α routed by the base class
        state = self._states[rule.name]
        if state.multiway_plan is not None:
            plan = self.join_planner.multiway_seek_plan(rule, spec.var)
            if self._run_multiway(rule, plan, entry,
                                  frozenset(pending_vars), token):
                self.on_match(rule)
            return
        i = state.order.index(spec.var)
        pending = frozenset(pending_vars)
        if i == 0:
            self._cascade(rule, state, 0, {spec.var: entry}, pending,
                          token)
            return
        bindings = Bindings()
        self._bind_entry(bindings, spec.var, entry)
        for left in list(state.betas[i - 1].values()):
            for var, left_entry in left.items():
                self._bind_entry(bindings, var, left_entry)
            if all(j.evaluate(bindings) is True
                   for j in state.level_conjuncts[i]):
                partial = dict(left)
                partial[spec.var] = entry
                self._cascade(rule, state, i, partial, pending, token)
            for var in left:
                bindings.current.pop(var, None)
                bindings.previous.pop(var, None)

    def _cascade(self, rule: CompiledRule, state: _ReteState, level: int,
                 partial: dict[str, MemoryEntry],
                 pending_vars: frozenset[str], token: Token | None,
                 emit: bool = True) -> None:
        """Store a surviving partial at ``level`` and extend rightward."""
        key = tuple(partial[v].tid for v in state.order[:level + 1])
        state.betas[level][key] = partial
        if level + 1 == len(state.order):
            self._stamp += 1
            if self._pnodes[rule.name].insert(Match.of(dict(partial)),
                                              self._stamp):
                self._note_pnode_insert()
                if emit:
                    self.on_match(rule)
            return
        next_var = state.order[level + 1]
        conjuncts = state.level_conjuncts[level + 1]
        memory = self._memories[(rule.name, next_var)]
        bindings = Bindings()
        for var, entry in partial.items():
            self._bind_entry(bindings, var, entry)
        candidates, enforced = self._join_candidates(
            memory, next_var, partial, conjuncts, pending_vars, token)
        if enforced is not None:
            # the access path already guarantees the probed equi-join
            # conjunct: evaluate only the residual conjuncts
            conjuncts = [j for j in conjuncts if j is not enforced]
        for entry in candidates:
            self._bind_entry(bindings, next_var, entry)
            if all(j.evaluate(bindings) is True for j in conjuncts):
                extended = dict(partial)
                extended[next_var] = entry
                self._cascade(rule, state, level + 1, extended,
                              pending_vars, token, emit)
            bindings.current.pop(next_var, None)
            bindings.previous.pop(next_var, None)

    def _handle_delete(self, rule: CompiledRule, tid: TupleId) -> None:
        state = self._states.get(rule.name)
        if state is None:
            return
        for level in state.betas:
            doomed = [key for key, partial in level.items()
                      if any(e.tid == tid for e in partial.values())]
            for key in doomed:
                del level[key]

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    def beta_entry_count(self, rule_name: str | None = None) -> int:
        """Materialised β partials — the state TREAT avoids entirely."""
        if rule_name is not None:
            return self._states[rule_name].entry_count()
        return sum(s.entry_count() for s in self._states.values())

    @staticmethod
    def _bind_entry(bindings: Bindings, var: str,
                    entry: MemoryEntry) -> None:
        bindings.current[var] = entry.values
        if entry.old_values is not None:
            bindings.previous[var] = entry.old_values
