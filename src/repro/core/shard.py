"""Sharded token propagation: partitioner, worker pool, Δ-set merge.

The batched propagation path (:meth:`~repro.core.network
.DiscriminationNetwork.process_tokens`) runs a transition Δ-set on one
core.  This module supplies the pieces that parallelise its *match*
phase while keeping the observable semantics bit-for-bit identical to
serial execution:

* :func:`partition` — hash-partition a Δ-set by ``(relation,
  anchor-key)`` into ``K`` shards.  The shard key equals the batch
  probe-cache key, so every token that would share a memoized selection
  probe, interval stab, or residual evaluation lands in the same shard
  and the per-shard caches lose nothing to the split.
* :func:`shard_hash` — a deliberately *stable* hash (``crc32`` for
  strings, identity-free handling of ``None``): Python salts ``str``
  hashes per process and ``hash(None)`` is id-based on 3.11, so the
  builtin would make shard assignment — and therefore per-shard cache
  hit counters — nondeterministic across runs.
* :class:`ShardPool` — the worker pool (``backend="thread"`` default;
  ``"process"`` adds a fork-based :class:`ResidualOffload` that
  evaluates CPU-bound residual predicates in child processes, falling
  back inline on any pickling/pool failure).
* :func:`merge_results` — fold per-shard match results back into one
  token-index-ordered decision map plus summed counters.  The *apply*
  phase (memory mutation, joins, P-node inserts, agenda notifications)
  then replays decisions serially in original token order, which is the
  determinism argument: every effect with observable ordering happens
  on the merge thread, in exactly the serial sequence.

``Database(parallel_workers=N)`` wires a pool in; ``workers=0`` (the
default, also via the ``REPRO_WORKERS`` environment variable) never
constructs one, preserving today's serial path untouched.
"""

from __future__ import annotations

import os
from zlib import crc32

from repro.errors import ArielError

#: batches smaller than this stay on the serial path — partitioning and
#: worker handoff overhead would swamp any match-phase win
DEFAULT_MIN_BATCH = 16

BACKENDS = ("thread", "process")


def resolve_workers(workers: int | None) -> int:
    """The effective worker count: an explicit value wins; ``None``
    falls back to the ``REPRO_WORKERS`` environment variable; absent
    both, propagation is serial (0)."""
    if workers is None:
        raw = os.environ.get("REPRO_WORKERS", "").strip()
        if not raw:
            return 0
        try:
            workers = int(raw)
        except ValueError:
            raise ArielError(
                f"REPRO_WORKERS must be an integer, got {raw!r}") \
                from None
    workers = int(workers)
    if workers < 0:
        raise ArielError(
            f"parallel_workers must be >= 0, got {workers}")
    return workers


def shard_hash(relation: str, anchor_vals: tuple) -> int:
    """A process-stable hash of a token's partitioning key.

    Strings go through ``crc32`` (``hash(str)`` is salted per process),
    ``None`` contributes a constant (``hash(None)`` is id-based on
    CPython 3.11), and numbers use ``hash()`` (unsalted, and it already
    equates ``1`` / ``1.0`` the way dict keys do).
    """
    h = crc32(relation.encode())
    for value in anchor_vals:
        if isinstance(value, str):
            h = (h * 31 + crc32(value.encode())) & 0xFFFFFFFF
        elif value is None:
            h = (h * 31 + 0x9E3779B9) & 0xFFFFFFFF
        else:
            h = (h * 31 + hash(value)) & 0xFFFFFFFF
    return h


def partition(tokens, selection_index, shards: int) -> list[list]:
    """Split a Δ-set into ``shards`` lists of ``(index, token)`` pairs.

    The key is ``(relation, anchor-key)`` — identical to the batch
    probe-cache key, so co-cached tokens co-shard.  Original token
    indexes ride along for the deterministic merge; within a shard,
    tokens keep their relative order, so per-shard residual memo state
    evolves exactly as it would serially.
    """
    out: list[list] = [[] for _ in range(shards)]
    anchor_positions = selection_index.anchor_positions
    for idx, token in enumerate(tokens):
        positions = anchor_positions.get(token.relation)
        if not positions:
            anchor_vals: tuple = ()
        elif len(positions) == 1:
            anchor_vals = (token.values[positions[0]],)
        else:
            anchor_vals = tuple(token.values[p] for p in positions)
        out[shard_hash(token.relation, anchor_vals) % shards].append(
            (idx, token))
    return out


def merge_results(results) -> tuple[dict, dict, int]:
    """Fold per-shard match results into ``(decisions, counters,
    memo_hits)``.

    ``decisions`` maps original token index to the precomputed
    ``(candidates, ops)`` pair; because a probe key maps to exactly one
    shard, summing per-shard counters and memo hits reproduces the
    serial batched counts exactly.
    """
    decisions: dict = {}
    counters: dict = {}
    memo_hits = 0
    for shard_decisions, shard_counters, shard_memo_hits in results:
        for idx, candidates, ops in shard_decisions:
            decisions[idx] = (candidates, ops)
        if shard_counters:
            for key, value in shard_counters.items():
                counters[key] = counters.get(key, 0) + value
        memo_hits += shard_memo_hits
    return decisions, counters, memo_hits


class ShardPool:
    """A propagation worker pool (thread backend, lazily started).

    ``backend="process"`` keeps the match phase on threads (it is
    read-only and cheap per token) but attaches a
    :class:`ResidualOffload` so the deduplicated residual-predicate
    evaluations — the CPU-bound part — can run in child processes.
    """

    def __init__(self, workers: int, backend: str = "thread",
                 min_batch: int = DEFAULT_MIN_BATCH):
        if backend not in BACKENDS:
            raise ArielError(
                f"unknown parallel backend {backend!r}; expected one "
                f"of {list(BACKENDS)}")
        workers = resolve_workers(workers)
        if workers < 1:
            raise ArielError("a ShardPool needs at least one worker")
        self.workers = workers
        self.backend = backend
        self.min_batch = max(1, int(min_batch))
        self._executor = None
        self.offload = (ResidualOffload(workers)
                        if backend == "process" else None)

    def accepts(self, n: int) -> bool:
        """Is a batch of ``n`` tokens worth sharding?"""
        return n >= self.min_batch

    def map(self, fn, shards: list) -> list:
        """Run ``fn`` over every non-empty shard, concurrently when
        there is anything to overlap."""
        live = [s for s in shards if s]
        if len(live) <= 1 or self.workers == 1:
            return [fn(s) for s in live]
        executor = self._executor
        if executor is None:
            from concurrent.futures import ThreadPoolExecutor
            executor = self._executor = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-shard")
        futures = [executor.submit(fn, s) for s in live]
        return [f.result() for f in futures]

    def info(self) -> dict:
        return {"workers": self.workers, "backend": self.backend,
                "min_batch": self.min_batch}

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self.offload is not None:
            self.offload.close()

    def __repr__(self) -> str:
        return (f"ShardPool(workers={self.workers}, "
                f"backend={self.backend!r})")


# ----------------------------------------------------------------------
# process-pool residual offload
# ----------------------------------------------------------------------


class ResidualOffload:
    """Evaluate deduplicated residual predicates in child processes.

    Compiled residuals are closures and do not pickle; what ships is
    the residual *syntax tree* (``spec.analysis.residual``, plain
    dataclasses) plus the projected value tuples, recompiled in the
    child.  Any failure — no fork support, a broken pool, an
    unpicklable payload — permanently disables the offload and the
    caller evaluates inline on the worker thread instead, so
    ``backend="process"`` can never change results, only where the
    CPU time is spent.
    """

    def __init__(self, workers: int):
        self.workers = workers
        self.available = True
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("fork"))
        return self._pool

    def evaluate(self, deferred: dict) -> dict | None:
        """``{memo_key: bool}`` for ``{memo_key: (spec, values,
        old_values)}``, or None when the offload cannot serve (the
        caller falls back inline)."""
        if not self.available or not deferred:
            return None
        groups: dict[int, list] = {}
        specs: dict[int, object] = {}
        for key, (spec, values, old) in deferred.items():
            if spec.analysis is None or spec.analysis.residual is None:
                return None
            specs[id(spec)] = spec
            groups.setdefault(id(spec), []).append((key, values, old))
        payload = [(specs[sid].var, specs[sid].analysis.residual,
                    [(values, old) for _, values, old in rows])
                   for sid, rows in groups.items()]
        try:
            pool = self._ensure_pool()
            chunks = [payload[i::self.workers]
                      for i in range(self.workers)]
            chunks = [c for c in chunks if c]
            futures = [pool.submit(_eval_residual_groups, chunk)
                       for chunk in chunks]
            answers_by_chunk = [f.result() for f in futures]
        except Exception:
            self.available = False
            self.close()
            return None
        out: dict = {}
        group_rows = list(groups.values())
        # chunks were built by striding payload; reassemble in the same
        # stride order so answers line up with their groups
        strided = [group_rows[i::self.workers]
                   for i in range(self.workers)]
        strided = [c for c in strided if c]
        for chunk_groups, chunk_answers in zip(strided,
                                               answers_by_chunk):
            for rows, answers in zip(chunk_groups, chunk_answers):
                for (key, _, _), accepted in zip(rows, answers):
                    out[key] = accepted
        return out

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None


def _eval_residual_groups(groups):
    """Child-process worker: compile each residual AST once and
    evaluate its projected value rows; returns one bool list per
    group."""
    from repro.lang.expr import Bindings, compile_expr
    out = []
    for var, expr, rows in groups:
        fn = compile_expr(expr)
        answers = []
        for values, old in rows:
            bindings = Bindings(
                current={var: values},
                previous={var: old} if old is not None else {})
            try:
                answers.append(fn(bindings) is True)
            except KeyError:
                answers.append(False)
        out.append(answers)
    return out
