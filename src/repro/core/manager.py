"""The rule manager: install / activate / deactivate lifecycle (paper §6).

The paper's performance section separates three rule costs, and the
manager keeps them separate operations:

* **installation** — "storing a persistent copy of the rule syntax tree
  in the rule catalog" (:meth:`RuleManager.install`);
* **activation** — compiling the rule, building its discrimination
  network structures, and priming: "running one one-variable query for
  each tuple variable … plus running a query equivalent to the entire
  rule condition to load the P-node" (:meth:`RuleManager.activate`);
* **token testing** — routing an update's tokens through the network
  (:meth:`RuleManager.process_token`).

The manager also owns the **cascade guard**: every firing of one
triggering transition is recorded in a trace, and exceeding
``max_rule_cascade`` firings raises :class:`~repro.errors.RuleLoopError`
naming the rules that kept re-firing — two mutually-triggering rules
become a diagnosable error instead of an unbounded loop.
"""

from __future__ import annotations

from collections import Counter

from repro.catalog.catalog import Catalog
from repro.core.agenda import Agenda
from repro.core.network import DiscriminationNetwork
from repro.core.pnode import FrozenMatches
from repro.core.rules import CompiledRule
from repro.core.selection_index import SelectionIndex
from repro.core.tokens import Token
from repro.core.treat import TreatNetwork
from repro.errors import RuleError, RuleLoopError
from repro.lang import ast_nodes as ast
from repro.observe import EngineStats, NULL_STATS
from repro.planner.optimizer import Optimizer

#: how many trailing firings the cascade guard inspects when naming the
#: rules caught in a loop
_CASCADE_TAIL = 50


class InstalledRule:
    """Catalog record of an installed rule: its syntax tree plus its
    compiled form once activated."""

    def __init__(self, definition: ast.DefineRule):
        self.definition = definition
        self.compiled: CompiledRule | None = None

    @property
    def name(self) -> str:
        return self.definition.name

    @property
    def active(self) -> bool:
        return self.compiled is not None

    @property
    def referenced_relations(self):
        scope = getattr(self.definition, "condition_scope", {}) or {}
        return frozenset(scope.values())

    def __repr__(self) -> str:
        state = "active" if self.active else "installed"
        return f"InstalledRule({self.name!r}, {state})"


class RuleManager:
    """Owns the discrimination network, the agenda, and rule lifecycle."""

    def __init__(self, catalog: Catalog,
                 optimizer: Optimizer | None = None,
                 network_cls: type[DiscriminationNetwork] = TreatNetwork,
                 virtual_policy="auto",
                 selection_index: SelectionIndex | None = None,
                 max_rule_cascade: int = 1000,
                 stats: EngineStats | None = None,
                 join_index_policy: str = "demand",
                 join_mode: str | None = None,
                 worker_pool=None):
        self.catalog = catalog
        self.optimizer = optimizer or Optimizer(catalog)
        self.stats = stats or NULL_STATS
        self.agenda = Agenda()
        self.agenda.stats = self.stats
        self.network = network_cls(
            catalog, self.optimizer,
            selection_index or SelectionIndex(),
            virtual_policy=virtual_policy,
            on_match=self.agenda.notify,
            stats=self.stats,
            join_index_policy=join_index_policy,
            join_mode=join_mode)
        # sharded propagation worker pool (None = serial; the Database
        # owns the pool's lifecycle and may swap it at runtime)
        self.network.worker_pool = worker_pool
        self.halted = False
        #: bound on firings per triggering transition (cascade guard)
        self.max_rule_cascade = max_rule_cascade
        #: rule names fired by the current cascade, in firing order
        self._cascade_trace: list[str] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def install(self, definition: ast.DefineRule) -> InstalledRule:
        """Store a (semantically analyzed) rule in the rule catalog."""
        record = InstalledRule(definition)
        self.catalog.store_rule(definition.name, record,
                                definition.ruleset)
        return record

    def activate(self, name: str) -> CompiledRule:
        """Compile the rule, build its network structures, and prime."""
        record = self._record(name)
        if record.active:
            raise RuleError(f"rule {name!r} is already active")
        compiled = CompiledRule(record.definition, self.catalog)
        self.network.add_rule(compiled, prime=True)
        record.compiled = compiled
        # an active rule changes which plans are valid (query
        # modification, action plans) — invalidate cached plans
        self.catalog.bump_version()
        return compiled

    def deactivate(self, name: str) -> None:
        """Tear down the rule's network structures; keep it installed."""
        record = self._record(name)
        if not record.active:
            raise RuleError(f"rule {name!r} is not active")
        self.network.remove_rule(name)
        self.agenda.discard(name)
        record.compiled = None
        self.catalog.bump_version()

    def remove(self, name: str) -> None:
        """Drop a rule entirely (deactivating it first if needed)."""
        record = self._record(name)
        if record.active:
            self.deactivate(name)
        self.catalog.drop_rule(name)

    def define(self, definition: ast.DefineRule,
               activate: bool = True) -> InstalledRule:
        """Install and (by default) immediately activate a rule."""
        record = self.install(definition)
        if activate:
            self.activate(definition.name)
        return record

    # ------------------------------------------------------------------
    # the match / conflict-resolution interface
    # ------------------------------------------------------------------

    def process_token(self, token: Token) -> None:
        self.network.process_token(token)

    def process_tokens(self, tokens) -> None:
        """Set-oriented routing of a whole Δ-set batch."""
        self.network.process_tokens(tokens)

    def set_worker_pool(self, pool) -> None:
        """Attach (or detach, with None) the propagation worker pool;
        takes effect from the next routed batch."""
        self.network.worker_pool = pool

    def select_rule(self) -> CompiledRule | None:
        """Conflict resolution: the next rule to fire, if any."""
        return self.agenda.select(self.network.rules, self.network.pnode)

    def consume_matches(self, rule: CompiledRule) -> FrozenMatches:
        """Take the rule's whole P-node for a set-oriented firing."""
        pnode = self.network.pnode(rule.name)
        matches = pnode.take_all()
        self.agenda.discard(rule.name)
        return FrozenMatches(rule.name, rule.variables, matches)

    def end_of_rule_processing(self) -> None:
        """Flush dynamic memories once a transition's recognize-act
        processing completes."""
        self.network.flush_dynamic()
        self.halted = False

    # ------------------------------------------------------------------
    # the cascade guard
    # ------------------------------------------------------------------

    def begin_cascade(self) -> None:
        """Reset the firing trace at the start of a triggering
        transition's recognize-act cycle."""
        self._cascade_trace.clear()

    def note_firing(self, rule: CompiledRule) -> None:
        """Record one firing of the current cascade; raises
        :class:`~repro.errors.RuleLoopError` — naming the rules caught
        in the loop — once the cascade exceeds ``max_rule_cascade``."""
        trace = self._cascade_trace
        trace.append(rule.name)
        stats = self.stats
        if stats.enabled:
            stats.bump("rules.fired")
            stats.observe_max("rules.max_cascade_depth", len(trace))
        if len(trace) > self.max_rule_cascade:
            cycling = ", ".join(self.cycling_rules())
            raise RuleLoopError(
                f"rule processing exceeded {self.max_rule_cascade} "
                f"firings per transition; cycling rule(s): {cycling}")

    def cycling_rules(self) -> list[str]:
        """The rules that kept re-firing, from the trace tail: any rule
        fired at least twice in the last {_CASCADE_TAIL} firings (every
        participant of a mutual-trigger loop repeats there), else every
        rule in the tail."""
        tail = self._cascade_trace[-_CASCADE_TAIL:]
        counts = Counter(tail)
        cycling = sorted(name for name, n in counts.items() if n >= 2)
        return cycling or sorted(set(tail))

    def halt(self) -> None:
        """An explicit ``halt`` executed in a rule action."""
        self.halted = True

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def installed_rules(self) -> list[InstalledRule]:
        return [r for r in self.catalog.rules().values()
                if isinstance(r, InstalledRule)]

    def active_rules(self) -> dict[str, CompiledRule]:
        return dict(self.network.rules)

    def rule(self, name: str) -> InstalledRule:
        return self._record(name)

    def _record(self, name: str) -> InstalledRule:
        record = self.catalog.rule(name)
        if not isinstance(record, InstalledRule):
            raise RuleError(f"{name!r} is not a rule record")
        return record
