"""Network self-check: verify the discrimination network against the data.

An fsck for the rule system.  :func:`check_network` recomputes, from the
base relations alone, what every *persistent* structure should contain —

* each stored pattern α-memory = the tuples satisfying its selection
  predicate;
* each pattern rule's P-node = the join of its (conceptual) α-memory
  contents under the rule's join predicates;
* the selection index = exactly one registration per α-memory —

and reports every divergence.  Dynamic (event/transition/new) memories
are transient by design and are only checked for emptiness *between*
transitions.  Used by the test suite after stress workloads and available
to applications as ``check_network(db)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.expr import Bindings


@dataclass(frozen=True)
class Inconsistency:
    """One divergence between the network and the data."""

    rule_name: str
    kind: str          # 'alpha-extra' | 'alpha-missing' | 'pnode-extra'
                       # | 'pnode-missing' | 'index' | 'dynamic-not-empty'
    detail: str

    def __str__(self) -> str:
        return f"[{self.rule_name}] {self.kind}: {self.detail}"


def check_network(db, between_transitions: bool = True
                  ) -> list[Inconsistency]:
    """Validate every active rule's network state; returns divergences
    (empty list = consistent).

    ``between_transitions`` should be True when no transition is in
    flight (the normal case): dynamic memories must then be empty.
    """
    out: list[Inconsistency] = []
    network = db.network
    for name, rule in network.rules.items():
        conceptual: dict[str, dict] = {}
        for var in rule.variables:
            spec = rule.specs[var]
            memory = network.memory(name, var)
            expected = {
                stored.tid: stored.values
                for stored in db.catalog.relation(spec.relation).scan()
                if spec.selection_matches(stored.values, None)}
            if spec.is_dynamic:
                conceptual[var] = {}
                if between_transitions and len(memory) != 0:
                    out.append(Inconsistency(
                        name, "dynamic-not-empty",
                        f"{var}: {len(memory)} entries after flush"))
                continue
            conceptual[var] = expected
            if memory.is_virtual or spec.is_simple:
                continue
            actual = {e.tid: e.values for e in memory.entries()}
            for tid in actual.keys() - expected.keys():
                out.append(Inconsistency(
                    name, "alpha-extra", f"{var}: {tid}"))
            for tid in expected.keys() - actual.keys():
                out.append(Inconsistency(
                    name, "alpha-missing", f"{var}: {tid}"))
            for tid in actual.keys() & expected.keys():
                if actual[tid] != expected[tid]:
                    out.append(Inconsistency(
                        name, "alpha-extra",
                        f"{var}: {tid} stale values"))
        if not rule.has_dynamic_variable:
            out.extend(_check_pnode(db, rule, conceptual))
    out.extend(_check_selection_index(db))
    return out


def _check_pnode(db, rule, conceptual) -> list[Inconsistency]:
    """Recompute the P-node for a pure pattern rule and compare.

    The comparison is modulo consumed firings: matches the network holds
    must be a subset of the true join (soundness) — set-oriented firing
    legitimately drains true matches, so completeness is only asserted
    when firing has been suspended (``db._rules_suspended``).
    """
    out: list[Inconsistency] = []
    expected: set[tuple] = set()

    def recurse(i, partial):
        if i == len(rule.variables):
            expected.add(tuple(sorted(
                (v, tid) for v, (tid, _) in partial.items())))
            return
        var = rule.variables[i]
        for tid, values in conceptual[var].items():
            partial[var] = (tid, values)
            bindings = Bindings({v: vals
                                 for v, (_, vals) in partial.items()})
            ok = True
            bound = set(partial)
            for conjunct in rule.joins:
                if conjunct.variables <= bound:
                    try:
                        if conjunct.evaluate(bindings) is not True:
                            ok = False
                            break
                    except KeyError:
                        ok = False
                        break
            if ok:
                recurse(i + 1, partial)
            del partial[var]

    recurse(0, {})
    actual = {
        tuple(sorted((v, match.entry(v).tid) for v in rule.variables))
        for match in db.network.pnode(rule.name).matches()}
    for extra in actual - expected:
        out.append(Inconsistency(rule.name, "pnode-extra", str(extra)))
    if getattr(db, "_rules_suspended", False):
        for missing in expected - actual:
            out.append(Inconsistency(rule.name, "pnode-missing",
                                     str(missing)))
    return out


def _check_selection_index(db) -> list[Inconsistency]:
    out: list[Inconsistency] = []
    network = db.network
    expected = sum(len(r.variables) for r in network.rules.values())
    actual = len(network.selection_index)
    if actual != expected:
        out.append(Inconsistency(
            "*", "index",
            f"selection index holds {actual} registrations, "
            f"expected {expected}"))
    return out


def assert_consistent(db, between_transitions: bool = True) -> None:
    """Raise AssertionError with a readable report on any divergence."""
    problems = check_network(db, between_transitions)
    if problems:
        report = "\n".join(str(p) for p in problems[:20])
        raise AssertionError(
            f"network inconsistent ({len(problems)} problem(s)):\n"
            f"{report}")
