"""Conflict resolution for the recognize-act cycle (paper Figure 1).

The *match* step is the discrimination network: a rule is eligible to run
when its P-node is non-empty.  The *conflict resolution* step here picks
one eligible rule: highest ``priority`` first (the ARL priority clause),
then most recent match (OPS5-style recency, via the P-node's insertion
stamp), then rule name for determinism.  The tie-break policy beyond
priority is our choice — the paper specifies only the priority clause —
and is recorded in DESIGN.md.
"""

from __future__ import annotations

from repro.core.pnode import PNode
from repro.core.rules import CompiledRule
from repro.observe import NULL_STATS


class Agenda:
    """Tracks which rules may be eligible and picks the next to fire."""

    #: engine counter registry (``agenda.*``); the owning manager replaces
    #: the shared disabled default with the Database's registry
    stats = NULL_STATS

    def __init__(self):
        # Insertion-ordered (dict, not set): select() already breaks
        # ties with a total order, but iterating notifications in
        # arrival order makes every agenda walk — including diagnostic
        # inspection — reproducible run-to-run.  The sharded
        # propagation path relies on notify() being called only from
        # the serial apply/merge phase, in original token order, so
        # this arrival order is identical to serial execution.
        self._notified: dict[str, None] = {}

    def notify(self, rule: CompiledRule) -> None:
        """The network reports a rule gained a match."""
        self._notified[rule.name] = None

    def discard(self, rule_name: str) -> None:
        self._notified.pop(rule_name, None)

    def clear(self) -> None:
        self._notified.clear()

    def select(self, rules: dict[str, CompiledRule],
               pnode_of) -> CompiledRule | None:
        """Pick the next rule to fire, or None when nothing is eligible.

        ``pnode_of`` maps a rule name to its P-node; notifications whose
        P-node has drained (matches retracted by later tokens) are
        dropped here — eligibility always reflects current matches.
        """
        best: CompiledRule | None = None
        best_key: tuple | None = None
        stale: list[str] = []
        for name in self._notified:
            rule = rules.get(name)
            if rule is None:
                stale.append(name)
                continue
            pnode: PNode = pnode_of(name)
            if not pnode:
                stale.append(name)
                continue
            key = (rule.priority, pnode.last_insert_stamp, rule.name)
            if best_key is None or key > best_key:
                best, best_key = rule, key
        for name in stale:
            self._notified.pop(name, None)
        if self.stats.enabled:
            self.stats.bump("agenda.selections")
            if stale:
                self.stats.bump("agenda.stale_dropped", len(stale))
        return best

    def __len__(self) -> int:
        return len(self._notified)
