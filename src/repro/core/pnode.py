"""P-nodes: the per-rule relations holding data matching rule conditions.

"In Ariel, data matching the rule condition is stored in a temporary
relation called the P-node" (paper §2.2.3).  Each entry binds every tuple
variable of the rule to a concrete tuple — its TID, its current values,
and (for transition/replace-bound variables) the values it had at the
beginning of the transition, which is what lets rule actions reference
``previous var.attr`` and lets ``replace'``/``delete'`` locate their
targets by TID (paper §5.1).

Threading/ownership: P-nodes are *single-writer*.  Under sharded
propagation the parallel match phase never touches them — every
:meth:`PNode.insert` / :meth:`PNode.delete_by_tid` happens on the
boundary thread during the serial apply/merge phase, in original token
order, which is what keeps ``last_insert_stamp`` (the agenda's recency
tie-break) and therefore conflict resolution identical to serial
execution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.alpha import MemoryEntry
from repro.lang.expr import Bindings
from repro.observe import NULL_STATS
from repro.storage.tuples import TupleId


@dataclass(frozen=True)
class Match:
    """One P-node entry: a full binding of the rule's tuple variables."""

    bindings: tuple[tuple[str, MemoryEntry], ...]   # (var, entry), sorted

    @classmethod
    def of(cls, parts: dict[str, MemoryEntry]) -> "Match":
        items = list(parts.items())
        if len(items) > 1:
            items.sort(key=_first)
        return cls(tuple(items))

    def entry(self, var: str) -> MemoryEntry:
        for name, entry in self.bindings:
            if name == var:
                return entry
        raise KeyError(var)

    def variables(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.bindings)

    def involves_tid(self, tid: TupleId) -> bool:
        return any(entry.tid == tid for _, entry in self.bindings)

    def extend(self, outer: Bindings) -> Bindings:
        """Bind every variable of this match on top of ``outer``."""
        bound = outer.child()
        for var, entry in self.bindings:
            bound.current[var] = entry.values
            bound.tids[var] = entry.tid
            if entry.old_values is not None:
                bound.previous[var] = entry.old_values
        return bound


def _first(pair):
    return pair[0]


class PNode:
    """The temporary relation of matches for one rule."""

    #: engine counter registry (``pnode.*``); the owning network replaces
    #: the shared disabled default with the Database's registry
    stats = NULL_STATS

    def __init__(self, rule_name: str, variables: list[str]):
        self.rule_name = rule_name
        self.variables = list(variables)
        self._matches: dict[tuple, Match] = {}
        #: monotonically increasing stamp of the last insertion; the
        #: agenda uses it for OPS5-style recency ordering
        self.last_insert_stamp = 0

    # ------------------------------------------------------------------

    def insert(self, match: Match, stamp: int = 0) -> bool:
        """Add a match; returns False if an identical binding existed.

        Callers own the ``pnode.inserts`` counter (batched routing
        aggregates it per batch); this method stays bump-free so the hot
        path pays nothing per match.
        """
        bindings = match.bindings
        if len(bindings) == 1:
            key: tuple = (bindings[0][1].tid,)
        else:
            key = tuple(entry.tid for _, entry in bindings)
        existing = self._matches.get(key)
        if existing is not None and existing == match:
            return False
        self._matches[key] = match
        if stamp > self.last_insert_stamp:
            self.last_insert_stamp = stamp
        return True

    def delete_by_tid(self, tid: TupleId) -> int:
        """Remove every match involving a tuple id (a − or Δ− arrived for
        it); returns the number removed."""
        doomed = [key for key, match in self._matches.items()
                  if match.involves_tid(tid)]
        for key in doomed:
            del self._matches[key]
        if doomed and self.stats.enabled:
            self.stats.bump("pnode.deletes", len(doomed))
        return len(doomed)

    def matches(self) -> list[Match]:
        return list(self._matches.values())

    def snapshot(self) -> dict:
        """The current matches, as an opaque value for :meth:`restore`."""
        return dict(self._matches)

    def restore(self, snap: dict) -> None:
        """Reset the P-node to a :meth:`snapshot` state (transaction
        abort: token replay restores α-memories exactly, but cannot know
        which matches had already been consumed by firings before the
        transaction began — the snapshot can)."""
        self._matches = dict(snap)

    def take_all(self) -> list[Match]:
        """Consume the whole P-node (set-oriented rule firing)."""
        out = list(self._matches.values())
        self._matches.clear()
        return out

    def clear(self) -> None:
        self._matches.clear()

    def __len__(self) -> int:
        return len(self._matches)

    def __bool__(self) -> bool:
        return bool(self._matches)

    def __repr__(self) -> str:
        return f"PNode({self.rule_name}, {len(self)} matches)"


class FrozenMatches:
    """A consumed set of matches, presented with the P-node interface the
    :class:`~repro.planner.plans.PnodeScan` operator expects.

    Rule actions run against the matches consumed at fire time, not the
    live P-node, so an action's own updates cannot re-trigger binding
    within the same firing.
    """

    def __init__(self, rule_name: str, variables: list[str],
                 matches: list[Match]):
        self.rule_name = rule_name
        self.variables = list(variables)
        self._matches = matches

    def matches(self) -> list[Match]:
        return self._matches

    def __len__(self) -> int:
        return len(self._matches)
