"""Compiled rules: the analyzed, network-ready form of ``define rule``.

A :class:`CompiledRule` is built from the rule's syntax tree once, at
definition time.  It splits the condition per the TREAT layout (selection
conjuncts per tuple variable, join conjuncts across variables), decides
each variable's α-memory *gating* (pattern / event / transition — paper
section 4.3.2), pre-compiles every predicate to a closure, and flattens
the action into its command list.  The discrimination networks and the
rule-action planner consume this structure; the raw syntax tree stays in
the rule catalog for display, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.catalog.catalog import Catalog
from repro.errors import RuleError
from repro.lang import ast_nodes as ast
from repro.lang.expr import (
    Bindings, attr_positions_of, compile_expr, previous_variables_of,
    variables_of)
from repro.lang.predicates import (
    SelectionAnalysis, analyze_selection, build_condition_graph, conjoin,
    equijoin_of_conjunct)


@dataclass
class JoinConjunct:
    """One multi-variable conjunct with its compiled form."""

    expr: ast.Expr
    variables: frozenset[str]
    evaluate: Callable[[Bindings], object]
    #: equi-join form when the conjunct is ``v1.a = v2.b`` (else None)
    equijoin: object | None = None


@dataclass
class VariableSpec:
    """Everything the network needs to know about one tuple variable."""

    var: str
    relation: str
    #: event gate: the rule's on-clause applies to this variable
    event: ast.EventSpec | None = None
    #: transition gate: the condition uses ``previous var.…``
    is_transition: bool = False
    #: the condition uses ``new(var)``: binds only to tuple values created
    #: during the current transition, so the memory is dynamic and never
    #: primed from existing data
    is_new: bool = False
    #: the rule has exactly one tuple variable (simple-α: matches pass
    #: straight to the P-node)
    is_simple: bool = False
    selection_conjuncts: list[ast.Expr] = field(default_factory=list)
    analysis: SelectionAnalysis | None = None
    #: compiled residual predicate (anchor excluded); None = always true
    residual: Callable[[Bindings], object] | None = None
    #: (current, previous) value positions the residual reads — the key
    #: projection for batch-level residual memoization; None when the
    #: residual exists but is not projectable (new()/aggregate/whole-tuple)
    residual_positions: tuple[tuple[int, ...], tuple[int, ...]] | None \
        = None
    #: compiled full selection predicate; None = always true
    full_selection: Callable[[Bindings], object] | None = None

    @property
    def is_dynamic(self) -> bool:
        """Dynamic memories are flushed after each transition's rule
        processing (event-, transition- and new()-gated nodes, paper
        §4.3.2)."""
        return self.event is not None or self.is_transition or self.is_new

    def selection_matches(self, values: tuple,
                          old_values: tuple | None) -> bool:
        """Does a tuple value satisfy this variable's full selection
        predicate?  (Used when priming and by virtual-memory scans.)"""
        if self.full_selection is None:
            return True
        bindings = Bindings(
            current={self.var: values},
            previous={self.var: old_values} if old_values is not None
            else {})
        try:
            return self.full_selection(bindings) is True
        except KeyError:
            # previous reference with no transition pair available
            return False

    def residual_matches(self, values: tuple,
                         old_values: tuple | None) -> bool:
        """Does a tuple value satisfy the residual (non-anchor) part?"""
        if self.residual is None:
            return True
        bindings = Bindings(
            current={self.var: values},
            previous={self.var: old_values} if old_values is not None
            else {})
        try:
            return self.residual(bindings) is True
        except KeyError:
            return False


@dataclass
class ActionCommand:
    """One command of the rule action with its shared-variable info."""

    command: ast.Command
    #: condition variables this command references (bound via P-node)
    shared_vars: frozenset[str]
    #: True when the command's replace/delete target is a shared variable
    #: (the paper's replace' / delete')
    targets_pnode: bool = False


class CompiledRule:
    """A rule ready for network construction and firing."""

    def __init__(self, definition: ast.DefineRule, catalog: Catalog):
        self.definition = definition
        self.name = definition.name
        self.ruleset = definition.ruleset
        self.priority = definition.priority
        self.event = definition.event
        self.condition = definition.condition

        scope: dict[str, str] = dict(
            getattr(definition, "condition_scope", {}) or {})
        variables = set(scope)
        if definition.condition is not None:
            variables |= variables_of(definition.condition)
        if definition.event is not None:
            variables.add(definition.event.relation)
        for item in definition.from_items:
            variables.add(item.var)
        missing = variables - set(scope)
        if missing:
            raise RuleError(
                f"rule {self.name!r}: unresolved variables "
                f"{sorted(missing)} (was the rule analyzed?)")
        self.variables: list[str] = sorted(variables)
        self.var_relations: dict[str, str] = {
            v: scope[v] for v in self.variables}
        self.referenced_relations: frozenset[str] = frozenset(
            self.var_relations.values())

        previous_vars = (previous_variables_of(definition.condition)
                         if definition.condition is not None else set())
        event_var = definition.event.relation if definition.event else None

        graph = build_condition_graph(definition.condition, self.variables)
        if any(compile_expr(c)(Bindings()) is not True
               for c in graph.constants):
            raise RuleError(
                f"rule {self.name!r}: condition contains a constant "
                f"conjunct that is not true")

        self.specs: dict[str, VariableSpec] = {}
        simple = len(self.variables) == 1
        for var in self.variables:
            conjuncts = graph.selections.get(var, [])
            analysis = analyze_selection(conjuncts, var)
            if analysis.unsatisfiable:
                raise RuleError(
                    f"rule {self.name!r}: selection on {var!r} is "
                    f"unsatisfiable")
            full = conjoin(conjuncts)
            spec = VariableSpec(
                var=var,
                relation=self.var_relations[var],
                event=definition.event if var == event_var else None,
                is_transition=var in previous_vars,
                is_new=any(isinstance(c, ast.NewCall) and c.var == var
                           for c in conjuncts),
                is_simple=simple,
                selection_conjuncts=conjuncts,
                analysis=analysis,
                residual=(compile_expr(analysis.residual)
                          if analysis.residual is not None else None),
                residual_positions=(
                    attr_positions_of(analysis.residual, var)
                    if analysis.residual is not None else None),
                full_selection=(compile_expr(full)
                                if full is not None else None),
            )
            self.specs[var] = spec

        self.joins: list[JoinConjunct] = [
            JoinConjunct(expr=j, variables=frozenset(variables_of(j)),
                         evaluate=compile_expr(j),
                         equijoin=equijoin_of_conjunct(j))
            for j in graph.joins]
        #: equi-join adjacency: var -> [(other var, attr, position)] for
        #: every equi-join conjunct touching it — the join planner's
        #: "reachable through a bound equi-join" lookup
        self.equijoins_by_var: dict[str, list[tuple[str, str, int]]] = {}
        for conjunct in self.joins:
            equi = conjunct.equijoin
            if equi is None:
                continue
            self.equijoins_by_var.setdefault(equi.left_var, []).append(
                (equi.right_var, equi.left_attr, equi.left_position))
            self.equijoins_by_var.setdefault(equi.right_var, []).append(
                (equi.left_var, equi.right_attr, equi.right_position))

        self.actions: list[ActionCommand] = self._compile_actions()
        self._validate_previous_in_actions()

    # ------------------------------------------------------------------

    @property
    def has_dynamic_variable(self) -> bool:
        """True when any variable is event- or transition-gated; such a
        rule's P-node is flushed after each transition's processing."""
        return any(s.is_dynamic for s in self.specs.values())

    @property
    def dynamic_variables(self) -> list[str]:
        return [v for v in self.variables if self.specs[v].is_dynamic]

    def shared_vars_of(self, command: ast.Command) -> frozenset[str]:
        """Condition variables referenced by an action command."""
        used: set[str] = set()
        if isinstance(command, (ast.Append, ast.Retrieve)):
            for col in (command.targets if isinstance(command, ast.Append)
                        else command.targets):
                used |= variables_of(col.expr)
        if isinstance(command, ast.Replace):
            for col in command.assignments:
                used |= variables_of(col.expr)
        if isinstance(command, (ast.Delete, ast.Replace)):
            used.add(command.target_var)
        if getattr(command, "where", None) is not None:
            used |= variables_of(command.where)
        return frozenset(used) & frozenset(self.variables)

    def join_order_from(self, seed_var: str) -> list[str]:
        """The *static* join order: the remaining variables, preferring
        ones connected by a join conjunct to the already bound set
        (avoiding cartesian intermediate results).  The baseline the
        cost-driven :class:`~repro.core.join_planner.JoinPlanner`
        replaces on the seek hot path — and its fallback."""
        bound = {seed_var}
        order: list[str] = []
        remaining = [v for v in self.variables if v != seed_var]
        while remaining:
            connected = [
                v for v in remaining
                if any(j.variables & bound and v in j.variables
                       for j in self.joins)]
            pick = connected[0] if connected else remaining[0]
            remaining.remove(pick)
            bound.add(pick)
            order.append(pick)
        return order

    def applicable_joins(self, bound: set[str]) -> list[JoinConjunct]:
        """Join conjuncts fully evaluable over the bound variables."""
        return [j for j in self.joins if j.variables <= bound]

    def __repr__(self) -> str:
        return (f"CompiledRule({self.name!r}, vars={self.variables}, "
                f"priority={self.priority})")

    # ------------------------------------------------------------------

    def _compile_actions(self) -> list[ActionCommand]:
        action = self.definition.action
        commands = (action.commands if isinstance(action, ast.Block)
                    else [action])
        out: list[ActionCommand] = []
        for command in commands:
            if isinstance(command, ast.Halt):
                out.append(ActionCommand(command, frozenset()))
                continue
            shared = self.shared_vars_of(command)
            targets_pnode = (
                isinstance(command, (ast.Delete, ast.Replace))
                and command.target_var in self.variables)
            out.append(ActionCommand(command, shared, targets_pnode))
        return out

    def _validate_previous_in_actions(self) -> None:
        """``previous v`` in an action needs v to carry transition pairs:
        v must be transition-gated or bound by a replace event."""
        for entry in self.actions:
            if isinstance(entry.command, ast.Halt):
                continue
            prev_vars: set[str] = set()
            command = entry.command
            for col in getattr(command, "targets", []) or []:
                prev_vars |= previous_variables_of(col.expr)
            for col in getattr(command, "assignments", []) or []:
                prev_vars |= previous_variables_of(col.expr)
            if getattr(command, "where", None) is not None:
                prev_vars |= previous_variables_of(command.where)
            for var in prev_vars:
                spec = self.specs.get(var)
                ok = spec is not None and (
                    spec.is_transition
                    or (spec.event is not None
                        and spec.event.kind is ast.EventKind.REPLACE))
                if not ok:
                    raise RuleError(
                        f"rule {self.name!r}: action references "
                        f"previous {var}.… but {var!r} carries no "
                        f"transition pair (use previous in the condition "
                        f"or an on replace event)")
