"""TREAT and A-TREAT: join condition testing without β state.

TREAT (Miranker) keeps only α-memories: when a token enters a rule's
α-memory, the network immediately joins it against the rule's other
α-memories to find the new complete combinations, which go straight to
the P-node.  Negative tokens simply delete from the α-memory and from the
P-node — no β-memory maintenance at all.

**A-TREAT** is this class with virtual α-memories enabled (the default
``virtual_policy="auto"``): a virtual node stores no tuples, and the join
step scans its base relation with the node's selection predicate as a
filter — sharpened, when a bound equi-join conjunct allows, by
substituting the token's constant and probing an index (paper §4.2).

Self-join multiplicity (the paper's ProcessedMemories structure): a token
matching several α-memories of one rule is handed to them in a fixed
order.  Stored memories get sequential semantics for free — the token is
not yet in the memories processed later.  Virtual memories answer from
the base relation, where the mutation is already visible to *all* nodes
at once, so while seeking from memory i the token's own tuple is excluded
from any *not-yet-processed* virtual memory of the same rule.  The result
is exactly the paper's invariant: "at every step, a virtual α-memory node
implicitly contains exactly the same set of tokens as a stored α-memory
node", so "if a token joins to itself, it does so exactly the right
number of times".
"""

from __future__ import annotations

from repro.core.alpha import MemoryEntry
from repro.core.network import DiscriminationNetwork
from repro.core.pnode import Match
from repro.core.rules import CompiledRule, VariableSpec
from repro.core.tokens import Token
from repro.lang.expr import Bindings


class TreatNetwork(DiscriminationNetwork):
    """The A-TREAT network (plain TREAT with ``virtual_policy="never"``)."""

    network_name = "A-TREAT"

    def _handle_insert(self, rule: CompiledRule, spec: VariableSpec,
                       memory, entry: MemoryEntry,
                       pending_vars: set[str], token: Token) -> None:
        if not memory.is_virtual:
            if not memory.insert(entry):
                return        # identical entry already present: no-op
        if len(rule.variables) == 1:
            return            # single-variable rules are simple-α routed
        self._seek(rule, spec.var, entry, pending_vars, token)

    # ------------------------------------------------------------------
    # the TREAT join step
    # ------------------------------------------------------------------

    def _seek(self, rule: CompiledRule, seed_var: str,
              seed_entry: MemoryEntry, pending_vars: set[str],
              token: Token) -> None:
        """Find every new complete combination seeded by one entry.

        The planner picks the algorithm per (rule, seed): the pairwise
        probe chain of :meth:`_extend` (the default), or the leapfrog
        triejoin for cyclic/many-variable conditions.  Both advance the
        stamp once per complete combination, so agenda recency cannot
        tell them apart.
        """
        stats = self.stats
        if stats.enabled:
            counters = stats.counters
            counters["joins.seeks"] = counters.get("joins.seeks", 0) + 1
        mode, payload = self.join_planner.seek_plan(rule, seed_var)
        if mode == "multiway":
            if self._run_multiway(rule, payload, seed_entry,
                                  pending_vars, token):
                self.on_match(rule)
            return
        order = payload
        partial: dict[str, MemoryEntry] = {seed_var: seed_entry}
        bindings = Bindings()
        self._bind(bindings, seed_var, seed_entry)
        matched = self._extend(rule, order, 0, partial, bindings,
                               pending_vars, token)
        if matched:
            self.on_match(rule)

    def _extend(self, rule: CompiledRule, order: list[str], depth: int,
                partial: dict[str, MemoryEntry], bindings: Bindings,
                pending_vars: set[str], token: Token) -> bool:
        if depth == len(order):
            self._stamp += 1
            if not self._pnodes[rule.name].insert(
                    Match.of(dict(partial)), self._stamp):
                return False
            self._note_pnode_insert()
            return True
        var = order[depth]
        bound = set(partial) | {var}
        conjuncts = [j for j in rule.joins
                     if j.variables <= bound
                     and not j.variables <= set(partial)]
        memory = self._memories[(rule.name, var)]
        candidates, enforced = self._join_candidates(
            memory, var, partial, conjuncts, pending_vars, token)
        if enforced is not None:
            # the access path (index probe / sharpened scan) already
            # guarantees the probed conjunct: evaluate only the residue
            conjuncts = [j for j in conjuncts if j is not enforced]
        matched = False
        for entry in candidates:
            self._bind(bindings, var, entry)
            if all(j.evaluate(bindings) is True for j in conjuncts):
                partial[var] = entry
                if self._extend(rule, order, depth + 1, partial, bindings,
                                pending_vars, token):
                    matched = True
                del partial[var]
            self._unbind(bindings, var, entry)
        return matched

    # ------------------------------------------------------------------

    @staticmethod
    def _bind(bindings: Bindings, var: str, entry: MemoryEntry) -> None:
        bindings.current[var] = entry.values
        if entry.old_values is not None:
            bindings.previous[var] = entry.old_values

    @staticmethod
    def _unbind(bindings: Bindings, var: str, entry: MemoryEntry) -> None:
        bindings.current.pop(var, None)
        bindings.previous.pop(var, None)
