"""The rule action planner: query modification and plan construction.

At rule definition time, :func:`modified_action_text` performs the
visible part of query modification (paper section 5.1): every reference
to a tuple variable shared between condition and action is rewritten to
range over the P-node (``V.attr → P.V.attr``) and ``replace``/``delete``
commands targeting a shared variable become ``replace'``/``delete'`` —
the primed forms that locate their targets by the tuple identifiers
stored in the P-node.  The rewritten text is what the rule catalog
displays, matching the paper's Figure 7.

At rule *fire* time, :class:`ActionPlanner` builds an execution plan for
each action command: commands referencing shared variables are planned
with a :class:`~repro.planner.plans.PnodeScan` seed binding all of them
at once, and "the rest of the query plan is constructed as usual by the
query optimizer" (section 5.2 / Figure 8).  The default strategy is the
paper's **always reoptimize** — plans are rebuilt at every firing;
``cache_plans=True`` gives the pre-planning alternative of section 5.3
for the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.core.pnode import FrozenMatches, Match
from repro.core.rules import ActionCommand, CompiledRule
from repro.lang import ast_nodes as ast
from repro.lang.ast_nodes import deparse
from repro.planner.optimizer import Optimizer, PlannedCommand
from repro.planner.plans import PnodeScan


@dataclass
class PlannedAction:
    """One action command ready to execute, or a halt marker."""

    planned: PlannedCommand | None     # None for halt
    is_halt: bool = False


class _MatchesHolder:
    """A stable P-node facade whose matches are swapped per firing.

    Cached plans keep a PnodeScan over this holder; re-binding the
    consumed matches here lets the same plan object serve every firing.
    """

    def __init__(self, rule_name: str, variables: list[str]):
        self.rule_name = rule_name
        self.variables = list(variables)
        self._matches: list[Match] = []

    def set(self, matches: list[Match]) -> None:
        self._matches = matches

    def matches(self) -> list[Match]:
        return self._matches

    def __len__(self) -> int:
        return len(self._matches)


class ActionPlanner:
    """Builds execution plans for rule actions at fire time."""

    def __init__(self, catalog: Catalog, optimizer: Optimizer,
                 cache_plans: bool = False):
        self.catalog = catalog
        self.optimizer = optimizer
        self.cache_plans = cache_plans
        self._holders: dict[str, _MatchesHolder] = {}
        #: (rule, command index) -> (plan, catalog version it was built at)
        self._cache: dict[tuple[str, int], tuple[PlannedAction, int]] = {}
        #: diagnostics: how many times the optimizer ran for actions
        self.plans_built = 0

    def plan_firing(self, rule: CompiledRule,
                    matches: FrozenMatches) -> list[PlannedAction]:
        """Plans for every command of the rule action, bound to the
        matches consumed by this firing.

        Cached plans carry the catalog version they were built against
        and are rebuilt lazily whenever the schema has changed since —
        the same invalidation mechanism the prepared-statement cache
        uses, so no caller needs to notify the planner of DDL.
        """
        holder = self._holders.get(rule.name)
        if holder is None:
            holder = _MatchesHolder(rule.name, rule.variables)
            self._holders[rule.name] = holder
        holder.set(matches.matches())
        version = self.catalog.version
        out: list[PlannedAction] = []
        for i, entry in enumerate(rule.actions):
            key = (rule.name, i)
            if self.cache_plans:
                cached = self._cache.get(key)
                if cached is not None and cached[1] == version:
                    out.append(cached[0])
                    continue
            planned = self._plan_one(rule, entry, holder, len(matches))
            if self.cache_plans:
                self._cache[key] = (planned, version)
            out.append(planned)
        return out

    def invalidate(self, rule_name: str | None = None) -> None:
        """Drop cached plans explicitly.

        Version tracking already invalidates stale plans lazily; this
        remains for callers that drop a rule and want its entries gone.
        """
        if rule_name is None:
            self._cache.clear()
            return
        for key in [k for k in self._cache if k[0] == rule_name]:
            del self._cache[key]

    # ------------------------------------------------------------------

    def _plan_one(self, rule: CompiledRule, entry: ActionCommand,
                  holder: _MatchesHolder, match_count: int
                  ) -> PlannedAction:
        if isinstance(entry.command, ast.Halt):
            return PlannedAction(None, is_halt=True)
        self.plans_built += 1
        if entry.shared_vars:
            seed = PnodeScan(holder)
            planned = self.optimizer.plan_command(
                entry.command, seed=seed,
                seed_rows=float(max(match_count, 1)))
        else:
            planned = self.optimizer.plan_command(entry.command)
        return PlannedAction(planned)


# ----------------------------------------------------------------------
# query modification display (paper Figures 6 and 7)
# ----------------------------------------------------------------------

def modified_action_text(rule: CompiledRule) -> str:
    """The rule action after query modification, as the paper displays it:
    shared variable references become ``P.var.attr`` and commands whose
    target is shared become ``replace'`` / ``delete'``."""
    lines = [_modified_command(rule, entry) for entry in rule.actions]
    if len(lines) == 1:
        return lines[0]
    inner = "\n".join("    " + line for line in lines)
    return f"do\n{inner}\nend"


def _modified_command(rule: CompiledRule, entry: ActionCommand) -> str:
    command = entry.command
    shared = entry.shared_vars
    if isinstance(command, ast.Halt):
        return "halt"
    if isinstance(command, ast.Append):
        targets = _render_targets(command.targets, shared)
        text = f"append to {command.relation} ({targets})"
        return text + _render_tail(command, shared)
    if isinstance(command, ast.Delete):
        name = "delete'" if entry.targets_pnode else "delete"
        target = _qualify_var(command.target_var, shared)
        return f"{name} {target}" + _render_tail(command, shared)
    if isinstance(command, ast.Replace):
        name = "replace'" if entry.targets_pnode else "replace"
        target = _qualify_var(command.target_var, shared)
        assignments = _render_targets(command.assignments, shared)
        return (f"{name} {target} ({assignments})"
                + _render_tail(command, shared))
    if isinstance(command, ast.Retrieve):
        targets = _render_targets(command.targets, shared)
        into = f" into {command.into}" if command.into else ""
        return f"retrieve{into} ({targets})" + _render_tail(command,
                                                            shared)
    return deparse(command)


def _qualify_var(var: str, shared: frozenset[str]) -> str:
    return f"P.{var}" if var in shared else var


def _render_targets(columns, shared: frozenset[str]) -> str:
    parts = []
    for col in columns:
        text = _render_expr(col.expr, shared)
        parts.append(f"{col.name} = {text}" if col.name else text)
    return ", ".join(parts)


def _render_tail(command, shared: frozenset[str]) -> str:
    text = ""
    if command.from_items:
        items = ", ".join(f"{f.var} in {f.relation}"
                          for f in command.from_items)
        text += f" from {items}"
    if command.where is not None:
        text += f" where {_render_expr(command.where, shared)}"
    return text


def _render_expr(expr: ast.Expr, shared: frozenset[str]) -> str:
    if isinstance(expr, ast.AttrRef):
        prefix = "previous " if expr.previous else ""
        var = _qualify_var(expr.var, shared)
        return f"{prefix}{var}.{expr.attr}"
    if isinstance(expr, ast.AllRef):
        return f"{_qualify_var(expr.var, shared)}.all"
    if isinstance(expr, ast.BinOp):
        left = _render_operand(expr.left, expr.op, shared, is_right=False)
        right = _render_operand(expr.right, expr.op, shared,
                                is_right=True)
        return f"{left} {expr.op} {right}"
    if isinstance(expr, ast.UnaryOp):
        operand = _render_expr(expr.operand, shared)
        if isinstance(expr.operand, ast.BinOp):
            operand = f"({operand})"
        return (f"not {operand}" if expr.op == "not"
                else f"{expr.op}{operand}")
    return deparse(expr)


_PRECEDENCE = {
    "or": 1, "and": 2,
    "=": 3, "!=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3,
    "+": 4, "-": 4, "*": 5, "/": 5,
}


def _render_operand(child: ast.Expr, parent_op: str,
                    shared: frozenset[str], is_right: bool) -> str:
    text = _render_expr(child, shared)
    if not isinstance(child, ast.BinOp):
        return text
    child_prec = _PRECEDENCE[child.op]
    parent_prec = _PRECEDENCE[parent_op]
    if child_prec < parent_prec or (child_prec == parent_prec
                                    and is_right):
        return f"({text})"
    return text
