"""Engine observability: counters, trace hooks, and stats snapshots.

The paper's evaluation (Figures 9-11) rests on per-layer cost
attribution — token testing vs. priming vs. installation — and this
module is what lets our engine report the same decomposition at
runtime:

* :class:`EngineStats` — a process-wide counter registry threaded
  through the hot paths (selection-index probes, α-memory maintenance,
  join probes, virtual-memory scans, P-node transitions, agenda
  selections, rule firings, cache hit rates).  Counters are plain dict
  bumps guarded by one attribute check, cheap enough to leave on in
  production and off-able wholesale (``stats.enabled = False``).
* :class:`TraceHub` — a callback registry for discrete engine events
  (``rule_fired``, ``token_routed``, ``plan_executed``), exposed as
  ``Database.on_event``.  Emission is gated per event type so an idle
  hub costs one dict lookup.

Counter taxonomy (dotted names, grouped by layer — see
docs/ARCHITECTURE.md, "Observing the engine"):

=====================  ==================================================
``selection.*``        top-level predicate index (probes, stab memo hits)
``alpha.*``            α-memory maintenance and join-index probes
``virtual.*``          virtual α-memory base-relation scans
``pnode.*``            P-node match insertions / retractions
``agenda.*``           conflict-resolution selections and stale pruning
``rules.*``            firings, matches consumed, cascade depth
``tokens.*``           tokens routed, batches propagated
``shard.*``            sharded propagation (batches sharded, live
                       shards dispatched, residual offload calls)
``joins.*``            seek planning (orders planned / cache hits,
                       β chains planned, unindexed equality probes)
                       and the multiway join step (multiway plans
                       chosen, cost/shape fallbacks to pairwise,
                       multiway seeks run, leapfrog iterator seeks)
``memory.*``           feedback-driven α-memory adaptation (runs, flips)
``stmt_cache.*``       transparent statement-cache hits / misses
``plan_cache.*``       prepared-statement executions / replans
``actions.*``          rule-action plans built
``plans.*``            top-level command plans executed
``wal.*``              write-ahead log records / fsyncs / retries /
                       checkpoints
``recovery.*``         WAL records replayed by ``Database.recover``
``faults.*``           injected faults (see :mod:`repro.faults`)
``serve.*``            the concurrent serving layer (sessions opened /
                       closed, snapshot reads, serialized writes,
                       deferred ops, transaction denials)
=====================  ==================================================

Counter bumps are read-modify-write and therefore not atomic across
threads.  Every engine-internal bump happens on the thread driving the
transition (serialized by the serving layer's write queue); the
serving layer's own concurrent reader threads bump only ``serve.*``
keys, under the service's read lock.
"""

from __future__ import annotations

import json
from typing import Callable

#: event types :class:`TraceHub` recognises
TRACE_EVENTS = ("rule_fired", "token_routed", "plan_executed")


class EngineStats:
    """A registry of named monotonic counters.

    Hot paths bump entries of :attr:`counters` directly after checking
    :attr:`enabled` — the pattern is::

        stats = self.stats
        if stats.enabled:
            stats.counters["alpha.inserts"] = \\
                stats.counters.get("alpha.inserts", 0) + 1

    which costs one attribute load, one branch, and one dict store per
    event; cool paths use :meth:`bump`.  Disabling stops collection
    without detaching the registry from the components that hold it.
    """

    __slots__ = ("enabled", "counters")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.counters: dict[str, int] = {}

    # ------------------------------------------------------------------

    def bump(self, key: str, n: int = 1) -> None:
        """Add ``n`` to one counter (no-op while disabled)."""
        if self.enabled:
            counters = self.counters
            counters[key] = counters.get(key, 0) + n

    def note_tokens_routed(self, n: int = 1, batches: int = 0) -> None:
        """Count routed tokens (and, optionally, a propagated batch).

        The single bookkeeping point shared by the per-token, batched,
        and sharded propagation paths, so all three count identically
        (a no-op while disabled).
        """
        if self.enabled:
            counters = self.counters
            counters["tokens.routed"] = \
                counters.get("tokens.routed", 0) + n
            if batches:
                counters["tokens.batches"] = \
                    counters.get("tokens.batches", 0) + batches

    def merge_counts(self, mapping: dict[str, int]) -> None:
        """Fold a worker's local counter dict into this registry.

        The sharded match phase gives each worker a private
        :class:`EngineStats` (no locks on the hot path) and merges the
        sums here at the transition boundary; addition commutes, so
        the merged totals are independent of worker completion order.
        """
        if self.enabled and mapping:
            counters = self.counters
            for key, value in mapping.items():
                counters[key] = counters.get(key, 0) + value

    def observe_max(self, key: str, value: int) -> None:
        """Track a high-water mark (e.g. deepest rule cascade seen)."""
        if self.enabled:
            counters = self.counters
            if value > counters.get(key, 0):
                counters[key] = value

    def get(self, key: str) -> int:
        return self.counters.get(key, 0)

    def reset(self) -> None:
        """Zero every counter (collection state is unaffected)."""
        self.counters.clear()

    # ------------------------------------------------------------------

    def snapshot(self) -> dict[str, int]:
        """The counters as a sorted plain dict (safe to mutate)."""
        return dict(sorted(self.counters.items()))

    def to_json(self, **extra) -> str:
        """A JSON snapshot of the counters, with optional extra fields
        (the benchmarks attach workload metadata this way)."""
        payload: dict = {"counters": self.snapshot()}
        payload.update(extra)
        return json.dumps(payload, indent=2, sort_keys=True)

    def hit_rate(self, hits_key: str, misses_key: str) -> float | None:
        """``hits / (hits + misses)`` for a cache counter pair, or None
        when the pair has recorded nothing."""
        hits = self.counters.get(hits_key, 0)
        misses = self.counters.get(misses_key, 0)
        total = hits + misses
        return hits / total if total else None

    def report(self) -> str:
        """Counters as an aligned text table (the CLI's ``\\stats``)."""
        items = sorted(self.counters.items())
        if not items:
            return "no counters recorded"
        width = max(len(k) for k, _ in items)
        return "\n".join(f"{k:<{width}}  {v}" for k, v in items)

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return f"EngineStats({state}, {len(self.counters)} counters)"


#: shared disabled registry: the default for components constructed
#: outside a Database, so hot paths never need a None check
NULL_STATS = EngineStats(enabled=False)


class TraceHub:
    """Callback registry for discrete engine events.

    Callbacks receive ``(event_type, payload_dict)``.  Emission sites
    guard with :meth:`wants` so an event with no listener costs one
    dict lookup and no payload construction.
    """

    def __init__(self):
        self._by_event: dict[str, dict[int, Callable]] = {}
        self._next_token = 0

    def on(self, callback: Callable[[str, dict], None],
           events=None) -> int:
        """Register ``callback`` for the given event types (all of
        :data:`TRACE_EVENTS` when None); returns a token for
        :meth:`off`."""
        if events is None:
            events = TRACE_EVENTS
        elif isinstance(events, str):
            events = (events,)
        unknown = [e for e in events if e not in TRACE_EVENTS]
        if unknown:
            raise ValueError(
                f"unknown trace event(s) {unknown}; expected a subset "
                f"of {list(TRACE_EVENTS)}")
        self._next_token += 1
        token = self._next_token
        for event in events:
            self._by_event.setdefault(event, {})[token] = callback
        return token

    def off(self, token: int) -> bool:
        """Unregister a callback; True if anything was removed."""
        removed = False
        for listeners in self._by_event.values():
            if listeners.pop(token, None) is not None:
                removed = True
        return removed

    def wants(self, event: str) -> bool:
        """Does any callback listen for this event type?"""
        return bool(self._by_event.get(event))

    def emit(self, event: str, payload: dict) -> None:
        """Deliver one event to its listeners (caller checked
        :meth:`wants`, or accepts the lookup cost)."""
        listeners = self._by_event.get(event)
        if not listeners:
            return
        for callback in list(listeners.values()):
            callback(event, payload)

    def __len__(self) -> int:
        return len({token for listeners in self._by_event.values()
                    for token in listeners})
