"""An interactive Ariel shell.

Run with ``python -m repro`` (optionally passing script files to execute
first).  Commands are the POSTQUEL/ARL language; backslash meta-commands
inspect the system:

=============  ====================================================
``\\d``         list relations (or ``\\d name`` for one schema)
``\\rules``     list rules and network statistics
``\\rule name`` describe one rule's network and modified action
``\\plan name`` show one rule's adaptive join plan: per-memory
               stored/virtual decision, join-index set, probe
               feedback, and the seek order from every seed —
               multiway (leapfrog) plans print the trie level
               sequence with each participant's iterator source
``\\explain q`` show the plan for a data command; ``\\explain analyze
               q`` executes it and annotates every operator with rows,
               loops and wall time
``\\begin`` / ``\\commit`` / ``\\abort``  transaction control
``\\net``       network diagnostics
``\\stats``     engine counters (``\\stats reset`` clears them)
``\\trace``     the last rule firings; ``\\trace on|off`` toggles a
               live printout of every firing as it happens
``\\timing``    toggle per-command wall-clock reporting (``on|off``)
``\\prepare``   ``\\prepare <name> <stmt>`` — prepare a parameterized
               statement under a session name
``\\exec``      ``\\exec <name> [k=v ...]`` — run a prepared statement
               (positional literals fill ``$1``-style parameters)
``\\dump file`` write the database as an ARL script
``\\load file`` replace the session database from a dump (the current
               database is kept if the load fails)
``\\wal``       durability status: WAL path, generation, record count,
               fsync policy, degraded state
``\\workers``   sharded-propagation pool: ``\\workers`` inspects it,
               ``\\workers N [thread|process]`` resizes it (0 =
               serial)
``\\serve``     concurrent serving: ``\\serve [host[:port]]`` exposes
               the session database over TCP (``\\serve status``
               inspects it, ``\\serve stop`` shuts it down)
``\\checkpoint``  force a checkpoint (durable databases only)
``\\q``         quit
=============  ====================================================

Multi-line input is supported: a command is executed when its line ends
with ``;`` or when the line is blank; ``do … end`` blocks are gathered
until ``end``.
"""

from __future__ import annotations

import re
import sys
import time

from repro.core.introspect import (
    describe_join_plan, describe_rule, network_summary)
from repro.db import Database
from repro.errors import ArielError
from repro.executor.executor import DmlResult, ResultSet
from repro.lang.lexer import tokenize
from repro.prepared import Prepared

PROMPT = "ariel> "
CONTINUE_PROMPT = "....> "

_BANNER = """\
Ariel reproduction shell — POSTQUEL + ARL.  \\q quits, \\d lists
relations, \\rules lists rules, \\rule <name> describes one.
End a command with ';' or a blank line."""


class Shell:
    """Line-oriented REPL over a Database."""

    def __init__(self, db: Database | None = None,
                 out=sys.stdout):
        self.db = db or Database()
        self.out = out
        self._buffer: list[str] = []
        self._timing = False
        self._prepared: dict[str, Prepared] = {}
        self._trace_token: int | None = None
        self._server = None         # RuleServer started by \serve

    # ------------------------------------------------------------------

    def run(self, stdin=None) -> None:
        if stdin is None:
            stdin = sys.stdin       # bound at call time, not import time
        self._print(_BANNER)
        while True:
            prompt = CONTINUE_PROMPT if self._buffer else PROMPT
            self.out.write(prompt)
            self.out.flush()
            line = stdin.readline()
            if not line:
                break
            if not self.feed(line.rstrip("\n")):
                break
        self._stop_server()

    def feed(self, line: str) -> bool:
        """Process one input line; returns False to quit."""
        stripped = line.strip()
        if not self._buffer and stripped.startswith("\\"):
            return self._meta(stripped)
        if not stripped:
            if self._buffer:
                self._execute("\n".join(self._buffer))
                self._buffer.clear()
            return True
        self._buffer.append(line)
        if self._complete(stripped):
            self._execute("\n".join(self._buffer))
            self._buffer.clear()
        return True

    def _complete(self, last_line: str) -> bool:
        """Ready to execute?  A command ends with ';' (or a blank line,
        handled by the caller), but never inside an open do … end."""
        words = re.findall(r"\b(?:do|end)\b",
                           " ".join(self._buffer).lower())
        if words.count("do") > words.count("end"):
            return False
        return last_line.endswith(";")

    # ------------------------------------------------------------------

    def _execute(self, text: str) -> None:
        text = text.strip().rstrip(";").strip()
        if not text:
            return
        started = time.perf_counter()
        try:
            result = self.db.execute(text)
        except ArielError as exc:
            self._print(f"error: {exc}")
            return
        elapsed = time.perf_counter() - started
        self._show_result(result)
        if self._timing:
            self._print(f"Time: {elapsed * 1000.0:.3f} ms")

    def _show_result(self, result) -> None:
        if isinstance(result, ResultSet):
            self._print(str(result))
            self._print(f"({len(result)} row(s))")
        elif isinstance(result, DmlResult):
            self._print(f"ok: {result.count} tuple(s) affected; "
                        f"{self.db.firings} rule firing(s) so far")
        elif isinstance(result, str):
            # explain / explain analyze return their rendering
            self._print(result)
        else:
            self._print("ok")

    def _meta(self, line: str) -> bool:
        command, _, argument = line.partition(" ")
        argument = argument.strip()
        try:
            if command in ("\\q", "\\quit"):
                return False
            if command == "\\d":
                self._describe_relations(argument)
            elif command == "\\rules":
                self._print(network_summary(self.db.manager))
            elif command == "\\rule":
                if not argument:
                    self._print("usage: \\rule <name>")
                else:
                    self._print(describe_rule(self.db.manager, argument))
            elif command == "\\plan":
                if not argument:
                    self._print("usage: \\plan <rule>")
                else:
                    self._print(describe_join_plan(self.db.manager,
                                                   argument))
            elif command == "\\explain":
                if argument.startswith("analyze "):
                    self._print(self.db.explain(
                        argument[len("analyze "):], analyze=True))
                else:
                    self._print(self.db.explain(argument))
            elif command == "\\begin":
                self.db.begin()
                self._print("transaction open")
            elif command == "\\commit":
                self.db.commit()
                self._print("committed")
            elif command == "\\abort":
                self.db.abort()
                self._print("aborted")
            elif command == "\\net":
                network = self.db.network
                self._print(
                    f"network={network.network_name} "
                    f"tokens={network.tokens_processed} "
                    f"firings={self.db.firings} "
                    f"alpha-entries={network.memory_entry_count()}")
            elif command == "\\stats":
                if argument == "reset":
                    self.db.stats.reset()
                    self._print("counters reset")
                elif argument:
                    self._print("usage: \\stats [reset]")
                else:
                    self._print(self.db.stats.report())
            elif command == "\\trace":
                self._trace(argument)
            elif command == "\\timing":
                if argument not in ("", "on", "off"):
                    self._print("usage: \\timing [on|off]")
                else:
                    self._timing = (argument == "on" if argument
                                    else not self._timing)
                    state = "on" if self._timing else "off"
                    self._print(f"timing is {state}")
            elif command == "\\prepare":
                self._prepare(argument)
            elif command == "\\exec":
                self._exec(argument)
            elif command == "\\dump":
                if not argument:
                    self._print("usage: \\dump <file>")
                else:
                    from repro import persist
                    persist.dump(self.db, argument)
                    self._print(f"dumped to {argument}")
            elif command == "\\load":
                self._load(argument)
            elif command == "\\wal":
                self._wal_status()
            elif command == "\\workers":
                self._workers(argument)
            elif command == "\\serve":
                self._serve(argument)
            elif command == "\\checkpoint":
                self.db.checkpoint()
                self._print("checkpoint complete")
            else:
                self._print(f"unknown meta-command {command!r} "
                            f"(try \\d, \\rules, \\rule, \\plan, "
                            f"\\explain, \\begin, \\commit, \\abort, "
                            f"\\net, \\stats, \\trace, \\timing, "
                            f"\\prepare, \\exec, \\dump, \\load, "
                            f"\\wal, \\checkpoint, \\workers, "
                            f"\\serve, \\q)")
        except (ArielError, OSError, UnicodeError) as exc:
            self._print(f"error: {exc}")
        return True

    def _load(self, argument: str) -> None:
        """Replace the session database from a dump file.

        The dump loads into a *fresh* database first; the session swaps
        over only on success, so a malformed or unreadable file leaves
        the current database untouched.
        """
        if not argument:
            self._print("usage: \\load <file>")
            return
        from repro import persist
        try:
            loaded = persist.load(argument)
        except (ArielError, OSError, UnicodeError) as exc:
            self._print(f"error: could not load {argument}: {exc}")
            self._print("the session database is unchanged")
            return
        if self._server is not None:
            self._stop_server()
            self._print("rule server stopped (it served the old "
                        "database)")
        self.db = loaded
        # the trace registration died with the old database
        self._trace_token = None
        self._print(f"loaded {argument} (fresh database)")

    def _wal_status(self) -> None:
        info = self.db.wal_info()
        if info is None:
            self._print("database is in-memory (no durable path)")
            return
        self._print(f"durable path        {info['path']}")
        self._print(f"fsync policy        {info['fsync']}")
        self._print(f"wal generation      {info['generation']}")
        self._print(f"wal records         {info['records']}")
        self._print(f"pending entries     {info['pending']}")
        self._print(f"checkpoint every    {info['checkpoint_every']}")
        degraded = info["degraded"] or "no"
        self._print(f"degraded            {degraded}")

    def _workers(self, argument: str) -> None:
        """``\\workers [N [thread|process]]`` — inspect or resize the
        sharded-propagation worker pool."""
        if argument:
            parts = argument.split()
            try:
                count = int(parts[0])
            except ValueError:
                self._print(
                    "usage: \\workers [<count> [thread|process]]")
                return
            backend = parts[1] if len(parts) > 1 else None
            self.db.set_parallel_workers(count, backend=backend)
        info = self.db.parallel_info()
        if info is None:
            self._print("propagation is serial (workers=0)")
        else:
            self._print(f"workers={info['workers']} "
                        f"backend={info['backend']} "
                        f"min_batch={info['min_batch']}")

    def _serve(self, argument: str) -> None:
        """``\\serve [host[:port] | status | stop]`` — expose the
        session database to concurrent clients over TCP.

        While serving, shell commands and remote clients share one
        database: the shell's own mutations bypass the service's write
        queue, so quiesce the shell (or use only ``\\serve status``)
        when clients depend on the serialized ordering guarantee.
        """
        from repro.serve import RuleServer, RuleService
        if argument == "stop":
            if self._server is None:
                self._print("no rule server is running")
            else:
                self._stop_server()
                self._print("rule server stopped")
            return
        if argument == "status":
            if self._server is None:
                self._print("no rule server is running")
            else:
                host, port = self._server.address
                status = self._server.service.status()
                self._print(f"serving on {host}:{port}")
                self._print(f"sessions            {status['sessions']}")
                self._print(f"transaction owner   "
                            f"{status['transaction_owner']}")
                self._print(f"write queue depth   "
                            f"{status['queue_depth']}")
                self._print(f"serialized commands "
                            f"{status['serial_log_entries']}")
            return
        if self._server is not None:
            host, port = self._server.address
            self._print(f"already serving on {host}:{port} "
                        f"(\\serve stop to stop)")
            return
        host, port = "127.0.0.1", 0
        if argument:
            host, colon, port_text = argument.rpartition(":")
            if not colon:
                host, port_text = argument, ""
            if port_text:
                try:
                    port = int(port_text)
                except ValueError:
                    self._print("usage: \\serve [host[:port]"
                                " | status | stop]")
                    return
        server = RuleServer(RuleService(db=self.db), host=host,
                            port=port)
        try:
            host, port = server.start()
        except OSError as exc:
            self._print(f"error: could not bind: {exc}")
            return
        self._server = server
        self._print(f"serving the session database on {host}:{port} "
                    f"(\\serve status, \\serve stop)")

    def _stop_server(self) -> None:
        """Stop the \\serve server, if one is running (keeps self.db
        open — the shell still owns it)."""
        server, self._server = self._server, None
        if server is not None:
            server.stop(shutdown_service=True, close_db=False)

    def _trace(self, argument: str) -> None:
        if argument == "on":
            if self._trace_token is None:
                self._trace_token = self.db.on_event(
                    self._print_trace_event, "rule_fired")
            self._print("live rule-firing trace is on")
        elif argument == "off":
            if self._trace_token is not None:
                self.db.off_event(self._trace_token)
                self._trace_token = None
            self._print("live rule-firing trace is off")
        elif argument:
            self._print("usage: \\trace [on|off]")
        else:
            if not self.db.firing_log:
                self._print("no firings recorded")
            for record in self.db.firing_log[-20:]:
                self._print(str(record))

    def _print_trace_event(self, event: str, payload: dict) -> None:
        self._print(f"[{event}] #{payload['sequence']} "
                    f"{payload['rule']} (priority {payload['priority']}, "
                    f"{payload['matches']} match(es))")

    def _prepare(self, argument: str) -> None:
        name, _, statement = argument.partition(" ")
        statement = statement.strip()
        if not name or not statement:
            self._print("usage: \\prepare <name> <statement>")
            return
        prepared = self.db.prepare(statement)
        self._prepared[name] = prepared
        sig = ", ".join(f"${p}" for p in prepared.signature)
        self._print(f"prepared {name}({sig})")

    def _exec(self, argument: str) -> None:
        name, _, rest = argument.partition(" ")
        if not name:
            self._print("usage: \\exec <name> [param=value ...]")
            return
        prepared = self._prepared.get(name)
        if prepared is None:
            known = ", ".join(sorted(self._prepared)) or "none"
            self._print(f"no prepared statement {name!r} "
                        f"(prepared: {known})")
            return
        params = self._parse_exec_args(rest.strip(), prepared.signature)
        if params is None:
            return
        started = time.perf_counter()
        result = prepared.execute_with(params)
        elapsed = time.perf_counter() - started
        self._show_result(result)
        if self._timing:
            self._print(f"Time: {elapsed * 1000.0:.3f} ms")

    def _parse_exec_args(self, text: str,
                         signature: tuple[str, ...]
                         ) -> dict[str, object] | None:
        """``k=v`` pairs and/or bare literals (positional, filling the
        signature in order); values are ARL literals."""
        params: dict[str, object] = {}
        position = 0
        tokens = tokenize(text)
        i = 0

        def literal(j):
            """(ok, value, next_index) for a literal at tokens[j]."""
            token = tokens[j]
            if token.kind in ("number", "string"):
                return True, token.value, j + 1
            if token.kind == "keyword" and token.value in ("true", "false",
                                                           "null"):
                return True, {"true": True, "false": False,
                              "null": None}[token.value], j + 1
            if (token.kind, token.value) == ("op", "-") \
                    and tokens[j + 1].kind == "number":
                return True, -tokens[j + 1].value, j + 2
            return False, None, j

        while tokens[i].kind != "eof":
            token = tokens[i]
            if token.kind == "ident" \
                    and (tokens[i + 1].kind, tokens[i + 1].value) \
                    == ("op", "="):
                ok, value, i = literal(i + 2)
                if not ok:
                    self._print(f"bad value for parameter {token.value!r}")
                    return None
                params[str(token.value)] = value
            else:
                ok, value, i = literal(i)
                if not ok:
                    self._print(f"cannot parse argument near {token}")
                    return None
                if position >= len(signature):
                    self._print("too many positional arguments "
                                f"(statement takes {len(signature)})")
                    return None
                params[signature[position]] = value
                position += 1
        return params

    def _describe_relations(self, name: str) -> None:
        if name:
            relation = self.db.catalog.relation(name)
            self._print(f"{name} ({len(relation)} tuple(s))")
            for attr in relation.schema:
                self._print(f"  {attr.name:<20} {attr.type.value}")
            for index in relation.indexes():
                self._print(f"  index {index.name} on {index.attribute} "
                            f"using {index.kind}")
            return
        relations = sorted(self.db.catalog.relations(),
                           key=lambda r: r.name)
        if not relations:
            self._print("no relations")
            return
        for relation in relations:
            self._print(f"{relation.name:<24} {len(relation):>6} "
                        f"tuple(s), {len(relation.schema)} attribute(s)")

    def _print(self, text: str) -> None:
        self.out.write(text + "\n")


def main(argv: list[str] | None = None) -> int:
    """Entry point: run script files, then an interactive shell."""
    argv = list(sys.argv[1:] if argv is None else argv)
    db = Database()
    shell = Shell(db)
    for path in argv:
        try:
            with open(path) as handle:
                db.execute_script(handle.read())
            print(f"loaded {path}")
        except (OSError, ArielError) as exc:
            print(f"error loading {path}: {exc}", file=sys.stderr)
            return 1
    if sys.stdin is not None:
        shell.run()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
