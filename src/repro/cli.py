"""An interactive Ariel shell.

Run with ``python -m repro`` (optionally passing script files to execute
first).  Commands are the POSTQUEL/ARL language; backslash meta-commands
inspect the system:

=============  ====================================================
``\\d``         list relations (or ``\\d name`` for one schema)
``\\rules``     list rules and network statistics
``\\rule name`` describe one rule's network and modified action
``\\explain q`` show the plan for a data command
``\\begin`` / ``\\commit`` / ``\\abort``  transaction control
``\\net``       network diagnostics
``\\trace``     the last rule firings
``\\dump file`` write the database as an ARL script
``\\load file`` replace the session database from a dump
``\\q``         quit
=============  ====================================================

Multi-line input is supported: a command is executed when its line ends
with ``;`` or when the line is blank; ``do … end`` blocks are gathered
until ``end``.
"""

from __future__ import annotations

import re
import sys

from repro.core.introspect import describe_rule, network_summary
from repro.db import Database
from repro.errors import ArielError
from repro.executor.executor import DmlResult, ResultSet

PROMPT = "ariel> "
CONTINUE_PROMPT = "....> "

_BANNER = """\
Ariel reproduction shell — POSTQUEL + ARL.  \\q quits, \\d lists
relations, \\rules lists rules, \\rule <name> describes one.
End a command with ';' or a blank line."""


class Shell:
    """Line-oriented REPL over a Database."""

    def __init__(self, db: Database | None = None,
                 out=sys.stdout):
        self.db = db or Database()
        self.out = out
        self._buffer: list[str] = []

    # ------------------------------------------------------------------

    def run(self, stdin=None) -> None:
        if stdin is None:
            stdin = sys.stdin       # bound at call time, not import time
        self._print(_BANNER)
        while True:
            prompt = CONTINUE_PROMPT if self._buffer else PROMPT
            self.out.write(prompt)
            self.out.flush()
            line = stdin.readline()
            if not line:
                break
            if not self.feed(line.rstrip("\n")):
                break

    def feed(self, line: str) -> bool:
        """Process one input line; returns False to quit."""
        stripped = line.strip()
        if not self._buffer and stripped.startswith("\\"):
            return self._meta(stripped)
        if not stripped:
            if self._buffer:
                self._execute("\n".join(self._buffer))
                self._buffer.clear()
            return True
        self._buffer.append(line)
        if self._complete(stripped):
            self._execute("\n".join(self._buffer))
            self._buffer.clear()
        return True

    def _complete(self, last_line: str) -> bool:
        """Ready to execute?  A command ends with ';' (or a blank line,
        handled by the caller), but never inside an open do … end."""
        words = re.findall(r"\b(?:do|end)\b",
                           " ".join(self._buffer).lower())
        if words.count("do") > words.count("end"):
            return False
        return last_line.endswith(";")

    # ------------------------------------------------------------------

    def _execute(self, text: str) -> None:
        text = text.strip().rstrip(";").strip()
        if not text:
            return
        try:
            result = self.db.execute(text)
        except ArielError as exc:
            self._print(f"error: {exc}")
            return
        if isinstance(result, ResultSet):
            self._print(str(result))
            self._print(f"({len(result)} row(s))")
        elif isinstance(result, DmlResult):
            self._print(f"ok: {result.count} tuple(s) affected; "
                        f"{self.db.firings} rule firing(s) so far")
        else:
            self._print("ok")

    def _meta(self, line: str) -> bool:
        command, _, argument = line.partition(" ")
        argument = argument.strip()
        try:
            if command in ("\\q", "\\quit"):
                return False
            if command == "\\d":
                self._describe_relations(argument)
            elif command == "\\rules":
                self._print(network_summary(self.db.manager))
            elif command == "\\rule":
                if not argument:
                    self._print("usage: \\rule <name>")
                else:
                    self._print(describe_rule(self.db.manager, argument))
            elif command == "\\explain":
                self._print(self.db.explain(argument))
            elif command == "\\begin":
                self.db.begin()
                self._print("transaction open")
            elif command == "\\commit":
                self.db.commit()
                self._print("committed")
            elif command == "\\abort":
                self.db.abort()
                self._print("aborted")
            elif command == "\\net":
                network = self.db.network
                self._print(
                    f"network={network.network_name} "
                    f"tokens={network.tokens_processed} "
                    f"firings={self.db.firings} "
                    f"alpha-entries={network.memory_entry_count()}")
            elif command == "\\trace":
                if not self.db.firing_log:
                    self._print("no firings recorded")
                for record in self.db.firing_log[-20:]:
                    self._print(str(record))
            elif command == "\\dump":
                if not argument:
                    self._print("usage: \\dump <file>")
                else:
                    from repro import persist
                    persist.dump(self.db, argument)
                    self._print(f"dumped to {argument}")
            elif command == "\\load":
                if not argument:
                    self._print("usage: \\load <file>")
                else:
                    from repro import persist
                    self.db = persist.load(argument)
                    self._print(f"loaded {argument} (fresh database)")
            else:
                self._print(f"unknown meta-command {command!r} "
                            f"(try \\d, \\rules, \\rule, \\explain, "
                            f"\\begin, \\commit, \\abort, \\net, "
                            f"\\trace, \\dump, \\load, \\q)")
        except (ArielError, OSError) as exc:
            self._print(f"error: {exc}")
        return True

    def _describe_relations(self, name: str) -> None:
        if name:
            relation = self.db.catalog.relation(name)
            self._print(f"{name} ({len(relation)} tuple(s))")
            for attr in relation.schema:
                self._print(f"  {attr.name:<20} {attr.type.value}")
            for index in relation.indexes():
                self._print(f"  index {index.name} on {index.attribute} "
                            f"using {index.kind}")
            return
        relations = sorted(self.db.catalog.relations(),
                           key=lambda r: r.name)
        if not relations:
            self._print("no relations")
            return
        for relation in relations:
            self._print(f"{relation.name:<24} {len(relation):>6} "
                        f"tuple(s), {len(relation.schema)} attribute(s)")

    def _print(self, text: str) -> None:
        self.out.write(text + "\n")


def main(argv: list[str] | None = None) -> int:
    """Entry point: run script files, then an interactive shell."""
    argv = list(sys.argv[1:] if argv is None else argv)
    db = Database()
    shell = Shell(db)
    for path in argv:
        try:
            with open(path) as handle:
                db.execute_script(handle.read())
            print(f"loaded {path}")
        except (OSError, ArielError) as exc:
            print(f"error loading {path}: {exc}", file=sys.stderr)
            return 1
    if sys.stdin is not None:
        shell.run()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
