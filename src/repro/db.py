"""The Ariel database facade: parse → analyze → plan → execute → rules.

:class:`Database` wires the whole system together the way the paper's
Figure 2 draws it: commands enter through the lexer/parser and semantic
analyzer; data commands are planned by the query optimizer and run by the
executor, whose mutations flow through transition hooks into the Δ-sets
and the discrimination network; after each transition the recognize-act
cycle (Figure 1) fires eligible rules, each firing planning its action
with the rule action planner and executing it as a transition of its own.

Typical use::

    db = Database()
    db.execute('create emp (name = text, sal = float8)')
    db.execute('define rule NoBobs on append emp '
               'if emp.name = "Bob" then delete emp')
    db.execute('append emp(name = "Bob", sal = 1.0)')   # rule fires
    db.query('retrieve (emp.name)').rows                # -> []
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Schema
from repro.core.action_planner import ActionPlanner
from repro.core.deltasets import DeltaSets
from repro.core.subscriptions import Subscriber, SubscriptionHub
from repro.core.manager import RuleManager
from repro.core.rete import ReteNetwork
from repro.core.rules import CompiledRule
from repro.core.selection_index import SelectionIndex
from repro.core.shard import ShardPool, resolve_workers
from repro.core.treat import TreatNetwork
from repro.errors import (
    ArielError, DatabaseClosedError, DegradedError, DurabilityError,
    ExecutionError, TransactionError, WalCorruptError)
from repro.executor.executor import (
    DmlResult, ExecutionContext, Executor, ResultSet)
from repro.faults import FaultRegistry, SimulatedCrash
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse_command, parse_script
from repro.lang.semantic import SemanticAnalyzer
from repro.observe import EngineStats, TraceHub
from repro.planner.optimizer import Optimizer, PlannedCommand
from repro.planner.plans import explain as explain_plan, instrument
from repro.prepared import Prepared, StatementCache, is_cacheable
from repro.txn.durability import DurabilityManager
from repro.txn.transitions import TransitionHooks
from repro.txn.undo import UndoLog
from repro.txn.wal import decode_values

_NETWORKS = {
    "a-treat": (TreatNetwork, "auto"),
    "treat": (TreatNetwork, "never"),
    "rete": (ReteNetwork, "never"),
}


def _values_equal(a: tuple, b: tuple) -> bool:
    """Tuple equality treating NaN as equal to itself, so WAL replay
    can locate any stored row by value."""
    return len(a) == len(b) and all(
        x == y or (x != x and y != y) for x, y in zip(a, b))


def _read_only_command(command: ast.Command) -> bool:
    """Commands a degraded (read-only) database may still serve."""
    if isinstance(command, ast.Retrieve):
        return command.into is None
    if isinstance(command, ast.Explain):
        return (not command.analyze) \
            or _read_only_command(command.command)
    return False


@dataclass(frozen=True)
class FiringRecord:
    """One entry of the rule-firing trace (``Database.firing_log``)."""

    sequence: int
    rule_name: str
    priority: float
    match_count: int

    def __str__(self) -> str:
        return (f"#{self.sequence} {self.rule_name} "
                f"(priority {self.priority}, {self.match_count} "
                f"match(es))")


class Database:
    """A single-user Ariel database instance.

    Parameters
    ----------
    network:
        ``"a-treat"`` (default; TREAT with virtual α-memories chosen
        automatically), ``"treat"`` (all memories stored) or ``"rete"``.
    virtual_policy:
        Overrides the network default: ``"auto"``, ``"never"``,
        ``"always"`` or a callable on
        :class:`~repro.core.rules.VariableSpec`.
    max_firings:
        Bound on rule firings per triggering transition; exceeding it
        raises :class:`~repro.errors.RuleLoopError`.
    cache_action_plans:
        Use the pre-planning strategy of paper §5.3 instead of the
        default *always reoptimize*.
    selection_index:
        Override the top-level predicate index (for ablations).
    batch_tokens:
        Defer token routing to transition boundaries and propagate each
        transition's whole Δ-set through the network as one batch
        (observationally identical to per-mutation routing; the batched
        path amortises selection-index probes and residual checks).
    statement_cache_size:
        Capacity of the transparent LRU plan cache inside
        :meth:`execute` (0 disables it).  Explicitly prepared statements
        (:meth:`prepare`) are unaffected by this bound.
    join_index_policy:
        ``"demand"`` (default) promotes α-memory hash join-indexes at
        runtime once an equality-probed position accumulates enough
        full-scan cost; ``"eager"`` builds them for every equi-join
        position at rule activation (the pre-adaptive behaviour).
    join_mode:
        Join-algorithm policy for multi-variable rules: ``"auto"``
        (default) lets the planner pick the worst-case-optimal
        leapfrog multiway step for cyclic/many-variable equi-join
        graphs when its estimated cost wins, ``"pairwise"`` keeps the
        classic probe chain everywhere, ``"multiway"`` forces the
        leapfrog step wherever it is structurally eligible.  ``None``
        reads the ``REPRO_JOIN_MODE`` environment variable
        (absent/empty = ``"auto"``).
    durable_path:
        Directory for durable state (a checkpoint script plus a
        write-ahead log of committed transitions).  Starts *fresh*: an
        existing durable state there is refused — reopen one with
        :meth:`Database.recover` instead.  None (the default) keeps the
        database purely in memory.
    fsync:
        WAL fsync policy: ``"always"`` (every record), ``"commit"``
        (every durable boundary; the default) or ``"never"`` (flush
        only).  Ignored without ``durable_path``.
    checkpoint_every:
        Auto-checkpoint once the WAL holds this many records (0
        disables automatic checkpoints; :meth:`checkpoint` still
        works).  Ignored without ``durable_path``.
    parallel_workers:
        Size of the sharded-propagation worker pool.  ``0`` keeps
        token routing serial (bit-for-bit today's behaviour); ``N > 0``
        hash-partitions each batched Δ-set by (relation, anchor-key)
        across ``N`` workers for the read-only match phase, with a
        deterministic token-index-ordered merge at the transition
        boundary, so results, firing order, and WAL record order are
        identical to serial.  ``None`` (the default) reads the
        ``REPRO_WORKERS`` environment variable (absent/empty = 0).
    parallel_backend:
        ``"thread"`` (default) or ``"process"`` — the latter offloads
        the deduplicated CPU-bound residual-predicate evaluations to a
        fork-based process pool, falling back inline on any failure.
    """

    def __init__(self, network: str = "a-treat",
                 virtual_policy=None,
                 max_firings: int = 1000,
                 cache_action_plans: bool = False,
                 selection_index: SelectionIndex | None = None,
                 batch_tokens: bool = False,
                 statement_cache_size: int = 128,
                 join_index_policy: str = "demand",
                 join_mode: str | None = None,
                 durable_path=None,
                 fsync: str = "commit",
                 checkpoint_every: int = 1000,
                 parallel_workers: int | None = None,
                 parallel_backend: str = "thread"):
        try:
            network_cls, default_policy = _NETWORKS[network.lower()]
        except KeyError:
            raise ArielError(
                f"unknown network {network!r}; expected one of "
                f"{sorted(_NETWORKS)}") from None
        #: engine counter registry (see :mod:`repro.observe`); set
        #: ``stats.enabled = False`` to make every bump a no-op
        self.stats = EngineStats()
        #: trace-hook hub for engine events; see :meth:`on_event`
        self.trace = TraceHub()
        self.catalog = Catalog()
        self.analyzer = SemanticAnalyzer(self.catalog)
        self.optimizer = Optimizer(self.catalog)
        workers = resolve_workers(parallel_workers)
        #: sharded-propagation worker pool (None = serial routing)
        self._pool: ShardPool | None = (
            ShardPool(workers, backend=parallel_backend)
            if workers else None)
        self.manager = RuleManager(
            self.catalog, self.optimizer, network_cls,
            virtual_policy or default_policy, selection_index,
            max_rule_cascade=max_firings, stats=self.stats,
            join_index_policy=join_index_policy,
            join_mode=join_mode, worker_pool=self._pool)
        self.deltasets = DeltaSets()
        self.undo = UndoLog()
        self.hooks = TransitionHooks(self.catalog, self.deltasets,
                                     self.manager.process_token, self.undo,
                                     route_tokens=self.manager
                                     .process_tokens,
                                     defer_routing=batch_tokens)
        self.hooks.stats = self.stats
        self.hooks.trace = self.trace
        self.context = ExecutionContext(self.catalog, self.hooks)
        self.executor = Executor(self.context, self.optimizer)
        self.action_planner = ActionPlanner(self.catalog, self.optimizer,
                                            cache_action_plans)
        #: rule firings since construction (diagnostics)
        self.firings = 0
        #: trace of every firing, newest last (clear with
        #: ``firing_log.clear()``); disable with ``trace_firings=False``
        self.firing_log: list[FiringRecord] = []
        self.trace_firings = True
        #: asynchronous trigger delivery to applications (paper §8
        #: future work); see :meth:`subscribe`
        self.subscriptions = SubscriptionHub()
        #: transparent LRU of plans for repeated ad-hoc DML text
        self.statement_cache = StatementCache(statement_cache_size,
                                              stats=self.stats)
        #: deterministic fault points for durability testing (see
        #: :mod:`repro.faults`); tests arm them, production never does
        self.faults = FaultRegistry(stats=self.stats)
        self._cycle_running = False
        self._rules_suspended = False
        self._closed = False
        self._in_transaction = False
        self._implicit_scope = False
        self._pnode_snapshots = None
        self._durability: DurabilityManager | None = None
        if durable_path is not None:
            self._durability = DurabilityManager(
                self, durable_path, fsync=fsync,
                checkpoint_every=checkpoint_every, mode="fresh",
                quiesce=self.hooks.flush_tokens)
            self.hooks.journal = self._durability
        # feedback-driven α-memory adaptation (off until enabled)
        self._adapt_every = 0
        self._adapt_budget = 0.0
        self._adapt_weights: dict[str, float] | None = None
        self._adapt_countdown = 0
        self._adapting = False

    @property
    def max_firings(self) -> int:
        """Bound on rule firings per transition (delegates to the
        manager's cascade guard)."""
        return self.manager.max_rule_cascade

    @max_firings.setter
    def max_firings(self, value: int) -> None:
        self.manager.max_rule_cascade = value

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------

    @classmethod
    def recover(cls, durable_path, *, fsync: str = "commit",
                checkpoint_every: int = 1000, **database_kwargs
                ) -> Database:
        """Reopen a durable database from its directory.

        Loads the checkpoint script with rules suspended (exactly like
        :func:`repro.persist.loads`), then replays the WAL suffix —
        still suspended, because the log already contains every
        rule-generated mutation, so re-firing would double them.  Token
        routing during replay re-primes the α-memories and P-nodes;
        the final state equals a fresh database that executed only the
        durably-committed prefix of history.
        """
        db = cls(**database_kwargs)
        manager = DurabilityManager(
            db, durable_path, fsync=fsync,
            checkpoint_every=checkpoint_every, mode="recover",
            quiesce=db.hooks.flush_tokens)
        try:
            db._apply_recovery(manager.pending_script,
                               manager.pending_replay)
        finally:
            manager.pending_script = None
            manager.pending_replay = []
        db._durability = manager
        db.hooks.journal = manager
        manager.maybe_checkpoint()
        return db

    def checkpoint(self) -> None:
        """Force a checkpoint: dump the database, atomically swap it in
        and truncate the WAL.  Requires ``durable_path``."""
        self._require_open()
        if self._durability is None:
            raise DurabilityError("database has no durable path")
        if self._in_transaction:
            raise TransactionError(
                "cannot checkpoint inside an open transaction")
        self._require_writable("checkpoint")
        self._durability.flush_boundary(sync=True)
        self._durability.checkpoint()

    def close(self) -> None:
        """Flush and close the durable state (no-op when in-memory)
        and shut down the propagation worker pool, if any.

        The handle is unusable afterwards: executing commands — or
        closing again — raises :class:`~repro.errors
        .DatabaseClosedError` instead of failing deep inside the
        durability layer on a closed WAL handle.  Pure introspection
        (``relation_rows``, stats, the network) stays readable.
        """
        self._require_open()
        self._closed = True
        d = self._durability
        if d is not None:
            if not d.crashed and d.degraded is None:
                d.flush_boundary(sync=True)
            d.close()
        if self._pool is not None:
            self._pool.close()
            self._pool = None
            self.manager.set_worker_pool(None)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def _require_open(self) -> None:
        if self._closed:
            raise DatabaseClosedError("database is closed")

    # ------------------------------------------------------------------
    # sharded propagation
    # ------------------------------------------------------------------

    @property
    def parallel_workers(self) -> int:
        """Current propagation worker count (0 = serial)."""
        return self._pool.workers if self._pool is not None else 0

    def set_parallel_workers(self, workers: int,
                             backend: str | None = None,
                             min_batch: int | None = None) -> None:
        """Resize (or, with 0, dissolve) the propagation worker pool at
        runtime; takes effect from the next routed batch.  ``backend``
        and ``min_batch`` default to the current pool's settings."""
        old = self._pool
        if backend is None:
            backend = old.backend if old is not None else "thread"
        if min_batch is None and old is not None:
            min_batch = old.min_batch
        workers = resolve_workers(workers)
        if workers:
            kwargs = {} if min_batch is None \
                else {"min_batch": min_batch}
            self._pool = ShardPool(workers, backend=backend, **kwargs)
        else:
            self._pool = None
        self.manager.set_worker_pool(self._pool)
        if old is not None:
            old.close()

    def parallel_info(self) -> dict | None:
        """Worker-pool settings (None while propagation is serial)."""
        return self._pool.info() if self._pool is not None else None

    @property
    def degraded(self) -> str | None:
        """Why the database is read-only (None while healthy)."""
        return self._durability.degraded if self._durability else None

    def wal_info(self) -> dict | None:
        """Durability status (None for an in-memory database)."""
        d = self._durability
        if d is None:
            return None
        return {
            "path": str(d.dir),
            "fsync": d.fsync,
            "generation": d.wal.generation,
            "records": d.wal.data_records,
            "pending": d.pending_records,
            "checkpoint_every": d.checkpoint_every,
            "degraded": d.degraded,
        }

    def _apply_recovery(self, script: str, records: list) -> None:
        """Load checkpoint + WAL with rule firing suspended, then settle
        exactly as :func:`repro.persist.loads` does."""
        self._rules_suspended = True
        try:
            if script.strip():
                self.execute_script(script)
            for record in records:
                self._replay_wal_record(record)
                self.stats.bump("recovery.replayed")
            for name in self.manager.active_rules():
                self.network.pnode(name).clear()
            self.manager.agenda.clear()
            self.network.flush_dynamic()
        finally:
            self._rules_suspended = False

    def _replay_wal_record(self, record: list) -> None:
        """Re-apply one logged transition through the hooks (no rule
        firing; tokens still route, keeping the network in step)."""
        for entry in record:
            kind = entry[0]
            if kind == "stmt":
                self._dispatch(self.analyzer.analyze(
                    parse_command(entry[1])))
            elif kind == "i":
                self.hooks.insert(entry[1], decode_values(entry[2]))
            elif kind == "d":
                values = decode_values(entry[2])
                self.hooks.delete(entry[1],
                                  self._locate_tuple(entry[1], values))
            elif kind == "r":
                before = decode_values(entry[2])
                self.hooks.replace(entry[1],
                                   self._locate_tuple(entry[1], before),
                                   decode_values(entry[3]))
            else:
                raise WalCorruptError(
                    f"unknown WAL entry kind {kind!r}")
        self.hooks.flush_tokens()
        self.deltasets.clear()
        self.manager.end_of_rule_processing()

    def _locate_tuple(self, relation_name: str, values: tuple):
        """The TID currently holding ``values`` — replay targets tuples
        by value because TIDs are not stable across checkpoint reload."""
        for stored in self.catalog.relation(relation_name).scan():
            if _values_equal(stored.values, values):
                return stored.tid
        raise WalCorruptError(
            f"replayed mutation found no tuple {values!r} in "
            f"{relation_name}")

    def _require_writable(self, what: str) -> None:
        d = self._durability
        if d is not None and d.degraded is not None:
            raise DegradedError(
                f"cannot {what}: database is read-only "
                f"({d.degraded})", path=d.wal_path)

    def _journal_statement(self, command: ast.Command) -> None:
        d = self._durability
        if d is not None and not d.crashed:
            d.journal_statement(ast.deparse(command),
                                sync=not self._in_transaction)

    def _durable_boundary(self) -> None:
        """Flush the journaled transition at a successful implicit
        boundary, then maybe checkpoint."""
        d = self._durability
        if d is None or d.crashed:
            return
        try:
            d.flush_boundary(sync=True)
            if not self._in_transaction:
                d.maybe_checkpoint()
        except SimulatedCrash:
            d.mark_crashed()
            raise

    def _durable_settle(self, exc: BaseException) -> None:
        """Durability bookkeeping for a failed implicit transition: a
        simulated crash loses the in-flight record; any other error
        still flushes, because the heap kept the completed effects."""
        d = self._durability
        if d is None or d.crashed:
            return
        if isinstance(exc, SimulatedCrash):
            d.mark_crashed()
            return
        try:
            d.flush_boundary(sync=True)
        except SimulatedCrash:
            d.mark_crashed()
        except DurabilityError:
            # degraded mode is already recorded; surfacing it here
            # would mask the error that broke the transition
            pass

    # ------------------------------------------------------------------
    # command execution
    # ------------------------------------------------------------------

    def execute(self, text: str):
        """Parse, analyze and execute one command; returns its result
        (a ResultSet for retrieve, a DmlResult for updates, else None).

        Plain DML goes through a transparent statement cache keyed by
        the command text: repeated executions reuse the cached plan,
        re-planning automatically when DDL has changed the catalog since
        the plan was built.
        """
        self._require_open()
        cached = self.statement_cache.lookup(text)
        if cached is not None:
            return cached.execute_with(None)
        command = self.analyzer.analyze(parse_command(text))
        if is_cacheable(command) and self.statement_cache.capacity > 0:
            prepared = Prepared(self, text, command=command)
            self.statement_cache.store(text, prepared)
            return prepared.execute_with(None)
        return self._dispatch(command)

    def prepare(self, text: str) -> Prepared:
        """Prepare one DML command: parse, analyze and plan it now, and
        execute it repeatedly later with per-execution parameters::

            p = db.prepare('retrieve (e.name) from e in emp '
                           'where e.id = $id')
            p.execute(id=7)
        """
        self._require_open()
        return Prepared(self, text)

    def execute_many(self, text: str, rows) -> list:
        """Prepare ``text`` once and execute it with every parameter
        vector in ``rows`` (an iterable of name -> value dicts); returns
        the per-execution results."""
        prepared = self.prepare(text)
        return [prepared.execute_with(row) for row in rows]

    def execute_script(self, text: str) -> list:
        """Execute a sequence of commands; returns their results."""
        self._require_open()
        results = []
        for command in parse_script(text):
            self.analyzer.analyze(command)
            results.append(self._dispatch(command))
        return results

    def query(self, text: str) -> ResultSet:
        """Execute a retrieve and return its ResultSet."""
        result = self.execute(text)
        if not isinstance(result, ResultSet):
            raise ExecutionError("query() expects a retrieve command")
        return result

    def execute_readonly(self, text: str) -> ResultSet:
        """Execute a plain retrieve *without* entering the transition
        machinery (no recovery scope, no token flush, no recognize-act
        cycle — none of which a retrieve needs).

        This is the serving layer's read path: because it never touches
        the per-transition state (Δ-sets, agenda, cascade guard), many
        reader threads may run it concurrently against a settled
        database — the service's snapshot gate guarantees no transition
        is in flight meanwhile.  Plans come from (and land in) the same
        statement cache as :meth:`execute`.  Anything but a plain
        retrieve is rejected: mutations must go through the serialized
        write path.
        """
        self._require_open()
        cached = self.statement_cache.lookup(text)
        if cached is None:
            command = self.analyzer.analyze(parse_command(text))
            if not isinstance(command, ast.Retrieve) \
                    or command.into is not None:
                raise ExecutionError(
                    "execute_readonly serves plain retrieve commands "
                    "only; route mutations through execute()")
            cached = Prepared(self, text, command=command)
            if self.statement_cache.capacity > 0:
                self.statement_cache.store(text, cached)
        return cached.execute_readonly(None)

    def explain(self, text: str, analyze: bool = False) -> str:
        """The physical plan the optimizer picks for a data command.

        With ``analyze=True`` (or when ``text`` itself reads ``explain
        analyze <command>``) the command is *executed* — including any
        rule cascade it triggers — and every plan operator is annotated
        with its observed row counts, loop count and wall time.

        Cacheable commands route through the same statement cache as
        :meth:`execute`, so the output always reflects what a cached
        execution would actually run — after DDL, the version check
        re-plans and explain shows the new access path.  Analyzed runs
        never enter the statement cache: instrumentation wrappers must
        not leak into ordinary executions.
        """
        self._require_open()
        if not analyze:
            cached = self.statement_cache.lookup(text)
            if cached is not None:
                return cached.explain()
        command = self.analyzer.analyze(parse_command(text))
        if isinstance(command, ast.Explain):
            return self._run_explain(command)
        if analyze:
            return self._explain_analyze(command)
        if is_cacheable(command) and self.statement_cache.capacity > 0:
            prepared = Prepared(self, text, command=command)
            self.statement_cache.store(text, prepared)
            return prepared.explain()
        planned = self.optimizer.plan_command(command)
        return explain_plan(planned.plan)

    def _run_explain(self, command: ast.Explain):
        """Dispatch target for a parsed ``explain [analyze]`` command."""
        if command.analyze:
            return self._explain_analyze(command.command)
        planned = self.optimizer.plan_command(command.command)
        return explain_plan(planned.plan)

    def _explain_analyze(self, command: ast.Command) -> str:
        """Execute ``command`` with an instrumented plan and render the
        annotated operator tree (rows in/out, loops, per-node time).

        The command really runs — heap mutations, token routing and any
        triggered rule cascade included — inside the usual undo-backed
        recovery scope.  The instrumented plan is built fresh and never
        stored, so caches keep serving unwrapped plans.
        """
        planned = self.optimizer.plan_command(command)
        root = instrument(planned.plan)
        analyzed = PlannedCommand(planned.command, root, planned.scope)
        start = time.perf_counter()
        with self._recovery_scope():
            result = self.executor.run(analyzed)
            self._note_plan_executed(analyzed)
            self.hooks.flush_tokens()
            self.deltasets.clear()
            self._run_rule_cycle()
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        if isinstance(result, ResultSet):
            summary = f"{len(result)} row(s)"
        elif isinstance(result, DmlResult):
            summary = f"{result.count} tuple(s) affected"
        else:
            summary = "ok"
        return (f"{explain_plan(root)}\n"
                f"Total: {summary} in {elapsed_ms:.3f} ms")

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------

    def begin(self) -> None:
        """Open a transaction: subsequent commands can be aborted."""
        self._require_open()
        if self._in_transaction:
            raise TransactionError("transaction already open")
        self._require_writable("begin a transaction")
        self._in_transaction = True
        # Undo-replay restores α-memories exactly, but P-nodes are not
        # symmetric under it: a match consumed by a pre-transaction
        # firing is gone from the P-node, so a delete inside the
        # transaction removes nothing there — yet the abort's restore
        # would re-insert it.  Snapshot P-node contents now and put them
        # back verbatim on abort.
        self._pnode_snapshots = {
            name: self.network.pnode(name).snapshot()
            for name in self.network.rules}
        self.undo.begin()

    def commit(self) -> None:
        """Close the open transaction, keeping its effects.

        For a durable database the transaction's journaled mutations
        hit the WAL here, as one record at a sync boundary — nothing of
        an uncommitted transaction ever reaches the log.
        """
        self._require_open()
        if not self._in_transaction:
            raise TransactionError("no open transaction")
        d = self._durability
        if d is not None and not d.crashed:
            try:
                self.faults.hit("txn.commit")
            except SimulatedCrash:
                d.mark_crashed()
                raise
        self._in_transaction = False
        self._pnode_snapshots = None
        self.undo.commit()
        self._durable_boundary()

    def abort(self) -> None:
        """Undo every mutation of the open transaction.

        The inverses replay through the transition hooks, so α-memories
        and P-nodes stay consistent; rule firing is suppressed while the
        undo runs, and dynamic state is flushed afterwards.
        """
        self._require_open()
        if not self._in_transaction:
            raise TransactionError("no open transaction")
        self._in_transaction = False
        self._rules_suspended = True
        try:
            self._replay_undo()
            self.hooks.flush_tokens()
            self.deltasets.clear()
            self.manager.end_of_rule_processing()
            self.manager.agenda.clear()
            # Rules defined during the transaction (not transactional,
            # hence absent from the snapshot) keep their replayed state.
            for name, snap in self._pnode_snapshots.items():
                if name in self.network.rules:
                    self.network.pnode(name).restore(snap)
            self._pnode_snapshots = None
        finally:
            self._rules_suspended = False
        # The journal buffered the transaction's mutations *and* their
        # undo compensations (both flowed through the hooks), so the
        # flushed record replays to the heap the abort left behind —
        # including non-transactional side effects like DDL that forced
        # a mid-transaction flush.
        self._durable_boundary()

    def _replay_undo(self) -> None:
        """Replay the undo log's inverses through the transition hooks,
        so the discrimination network tracks the heap exactly."""
        for record in self.undo.take_reversed():
            if record.op == "insert":
                self.hooks.delete(record.relation, record.tid)
            elif record.op == "delete":
                self.hooks.restore(record.relation, record.tid,
                                   record.before)
            else:
                self.hooks.replace(record.relation, record.tid,
                                   record.before)

    @contextmanager
    def _recovery_scope(self):
        """Consistency recovery around one implicit (auto-commit)
        transition.

        An exception raised mid-transition — a failing command, a
        failing rule action, or the cascade guard tripping — must not
        leave the α-memories and P-nodes inconsistent with the heap.
        Completed effects persist (transitions are not atomic outside
        explicit transactions — the triggering tuple of a failed rule
        action stays inserted), so recovery here means *settling*:
        route whatever tokens are still buffered so the network catches
        up with the heap, then clear per-transition state.  The failing
        action's own partial effects are rolled back by the per-firing
        undo scope in :meth:`_fire` before this scope ever sees the
        exception.  Inside an explicit transaction the caller owns
        recovery via :meth:`abort` instead.
        """
        if self._in_transaction or self._implicit_scope:
            yield
            return
        self._implicit_scope = True
        try:
            try:
                yield
            except BaseException as exc:
                self._settle_after_error()
                self._durable_settle(exc)
                raise
            self._durable_boundary()
        finally:
            self._implicit_scope = False

    def _settle_after_error(self) -> None:
        """Bring the network back in step with the heap after a failed
        implicit transition (see :meth:`_recovery_scope`)."""
        suspended = self._rules_suspended
        self._rules_suspended = True
        try:
            self.hooks.flush_tokens()
            self.deltasets.clear()
            self.manager.end_of_rule_processing()
        finally:
            self._rules_suspended = suspended

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def _dispatch(self, command: ast.Command):
        if not _read_only_command(command):
            self._require_writable("execute a mutating command")
        if isinstance(command, ast.CreateRelation):
            schema = Schema.of(**{c.name: c.type_name
                                  for c in command.columns})
            relation = self.catalog.create_relation(command.name, schema)
            self.deltasets.register_schema(command.name, schema)
            self._journal_statement(command)
            return None
        # DDL paths need no explicit plan-cache invalidation: the catalog
        # bumps its version, and both the statement cache and the action
        # planner check it lazily before reusing a plan.
        if isinstance(command, ast.DestroyRelation):
            self.catalog.destroy_relation(command.name)
            self._journal_statement(command)
            return None
        if isinstance(command, ast.DefineIndex):
            self.catalog.create_index(command.name, command.relation,
                                      command.attribute, command.kind)
            self._journal_statement(command)
            return None
        if isinstance(command, ast.RemoveIndex):
            self.catalog.destroy_index(command.name)
            self._journal_statement(command)
            return None
        if isinstance(command, ast.DefineRule):
            self.manager.define(command, activate=True)
            # Journal the definition ahead of the mutations its priming
            # cycle may generate, so replay order matches execution.
            self._journal_statement(command)
            # Priming may have matched existing data; give the rule the
            # opportunity to run, as after any transition.
            with self._recovery_scope():
                self._run_rule_cycle()
            return None
        if isinstance(command, ast.RemoveRule):
            self.manager.remove(command.name)
            self.action_planner.invalidate(command.name)
            self._journal_statement(command)
            return None
        if isinstance(command, ast.ActivateRule):
            self.manager.activate(command.name)
            self._journal_statement(command)
            with self._recovery_scope():
                self._run_rule_cycle()
            return None
        if isinstance(command, ast.DeactivateRule):
            self.manager.deactivate(command.name)
            self._journal_statement(command)
            return None
        if isinstance(command, ast.Explain):
            return self._run_explain(command)
        if isinstance(command, ast.Halt):
            raise ExecutionError(
                "halt is only meaningful inside a rule action")
        if isinstance(command, ast.Block):
            return self._run_transition(command.commands)
        return self._run_transition([command])

    # ------------------------------------------------------------------
    # transitions and the recognize-act cycle
    # ------------------------------------------------------------------

    def _run_transition(self, commands: list[ast.Command]):
        """Execute commands as one transition, then let rules wake up."""
        result = None
        with self._recovery_scope():
            for command in commands:
                planned = self.optimizer.plan_command(command)
                result = self.executor.run(planned)
                self._note_plan_executed(planned)
            self.hooks.flush_tokens()
            self.deltasets.clear()
            self._run_rule_cycle()
        return result

    def _execute_planned(self, planned, params: dict[str, object] | None):
        """Run a cached plan as one transition (the prepared-statement
        execution path: no parse/analyze/plan work)."""
        self._require_open()
        if not _read_only_command(planned.command):
            self._require_writable("execute a mutating command")
        with self._recovery_scope():
            result = self.executor.run(planned, params)
            self._note_plan_executed(planned)
            self.hooks.flush_tokens()
            self.deltasets.clear()
            self._run_rule_cycle()
        return result

    def bulk_append(self, relation: str, rows) -> int:
        """Append many tuples as one transition, propagating the whole
        Δ-set through the discrimination network as a single batch (the
        set-oriented fast path; values are coerced like ``append``).
        Returns the number of tuples inserted."""
        self._require_open()
        self._require_writable("bulk-append")
        with self._recovery_scope():
            tids = self.hooks.insert_many(relation, rows)
            self.hooks.flush_tokens()
            self.deltasets.clear()
            self._run_rule_cycle()
        return len(tids)

    def _run_rule_cycle(self) -> None:
        """The recognize-act cycle of paper Figure 1.

        The per-transition firing bound lives in the manager's cascade
        guard (:meth:`RuleManager.note_firing`), which on breach raises
        :class:`~repro.errors.RuleLoopError` naming the cycling rules.
        """
        if self._cycle_running or self._rules_suspended:
            return
        self._cycle_running = True
        self.manager.begin_cascade()
        try:
            while not self.manager.halted:
                rule = self.manager.select_rule()
                if rule is None:
                    break
                self.manager.note_firing(rule)
                self._fire(rule)
            self.manager.end_of_rule_processing()
        finally:
            self._cycle_running = False
        # Deliver trigger notifications only after the cycle settles, so
        # subscribers always observe a consistent post-cascade state.
        self.subscriptions.deliver()
        self._maybe_adapt_memories()

    # ------------------------------------------------------------------
    # feedback-driven α-memory adaptation (paper §8)
    # ------------------------------------------------------------------

    def adapt_memories(self, budget_entries: float,
                       weights: dict[str, float] | None = None):
        """One feedback-driven materialization step: re-plan stored vs
        virtual from the observed per-memory probe counters under a
        storage budget, rebuild only the rules whose decision flipped,
        and reset the counters.  Returns the
        :class:`~repro.core.memory_optimizer.MemoryPlan`."""
        from repro.core.memory_optimizer import adapt_memories
        self._adapting = True
        try:
            plan, flipped = adapt_memories(self, budget_entries, weights)
        finally:
            self._adapting = False
        if self.stats.enabled:
            self.stats.bump("memory.adaptations")
            if flipped:
                self.stats.bump("memory.flips", flipped)
        return plan

    def enable_memory_adaptation(self, budget_entries: float,
                                 every: int = 100,
                                 weights: dict[str, float] | None = None
                                 ) -> None:
        """Run :meth:`adapt_memories` automatically every ``every``
        completed transitions (outside explicit transactions)."""
        if every <= 0:
            raise ArielError("adaptation interval must be positive")
        self._adapt_every = every
        self._adapt_budget = float(budget_entries)
        self._adapt_weights = weights
        self._adapt_countdown = every

    def disable_memory_adaptation(self) -> None:
        self._adapt_every = 0

    def _maybe_adapt_memories(self) -> None:
        if not self._adapt_every or self._adapting \
                or self._in_transaction:
            return
        self._adapt_countdown -= 1
        if self._adapt_countdown > 0:
            return
        self._adapt_countdown = self._adapt_every
        self.adapt_memories(self._adapt_budget, self._adapt_weights)

    def _fire(self, rule: CompiledRule) -> None:
        """One act step: consume the P-node and run the action as a
        transition of its own."""
        matches = self.manager.consume_matches(rule)
        if not len(matches):
            return
        self.faults.hit("rule.fire")
        self.firings += 1
        if self.trace_firings:
            self.firing_log.append(FiringRecord(
                self.firings, rule.name, rule.priority, len(matches)))
        if self.trace.wants("rule_fired"):
            self.trace.emit("rule_fired", {
                "sequence": self.firings,
                "rule": rule.name,
                "priority": rule.priority,
                "matches": len(matches),
            })
        if self.subscriptions.active:
            self.subscriptions.record_firing(self.firings, rule.name,
                                             matches)
        # Undo-backed recovery: outside an explicit transaction (where
        # the transaction's own undo log already covers the action and
        # abort() replays it), record this firing's mutations so a
        # failing action can be rolled back without leaving half its
        # effects in the heap or the network.
        undo_scope = not self._in_transaction
        if undo_scope:
            self.undo.begin()
        try:
            for action in self.action_planner.plan_firing(rule, matches):
                if action.is_halt:
                    self.manager.halt()
                    break
                self.executor.run(action.planned)
                self._note_plan_executed(action.planned, rule=rule.name)
            self.hooks.flush_tokens()
            self.deltasets.clear()
        except BaseException:
            if undo_scope:
                self._recover_firing()
            raise
        else:
            if undo_scope:
                self.undo.commit()

    def _recover_firing(self) -> None:
        """Roll back a failed rule action (see :meth:`_fire`): route the
        partial action's buffered tokens, replay its undo records
        through the hooks (keeping α-memories and P-nodes in step with
        the heap), and route the inverses too."""
        self.hooks.flush_tokens()
        self._replay_undo()
        self.hooks.flush_tokens()
        self.deltasets.clear()

    def _note_plan_executed(self, planned, rule: str | None = None) -> None:
        """Count (and, when traced, announce) one executed plan."""
        if self.stats.enabled:
            self.stats.bump("plans.executed")
        if self.trace.wants("plan_executed"):
            payload = {"command": type(planned.command).__name__}
            if rule is not None:
                payload["rule"] = rule
            self.trace.emit("plan_executed", payload)

    # ------------------------------------------------------------------
    # trigger delivery (paper §8 future work)
    # ------------------------------------------------------------------

    def subscribe(self, callback: Subscriber,
                  rule_name: str | None = None) -> int:
        """Receive a Notification after each firing of ``rule_name``
        (or of any rule when None).  Delivery happens after the
        recognize-act cycle settles; returns an unsubscribe token."""
        return self.subscriptions.subscribe(callback, rule_name)

    def unsubscribe(self, token: int) -> bool:
        """Cancel a subscription made with :meth:`subscribe`."""
        return self.subscriptions.unsubscribe(token)

    # ------------------------------------------------------------------
    # trace hooks
    # ------------------------------------------------------------------

    def on_event(self, callback, events=None) -> int:
        """Register ``callback(event, payload)`` for engine trace
        events — ``"rule_fired"``, ``"token_routed"`` and
        ``"plan_executed"`` (all of them when ``events`` is None; a
        single name or an iterable of names otherwise).  Returns a
        token for :meth:`off_event`.  Unlike :meth:`subscribe`, trace
        callbacks run synchronously at the point the event happens."""
        return self.trace.on(callback, events)

    def off_event(self, token: int) -> bool:
        """Remove a trace callback registered with :meth:`on_event`."""
        return self.trace.off(token)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def network(self):
        return self.manager.network

    def relation_rows(self, name: str) -> list[tuple]:
        """All tuples of a relation (test/debug convenience)."""
        return [s.values for s in self.catalog.relation(name).scan()]
