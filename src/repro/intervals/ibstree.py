"""The interval binary search tree (IBS tree, Hanson & Chaabouni 1990).

A binary search tree over the distinct interval endpoints where markers
hang off the *child slots* of nodes: interval ``I`` marks the left (right)
slot of node ``n`` when ``I`` fully contains the open key range of that
slot, and marks ``n`` itself (an *eq marker*) when ``I`` contains
``n.key``.  A stabbing query for ``K`` walks the ordinary BST search path,
collecting the markers of every slot it descends through plus the eq
markers of an exactly-matching node.  Soundness: a slot on the search path
has ``K`` in its range, so every marker there contains ``K``.
Completeness: an interval containing ``K`` either span-marked some slot on
``K``'s search path or recursed alongside it down to an equal node or to
an empty slot — and an empty slot intersecting an interval whose endpoints
are tree keys is always *fully* covered, hence marked.

Placement decisions depend only on slot key ranges, and ranges of existing
nodes never change: we do not rotate, and endpoint removal tombstones the
node (``owner_count``).  Balance is kept scapegoat-style — when an insert
lands too deep, or tombstones outnumber half the live nodes, the whole
tree is rebuilt perfectly balanced and every interval re-placed.  This
replaces Hanson & Chaabouni's rotation-with-marker-maintenance with a
simpler amortised scheme; queries see the identical marker invariants.

The paper notes the interval skip list "is much easier to implement than
the IBS tree and performs as well" — implementing both lets the
``ablate-isl`` benchmark check that claim.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable

from repro.intervals.interval import Interval, key_eq, key_lt


class _Node:
    """A BST node for one distinct endpoint key."""

    __slots__ = ("key", "left", "right", "left_span", "right_span",
                 "eq_markers", "owner_count")

    def __init__(self, key):
        self.key = key
        self.left: _Node | None = None
        self.right: _Node | None = None
        #: intervals fully covering the open range of the left child slot
        self.left_span: set[Interval] = set()
        #: intervals fully covering the open range of the right child slot
        self.right_span: set[Interval] = set()
        #: intervals containing this node's key (placed when not covered
        #: by a slot marker above)
        self.eq_markers: set[Interval] = set()
        #: number of live interval endpoints at this key (0 = tombstone)
        self.owner_count = 0


class IBSTree:
    """Dynamic stabbing-query index over intervals (IBS-tree scheme)."""

    #: rebuild when an insert descends deeper than _DEPTH_FACTOR*log2(n)+4
    _DEPTH_FACTOR = 2.0

    def __init__(self):
        self._root: _Node | None = None
        self._intervals: set[Interval] = set()
        self._node_count = 0        # live + tombstoned
        self._dead_count = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def insert(self, interval: Interval) -> None:
        """Add an interval to the index."""
        if interval in self._intervals:
            raise ValueError(f"interval already present: {interval}")
        self._ensure_key(interval.low)
        self._bump_owner(interval.low, +1)
        self._ensure_key(interval.high)
        self._bump_owner(interval.high, +1)
        self._place(self._root, None, None, interval, add=True)
        self._intervals.add(interval)

    def remove(self, interval: Interval) -> None:
        """Remove a previously inserted interval."""
        if interval not in self._intervals:
            raise ValueError(f"interval not present: {interval}")
        self._place(self._root, None, None, interval, add=False)
        self._intervals.remove(interval)
        self._bump_owner(interval.low, -1)
        self._bump_owner(interval.high, -1)
        live = self._node_count - self._dead_count
        if self._dead_count > max(4, live):
            self._rebuild()

    def stab(self, value) -> set[Interval]:
        """Every stored interval containing ``value``."""
        if value is None:
            raise ValueError("cannot stab with a null value")
        result: set[Interval] = set()
        node = self._root
        while node is not None:
            if key_eq(value, node.key):
                result |= node.eq_markers
                return result
            if key_lt(value, node.key):
                result |= node.left_span
                node = node.left
            else:
                result |= node.right_span
                node = node.right
        return result

    def stab_payloads(self, value) -> set[Hashable]:
        """Payloads of every interval containing ``value``."""
        return {iv.payload for iv in self.stab(value)}

    def __contains__(self, interval: Interval) -> bool:
        return interval in self._intervals

    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self) -> Iterable[Interval]:
        return iter(self._intervals)

    @property
    def node_count(self) -> int:
        """Number of BST nodes, including tombstones (diagnostics)."""
        return self._node_count

    def marker_count(self) -> int:
        """Total markers stored in the tree (space diagnostics)."""
        total = 0
        stack = [self._root] if self._root else []
        while stack:
            node = stack.pop()
            total += (len(node.left_span) + len(node.right_span)
                      + len(node.eq_markers))
            if node.left:
                stack.append(node.left)
            if node.right:
                stack.append(node.right)
        return total

    def height(self) -> int:
        """Tree height (diagnostics; rebuilds keep it O(log n))."""
        def depth(node):
            if node is None:
                return 0
            return 1 + max(depth(node.left), depth(node.right))
        return depth(self._root)

    # ------------------------------------------------------------------
    # placement / removal (symmetric retrace; decisions are range-based)
    # ------------------------------------------------------------------

    def _place(self, node: _Node | None, low, high, iv: Interval,
               add: bool) -> None:
        """Mark (or unmark) ``iv`` below ``node``, whose open key range is
        ``(low, high)`` with ``None`` meaning unbounded."""
        if node is None:
            return
        if iv.contains_value(node.key):
            self._mark(node.eq_markers, iv, add)
        # Left slot: open range (low, node.key).
        if not self._slot_disjoint(low, node.key, iv):
            if self._slot_covered(low, node.key, iv):
                self._mark(node.left_span, iv, add)
            else:
                self._place(node.left, low, node.key, iv, add)
        # Right slot: open range (node.key, high).
        if not self._slot_disjoint(node.key, high, iv):
            if self._slot_covered(node.key, high, iv):
                self._mark(node.right_span, iv, add)
            else:
                self._place(node.right, node.key, high, iv, add)

    @staticmethod
    def _mark(markers: set[Interval], iv: Interval, add: bool) -> None:
        if add:
            markers.add(iv)
        else:
            markers.discard(iv)

    @staticmethod
    def _slot_disjoint(low, high, iv: Interval) -> bool:
        """True if the open slot range (low, high) cannot meet ``iv``."""
        if high is not None and not key_lt(iv.low, high):
            return True
        if low is not None and not key_lt(low, iv.high):
            return True
        return False

    @staticmethod
    def _slot_covered(low, high, iv: Interval) -> bool:
        """True if ``iv`` contains the whole open slot range (low, high)."""
        if low is None or high is None:
            return False
        return iv.contains_open_interval(low, high)

    # ------------------------------------------------------------------
    # node management
    # ------------------------------------------------------------------

    def _ensure_key(self, key) -> None:
        if self._root is None:
            self._root = _Node(key)
            self._node_count = 1
            return
        node = self._root
        depth = 1
        while True:
            if key_eq(key, node.key):
                return
            depth += 1
            if key_lt(key, node.key):
                if node.left is None:
                    node.left = _Node(key)
                    break
                node = node.left
            else:
                if node.right is None:
                    node.right = _Node(key)
                    break
                node = node.right
        self._node_count += 1
        limit = self._DEPTH_FACTOR * math.log2(self._node_count + 1) + 4
        if depth > limit:
            self._rebuild(extra_key=key)

    def _find(self, key) -> _Node:
        node = self._root
        while node is not None:
            if key_eq(key, node.key):
                return node
            node = node.left if key_lt(key, node.key) else node.right
        raise KeyError(f"no node with key {key!r}")

    def _bump_owner(self, key, delta: int) -> None:
        node = self._find(key)
        was_dead = node.owner_count == 0
        node.owner_count += delta
        if node.owner_count == 0 and not was_dead:
            self._dead_count += 1
        elif was_dead and node.owner_count > 0:
            self._dead_count -= 1

    def _rebuild(self, extra_key=None) -> None:
        """Rebuild perfectly balanced over live endpoint keys and re-place
        every stored interval."""
        stack = [self._root] if self._root else []
        live_nodes = []
        while stack:
            node = stack.pop()
            if node.owner_count > 0 or (extra_key is not None
                                        and key_eq(node.key, extra_key)):
                live_nodes.append(node)
            if node.left:
                stack.append(node.left)
            if node.right:
                stack.append(node.right)
        live_nodes.sort(key=lambda n: _SortKey(n.key))
        counts = [n.owner_count for n in live_nodes]
        keys = [n.key for n in live_nodes]

        def build(lo: int, hi: int) -> _Node | None:
            if lo >= hi:
                return None
            mid = (lo + hi) // 2
            node = _Node(keys[mid])
            node.owner_count = counts[mid]
            node.left = build(lo, mid)
            node.right = build(mid + 1, hi)
            return node

        self._root = build(0, len(keys))
        self._node_count = len(keys)
        self._dead_count = sum(1 for c in counts if c == 0)
        for iv in self._intervals:
            self._place(self._root, None, None, iv, add=True)


class _SortKey:
    """Adapter making extended keys (with sentinels) sortable via key_lt."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other: "_SortKey") -> bool:
        return key_lt(self.value, other.value)

    def __eq__(self, other) -> bool:
        return key_eq(self.value, other.value)
