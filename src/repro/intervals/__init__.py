"""Interval indexes for the selection-predicate discrimination network.

The paper's top-level network tests single-relation selection conditions
with an interval index: the *interval binary search tree* (IBS tree,
Hanson & Chaabouni 1990) originally, later the *interval skip list*
(Hanson 1991), which "is much easier to implement than the IBS tree and
performs as well" (paper section 4.1).  Both answer stabbing queries —
"report every stored interval that contains a query point" — and both are
implemented here.
"""

from repro.intervals.interval import (
    Interval,
    NEG_INF,
    POS_INF,
)
from repro.intervals.skiplist import IntervalSkipList
from repro.intervals.ibstree import IBSTree

__all__ = ["Interval", "NEG_INF", "POS_INF", "IntervalSkipList", "IBSTree"]
