"""Intervals with open/closed endpoints and infinity sentinels.

Rule selection predicates come in three shapes (paper section 4.1):

* closed intervals:  ``c1 < r.a <= c2``  (any mix of <, <=)
* open intervals:    ``c < r.a``  or  ``r.a < c``  (one-sided)
* points:            ``r.a = c``

All three are represented uniformly as an :class:`Interval` over an
extended order with :data:`NEG_INF` / :data:`POS_INF` sentinels, so the
index structures never special-case unbounded predicates.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Hashable


@functools.total_ordering
class _NegInf:
    """Sentinel below every value (singleton :data:`NEG_INF`)."""

    __slots__ = ()

    def __eq__(self, other):
        return other is self

    def __lt__(self, other):
        return other is not self

    def __hash__(self):
        return hash("_NegInf")

    def __repr__(self):
        return "-inf"


@functools.total_ordering
class _PosInf:
    """Sentinel above every value (singleton :data:`POS_INF`)."""

    __slots__ = ()

    def __eq__(self, other):
        return other is self

    def __lt__(self, other):
        return False

    def __hash__(self):
        return hash("_PosInf")

    def __repr__(self):
        return "+inf"


NEG_INF = _NegInf()
POS_INF = _PosInf()


def key_lt(a, b) -> bool:
    """Total order over values extended with the infinity sentinels."""
    if a is NEG_INF:
        return b is not NEG_INF
    if b is NEG_INF:
        return False
    if b is POS_INF:
        return a is not POS_INF
    if a is POS_INF:
        return False
    return a < b


def key_eq(a, b) -> bool:
    """Equality over values extended with the infinity sentinels."""
    if a is NEG_INF or b is NEG_INF:
        return a is b
    if a is POS_INF or b is POS_INF:
        return a is b
    return a == b


def key_le(a, b) -> bool:
    return key_lt(a, b) or key_eq(a, b)


@dataclass(frozen=True)
class Interval:
    """An interval with optional payload, used as the index's marker unit.

    ``payload`` identifies the client object the interval stands for (an
    α-memory node in the selection predicate index); two predicates with
    identical bounds but different payloads are distinct intervals.
    """

    low: object
    high: object
    low_closed: bool = True
    high_closed: bool = True
    payload: Hashable = None

    def __post_init__(self):
        if key_lt(self.high, self.low):
            raise ValueError(f"empty interval: {self}")
        if key_eq(self.low, self.high) and not (self.low_closed
                                                and self.high_closed):
            raise ValueError(f"empty interval: {self}")

    @classmethod
    def point(cls, value, payload: Hashable = None) -> "Interval":
        """The degenerate interval [value, value] (an ``=`` predicate)."""
        return cls(value, value, True, True, payload)

    @classmethod
    def at_least(cls, low, closed: bool = True,
                 payload: Hashable = None) -> "Interval":
        """``low <(=) x``: one-sided interval unbounded above."""
        return cls(low, POS_INF, closed, False, payload)

    @classmethod
    def at_most(cls, high, closed: bool = True,
                payload: Hashable = None) -> "Interval":
        """``x <(=) high``: one-sided interval unbounded below."""
        return cls(NEG_INF, high, False, closed, payload)

    @classmethod
    def everything(cls, payload: Hashable = None) -> "Interval":
        """The interval containing every value."""
        return cls(NEG_INF, POS_INF, False, False, payload)

    def contains_value(self, value) -> bool:
        """True if ``value`` lies inside this interval."""
        if key_lt(value, self.low) or key_lt(self.high, value):
            return False
        if key_eq(value, self.low) and not self.low_closed:
            return False
        if key_eq(value, self.high) and not self.high_closed:
            return False
        return True

    def contains_interval(self, low, high) -> bool:
        """True if the *closed* interval [low, high] lies inside this one."""
        if key_lt(low, self.low) or key_lt(self.high, high):
            return False
        if key_eq(low, self.low) and not self.low_closed:
            return False
        if key_eq(high, self.high) and not self.high_closed:
            return False
        return True

    def contains_open_interval(self, low, high) -> bool:
        """True if the *open* interval (low, high) lies inside this one.

        Used for markers on bottom-level index edges, whose interior
        excludes both endpoint keys.
        """
        return key_le(self.low, low) and key_le(high, self.high)

    def __str__(self) -> str:
        lo = "[" if self.low_closed else "("
        hi = "]" if self.high_closed else ")"
        return f"{lo}{self.low!r}, {self.high!r}{hi}"
