"""The interval skip list (Hanson 1991).

A skip list whose nodes are the distinct interval endpoints and whose edges
and nodes carry *markers*: interval ``I`` marks edge ``(a, b)`` when the
open interval ``(a.key, b.key)`` lies inside ``I`` and the edge is on the
canonical "staircase" of highest such edges from ``I``'s left endpoint node
to its right endpoint node; a node additionally holds ``I`` in its
``eq_markers`` when ``I`` contains the node's key.  A stabbing query for
``K`` then simply walks the ordinary skip-list search path: every marker on
a traversed "drop" edge contains ``K``, and if the search lands exactly on
a node with key ``K`` that node's ``eq_markers`` is the complete answer.

Marker *placement* follows Hanson's ``placeMarkers`` (ascend to the highest
contained edges, then descend to the right endpoint).  For marker
*maintenance* under endpoint-node insertion and deletion we use an
unmark/re-place strategy instead of Hanson's incremental
``adjustMarkersOnInsert``/``OnDelete``: the only intervals whose markers can
touch an edge spanning a key ``x`` are intervals *containing* ``x`` (any
marked edge's interior is inside the interval), and those are exactly the
result of a stabbing query for ``x`` — so before splicing a node in or out
we unmark that set and afterwards re-place it.  This yields the identical
marker layout the incremental algorithm maintains (placement is
deterministic given the node structure), with the same query cost; node
insertion pays O((overlap+1)·log n) instead of amortised O(log n), which
is immaterial at the rule counts the paper evaluates (25–200).
"""

from __future__ import annotations

import random
from typing import Hashable, Iterable

from repro.intervals.interval import Interval, key_eq, key_lt

_MAX_LEVEL = 32


class _Node:
    """A skip-list node for one distinct endpoint key."""

    __slots__ = ("key", "forward", "markers", "eq_markers", "owner_count")

    def __init__(self, key, level: int):
        self.key = key
        #: next node per level; len(forward) == node level
        self.forward: list[_Node | None] = [None] * level
        #: markers on the outgoing edge at each level
        self.markers: list[set[Interval]] = [set() for _ in range(level)]
        #: intervals containing this node's key
        self.eq_markers: set[Interval] = set()
        #: number of stored interval endpoints located at this key
        self.owner_count = 0

    @property
    def level(self) -> int:
        return len(self.forward)

    def __repr__(self) -> str:
        return f"_Node({self.key!r}, level={self.level})"


class IntervalSkipList:
    """Dynamic stabbing-query index over intervals.

    Intervals are :class:`~repro.intervals.interval.Interval` records;
    identical bounds with distinct payloads coexist.  The structure is the
    top level of Ariel's discrimination network: payloads are rule α-memory
    nodes and ``stab(v)`` finds every selection predicate satisfied by an
    attribute value ``v``.
    """

    def __init__(self, seed: int | None = None):
        self._rng = random.Random(seed)
        self._header = _Node(object(), _MAX_LEVEL)
        self._level = 1          # current highest level in use
        self._intervals: set[Interval] = set()
        self._node_count = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def insert(self, interval: Interval) -> None:
        """Add an interval to the index."""
        if interval in self._intervals:
            raise ValueError(f"interval already present: {interval}")
        left = self._ensure_node(interval.low)
        right = (left if key_eq(interval.high, interval.low)
                 else self._ensure_node(interval.high))
        left.owner_count += 1
        right.owner_count += 1
        self._place_markers(left, interval)
        self._intervals.add(interval)

    def remove(self, interval: Interval) -> None:
        """Remove a previously inserted interval."""
        if interval not in self._intervals:
            raise ValueError(f"interval not present: {interval}")
        self._intervals.remove(interval)
        left = self._find_node(interval.low)
        right = (left if key_eq(interval.high, interval.low)
                 else self._find_node(interval.high))
        self._remove_markers(left, interval)
        left.owner_count -= 1
        right.owner_count -= 1
        for node in (left, right):
            if node.owner_count == 0:
                self._delete_node(node)

    def stab(self, value) -> set[Interval]:
        """Every stored interval containing ``value``.

        ``value`` must be an actual attribute value (not None and not an
        infinity sentinel).
        """
        if value is None:
            raise ValueError("cannot stab with a null value")
        result: set[Interval] = set()
        x = self._header
        for lvl in range(self._level - 1, -1, -1):
            nxt = x.forward[lvl]
            while nxt is not None and key_lt(nxt.key, value):
                x = nxt
                nxt = x.forward[lvl]
            if nxt is not None and key_eq(nxt.key, value):
                # Landed exactly on a node: its eq_markers is the complete
                # set of intervals containing the key.
                result |= nxt.eq_markers
                return result
            # Drop edge (x, nxt) at lvl: x.key < value < nxt.key, so every
            # marker on the edge contains value.
            result |= x.markers[lvl]
        return result

    def stab_payloads(self, value) -> set[Hashable]:
        """Payloads of every interval containing ``value``."""
        return {iv.payload for iv in self.stab(value)}

    def __contains__(self, interval: Interval) -> bool:
        return interval in self._intervals

    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self) -> Iterable[Interval]:
        return iter(self._intervals)

    @property
    def node_count(self) -> int:
        """Number of distinct endpoint nodes (diagnostics/benchmarks)."""
        return self._node_count

    def marker_count(self) -> int:
        """Total markers stored on edges and nodes (space diagnostics)."""
        total = 0
        x = self._header.forward[0]
        while x is not None:
            total += len(x.eq_markers)
            total += sum(len(s) for s in x.markers)
            x = x.forward[0]
        return total

    def check_invariants(self) -> None:
        """Verify marker soundness; raises AssertionError on violation.

        Used by tests: every edge marker's interval must contain the open
        edge interval, every eq marker's interval must contain the node key,
        and keys must be strictly increasing along level 0.
        """
        x = self._header
        prev_key = None
        node = x.forward[0]
        while node is not None:
            if prev_key is not None:
                assert key_lt(prev_key, node.key), "keys out of order"
            prev_key = node.key
            for iv in node.eq_markers:
                assert iv.contains_value(node.key), (
                    f"eq marker {iv} does not contain {node.key!r}")
            for lvl in range(node.level):
                nxt = node.forward[lvl]
                for iv in node.markers[lvl]:
                    assert nxt is not None, "marker on edge to nothing"
                    assert iv.contains_open_interval(node.key, nxt.key), (
                        f"edge marker {iv} does not contain "
                        f"({node.key!r}, {nxt.key!r})")
            node = node.forward[0]

    # ------------------------------------------------------------------
    # node management
    # ------------------------------------------------------------------

    def _random_level(self) -> int:
        level = 1
        while level < _MAX_LEVEL and self._rng.random() < 0.5:
            level += 1
        return level

    def _find_node(self, key) -> _Node:
        x = self._header
        for lvl in range(self._level - 1, -1, -1):
            while (x.forward[lvl] is not None
                   and key_lt(x.forward[lvl].key, key)):
                x = x.forward[lvl]
        nxt = x.forward[0]
        if nxt is None or not key_eq(nxt.key, key):
            raise KeyError(f"no node with key {key!r}")
        return nxt

    def _predecessors(self, key) -> list[_Node]:
        """Per level, the rightmost node with key strictly below ``key``."""
        update: list[_Node] = [self._header] * _MAX_LEVEL
        x = self._header
        for lvl in range(self._level - 1, -1, -1):
            while (x.forward[lvl] is not None
                   and key_lt(x.forward[lvl].key, key)):
                x = x.forward[lvl]
            update[lvl] = x
        return update

    def _ensure_node(self, key) -> _Node:
        """Return the node for ``key``, creating it (and re-placing the
        markers of every interval containing ``key``) if necessary."""
        update = self._predecessors(key)
        candidate = update[0].forward[0]
        if candidate is not None and key_eq(candidate.key, key):
            return candidate
        affected = list(self.stab_raw(key))
        for iv in affected:
            self._remove_markers(self._find_node(iv.low), iv)
        level = self._random_level()
        if level > self._level:
            self._level = level
        node = _Node(key, level)
        for lvl in range(level):
            node.forward[lvl] = update[lvl].forward[lvl]
            update[lvl].forward[lvl] = node
        self._node_count += 1
        for iv in affected:
            self._place_markers(self._find_node(iv.low), iv)
        return node

    def _delete_node(self, node: _Node) -> None:
        """Unsplice an ownerless node, re-placing markers that crossed it."""
        affected = [iv for iv in node.eq_markers if iv in self._intervals]
        for iv in affected:
            self._remove_markers(self._find_node(iv.low), iv)
        update = self._predecessors(node.key)
        for lvl in range(node.level):
            # The predecessor's forward pointer at lvl must be this node.
            update[lvl].forward[lvl] = node.forward[lvl]
        while (self._level > 1
               and self._header.forward[self._level - 1] is None):
            self._level -= 1
        self._node_count -= 1
        for iv in affected:
            self._place_markers(self._find_node(iv.low), iv)

    def stab_raw(self, key) -> set[Interval]:
        """Stab allowing sentinel keys (used for internal maintenance)."""
        result: set[Interval] = set()
        x = self._header
        for lvl in range(self._level - 1, -1, -1):
            nxt = x.forward[lvl]
            while nxt is not None and key_lt(nxt.key, key):
                x = nxt
                nxt = x.forward[lvl]
            if nxt is not None and key_eq(nxt.key, key):
                result |= nxt.eq_markers
                return result
            result |= x.markers[lvl]
        return result

    # ------------------------------------------------------------------
    # marker placement (Hanson's placeMarkers, open-edge containment)
    # ------------------------------------------------------------------

    def _place_markers(self, left: _Node, iv: Interval) -> None:
        self._walk_staircase(left, iv, add=True)

    def _remove_markers(self, left: _Node, iv: Interval) -> None:
        self._walk_staircase(left, iv, add=False)

    def _walk_staircase(self, left: _Node, iv: Interval, add: bool) -> None:
        """Mark (or unmark) the canonical staircase of ``iv``.

        The walk is deterministic given the node structure, so removal
        retraces placement exactly.
        """
        x = left
        self._mark_node(x, iv, add)
        if key_eq(iv.low, iv.high):
            return                       # point interval: eq marker only
        i = 0
        # Ascend: take the highest outgoing edge contained in iv.
        while (x.forward[i] is not None
               and iv.contains_open_interval(x.key, x.forward[i].key)
               and not key_eq(x.key, iv.high)):
            while (i < x.level - 1
                   and x.forward[i + 1] is not None
                   and iv.contains_open_interval(x.key,
                                                 x.forward[i + 1].key)):
                i += 1
            self._mark_edge(x, i, iv, add)
            x = x.forward[i]
            self._mark_node(x, iv, add)
        # Descend: drop to edges that stay inside iv until the right end.
        while not key_eq(x.key, iv.high):
            while i > 0 and (x.forward[i] is None
                             or not iv.contains_open_interval(
                                 x.key, x.forward[i].key)):
                i -= 1
            self._mark_edge(x, i, iv, add)
            x = x.forward[i]
            self._mark_node(x, iv, add)

    def _mark_node(self, node: _Node, iv: Interval, add: bool) -> None:
        if iv.contains_value(node.key):
            if add:
                node.eq_markers.add(iv)
            else:
                node.eq_markers.discard(iv)

    @staticmethod
    def _mark_edge(node: _Node, lvl: int, iv: Interval, add: bool) -> None:
        if add:
            node.markers[lvl].add(iv)
        else:
            node.markers[lvl].discard(iv)
