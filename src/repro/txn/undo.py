"""Undo logging for transaction abort.

Every mutation that flows through the transition hooks is logged here as
a physical inverse.  Abort replays the inverses in reverse order —
*through the hooks*, so the discrimination network sees compensating
tokens and α-memories / P-nodes stay consistent with the data (the paper
delegates recovery to EXODUS; this is the equivalent for our in-memory
engine, documented in DESIGN.md).  Rule firing is suppressed while the
undo replays.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.tuples import TupleId


@dataclass(frozen=True)
class UndoRecord:
    """One logged mutation: enough to invert it."""

    op: str                   # 'insert' | 'delete' | 'replace'
    relation: str
    tid: TupleId
    before: tuple | None      # values before (delete/replace)
    after: tuple | None       # values after (insert/replace)


class UndoLog:
    """An append-only log of mutations for the open transaction."""

    def __init__(self):
        self._records: list[UndoRecord] = []
        self.enabled = False

    def begin(self) -> None:
        self._records.clear()
        self.enabled = True

    def commit(self) -> None:
        self._records.clear()
        self.enabled = False

    def record_insert(self, relation: str, tid: TupleId,
                      values: tuple) -> None:
        if self.enabled:
            self._records.append(
                UndoRecord("insert", relation, tid, None, values))

    def record_delete(self, relation: str, tid: TupleId,
                      values: tuple) -> None:
        if self.enabled:
            self._records.append(
                UndoRecord("delete", relation, tid, values, None))

    def record_replace(self, relation: str, tid: TupleId,
                       before: tuple, after: tuple) -> None:
        if self.enabled:
            self._records.append(
                UndoRecord("replace", relation, tid, before, after))

    def take_reversed(self) -> list[UndoRecord]:
        """The records to undo, newest first; the log is cleared."""
        out = list(reversed(self._records))
        self._records.clear()
        self.enabled = False
        return out

    def __len__(self) -> int:
        return len(self._records)
