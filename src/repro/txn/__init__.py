"""Transitions and transactions.

A *transition* is "the changes in the database induced by either a single
command, or a do … end block" (paper section 2.2.1) — the granularity at
which rules wake up.  A *transaction* groups transitions with
all-or-nothing undo.
"""

from repro.txn.transitions import TransitionHooks
from repro.txn.undo import UndoLog

__all__ = ["TransitionHooks", "UndoLog"]
