"""Transition hooks: the coupling between update processing and rules.

These :class:`~repro.executor.executor.MutationHooks` are what make the
engine *active*: every insert/delete/replace (1) applies to the heap,
(2) is logged for undo, (3) updates the per-transition Δ-sets, which
classify it into the paper's logical-event cases and emit tokens, and
(4) routes those tokens through the discrimination network — all before
control returns to the executor.  This is the tight coupling of rule
condition testing with query and update processing the paper emphasises.
"""

from __future__ import annotations

from typing import Callable

from repro.catalog.catalog import Catalog
from repro.core.deltasets import DeltaSets
from repro.core.tokens import Token
from repro.executor.executor import MutationHooks
from repro.storage.tuples import TupleId
from repro.txn.undo import UndoLog


class TransitionHooks(MutationHooks):
    """Heap mutation + undo logging + Δ-sets + token routing."""

    def __init__(self, catalog: Catalog, deltasets: DeltaSets,
                 route_token: Callable[[Token], None],
                 undo: UndoLog | None = None):
        self.catalog = catalog
        self.deltasets = deltasets
        self.route_token = route_token
        # "undo or UndoLog()" would discard a passed-in empty log, since
        # UndoLog defines __len__ and an empty log is falsy.
        self.undo = undo if undo is not None else UndoLog()
        #: diagnostics: tokens generated since construction
        self.tokens_generated = 0

    def insert(self, relation_name: str, values: tuple) -> TupleId:
        relation = self.catalog.relation(relation_name)
        tid = relation.insert(values)
        stored = relation.get(tid)       # values after coercion
        self.undo.record_insert(relation_name, tid, stored)
        self._route(self.deltasets.record_insert(relation_name, tid,
                                                 stored))
        return tid

    def delete(self, relation_name: str, tid: TupleId) -> tuple:
        relation = self.catalog.relation(relation_name)
        values = relation.delete(tid)
        self.undo.record_delete(relation_name, tid, values)
        self._route(self.deltasets.record_delete(relation_name, tid,
                                                 values))
        return values

    def replace(self, relation_name: str, tid: TupleId,
                new_values: tuple) -> tuple:
        relation = self.catalog.relation(relation_name)
        old_values = relation.replace(tid, new_values)
        stored = relation.get(tid)
        if stored == old_values:
            # A no-op overwrite is not a modification: no tokens, no
            # undo — the logical state did not change.
            return old_values
        self.undo.record_replace(relation_name, tid, old_values, stored)
        self._route(self.deltasets.record_modify(relation_name, tid,
                                                 old_values, stored))
        return old_values

    def restore(self, relation_name: str, tid: TupleId,
                values: tuple) -> None:
        """Re-create a deleted tuple under its original TID (undo only).

        Routed through the Δ-sets as an insertion so the network stays
        consistent; the undo driver disables further logging itself.
        """
        relation = self.catalog.relation(relation_name)
        relation.restore(tid, values)
        self._route(self.deltasets.record_insert(relation_name, tid,
                                                 values))

    def _route(self, tokens: list[Token]) -> None:
        for token in tokens:
            self.tokens_generated += 1
            self.route_token(token)
