"""Transition hooks: the coupling between update processing and rules.

These :class:`~repro.executor.executor.MutationHooks` are what make the
engine *active*: every insert/delete/replace (1) applies to the heap,
(2) is logged for undo, (3) updates the per-transition Δ-sets, which
classify it into the paper's logical-event cases and emit tokens, and
(4) routes those tokens through the discrimination network — all before
control returns to the executor.  This is the tight coupling of rule
condition testing with query and update processing the paper emphasises.

Token routing is set-oriented: each mutation's token group is handed to
the network's batched :meth:`~repro.core.network.DiscriminationNetwork
.process_tokens` entry point, and with ``defer_routing`` enabled the
groups of a whole transition accumulate and flush as one batch at the
transition boundary (``Database(batch_tokens=True)``), which is where
the per-relation probe dispatch and batch memoization pay off.
:meth:`TransitionHooks.insert_many` is the bulk-append fast path: it
applies every heap insert first and routes the combined Δ-set once.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.catalog.catalog import Catalog
from repro.core.deltasets import DeltaSets
from repro.core.tokens import Token
from repro.executor.executor import MutationHooks
from repro.observe import NULL_STATS
from repro.storage.tuples import TupleId
from repro.txn.undo import UndoLog


class TransitionHooks(MutationHooks):
    """Heap mutation + undo logging + Δ-sets + token routing."""

    #: engine counter registry (``tokens.generated``); the Database
    #: replaces the shared disabled default with its registry
    stats = NULL_STATS
    #: trace hub for ``token_routed`` events (set by the Database)
    trace = None
    #: durability journal (a :class:`~repro.txn.durability
    #: .DurabilityManager`, set by a durable Database): every heap
    #: mutation is reported here so the WAL is an exact redo history
    journal = None

    def __init__(self, catalog: Catalog, deltasets: DeltaSets,
                 route_token: Callable[[Token], None],
                 undo: UndoLog | None = None,
                 route_tokens: Callable[[Sequence[Token]], None]
                 | None = None,
                 defer_routing: bool = False):
        self.catalog = catalog
        self.deltasets = deltasets
        self.route_token = route_token
        self.route_tokens = route_tokens
        # "undo or UndoLog()" would discard a passed-in empty log, since
        # UndoLog defines __len__ and an empty log is falsy.
        self.undo = undo if undo is not None else UndoLog()
        #: buffer whole-transition Δ-sets and route them as one batch at
        #: :meth:`flush_tokens` time (the transaction layer calls it at
        #: every transition boundary) instead of per mutation
        self.defer_routing = defer_routing
        self._buffer: list[Token] = []
        #: diagnostics: tokens generated since construction
        self.tokens_generated = 0

    def insert(self, relation_name: str, values: tuple) -> TupleId:
        relation = self.catalog.relation(relation_name)
        tid = relation.insert(values)
        stored = relation.get(tid)       # values after coercion
        self.undo.record_insert(relation_name, tid, stored)
        if self.journal is not None:
            self.journal.journal_insert(relation_name, stored)
        self._route(self.deltasets.record_insert(relation_name, tid,
                                                 stored))
        return tid

    def insert_many(self, relation_name: str,
                    rows: Iterable[tuple]) -> list[TupleId]:
        """Bulk append: apply every heap insert, then route the whole
        Δ-set through the network as a single batch."""
        relation = self.catalog.relation(relation_name)
        pairs = relation.insert_many(rows)
        if self.undo.enabled:
            record_undo = self.undo.record_insert
            for tid, stored in pairs:
                record_undo(relation_name, tid, stored)
        if self.journal is not None:
            for _, stored in pairs:
                self.journal.journal_insert(relation_name, stored)
        self._route(self.deltasets.record_insert_many(relation_name,
                                                      pairs))
        return [tid for tid, _ in pairs]

    def delete(self, relation_name: str, tid: TupleId) -> tuple:
        relation = self.catalog.relation(relation_name)
        values = relation.delete(tid)
        self.undo.record_delete(relation_name, tid, values)
        if self.journal is not None:
            self.journal.journal_delete(relation_name, values)
        self._route(self.deltasets.record_delete(relation_name, tid,
                                                 values))
        return values

    def replace(self, relation_name: str, tid: TupleId,
                new_values: tuple) -> tuple:
        relation = self.catalog.relation(relation_name)
        old_values = relation.replace(tid, new_values)
        stored = relation.get(tid)
        if stored == old_values:
            # A no-op overwrite is not a modification: no tokens, no
            # undo — the logical state did not change.
            return old_values
        self.undo.record_replace(relation_name, tid, old_values, stored)
        if self.journal is not None:
            self.journal.journal_replace(relation_name, old_values,
                                         stored)
        self._route(self.deltasets.record_modify(relation_name, tid,
                                                 old_values, stored))
        return old_values

    def restore(self, relation_name: str, tid: TupleId,
                values: tuple) -> None:
        """Re-create a deleted tuple under its original TID (undo only).

        Routed through the Δ-sets as an insertion so the network stays
        consistent; the undo driver disables further logging itself.
        """
        relation = self.catalog.relation(relation_name)
        relation.restore(tid, values)
        if self.journal is not None:
            self.journal.journal_insert(relation_name, values)
        self._route(self.deltasets.record_insert(relation_name, tid,
                                                 values))

    def relation_created(self, relation_name: str, schema) -> None:
        """A relation came into being outside DDL dispatch (``retrieve
        into``): register its schema with the Δ-sets and journal an
        equivalent ``create`` so WAL replay can rebuild it."""
        self.deltasets.register_schema(relation_name, schema)
        if self.journal is not None:
            self.journal.journal_relation_created(relation_name, schema)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def flush_tokens(self) -> None:
        """Route any deferred tokens (a no-op unless ``defer_routing``).

        Must run before anything reads the network — the transaction
        layer calls it at every transition boundary, ahead of the
        recognize-act cycle.
        """
        if self._buffer:
            buffered, self._buffer = self._buffer, []
            self._dispatch(buffered)

    def take_buffered_tokens(self) -> list[Token]:
        """Detach and return the deferred-token buffer without routing
        it (benchmark/diagnostic hook: lets a caller replay a captured
        Δ-set through an alternative propagation path)."""
        buffered, self._buffer = self._buffer, []
        return buffered

    def _route(self, tokens: list[Token]) -> None:
        if not tokens:
            return
        self.tokens_generated += len(tokens)
        if self.stats.enabled:
            self.stats.bump("tokens.generated", len(tokens))
        if self.defer_routing:
            self._buffer.extend(tokens)
            return
        self._dispatch(tokens)

    def _dispatch(self, tokens: list[Token]) -> None:
        trace = self.trace
        if trace is not None and trace.wants("token_routed"):
            for token in tokens:
                trace.emit("token_routed", {
                    "relation": token.relation,
                    "kind": token.kind.name,
                    "tid": token.tid,
                    "values": token.values,
                })
        if self.route_tokens is not None:
            self.route_tokens(tokens)
            return
        for token in tokens:
            self.route_token(token)
