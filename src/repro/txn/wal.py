"""Append-only, checksummed write-ahead log of committed transitions.

The log is *logical* and *redo-only*: each record holds the mutations of
one durably-committed transition (or one DDL / rule-lifecycle
statement), not page images.  Replaying the checkpoint script plus every
WAL record in order reconstructs the exact heap — and, because replay
re-routes tokens with rules suspended, the exact α-memories and P-nodes
(see :meth:`repro.db.Database.recover`).

Record framing::

    <length:u32-le> <crc32:u32-le> <payload: length bytes of UTF-8 JSON>

The first record of every log is a generation header
``{"gen": N}`` tying it to checkpoint generation ``N`` (the checkpoint
protocol bumps the generation so a crash between the two renames cannot
pair a new checkpoint with a stale log, or vice versa).  Every
subsequent record is a JSON list of entries:

* ``["i", relation, [values...]]`` — insert
* ``["d", relation, [values...]]`` — delete (located by value at replay)
* ``["r", relation, [before...], [after...]]`` — replace
* ``["stmt", text]`` — a DDL or rule-lifecycle command, replayed through
  the normal dispatcher

Values are encoded with :func:`repro.lang.literals.encode_literal`, the
same total codec the dump format uses, so any storable value (including
``nan``, ``inf`` and strings with control characters) round-trips.

Tail handling on open: a record whose header or payload is cut short by
end-of-file, or whose final record fails its CRC, is a *torn tail* —
the write that was in flight when the process died — and is truncated
away.  A bad record with further data *after* it cannot be a torn tail
and raises :class:`~repro.errors.WalCorruptError`.

Write errors: transient ``OSError`` during append or fsync is retried
with exponential backoff (any partial write is truncated away first so
a retry never duplicates bytes).  When retries are exhausted the log
raises :class:`~repro.errors.DurabilityError`; the database reacts by
degrading to read-only mode.

fsync policy (``fsync=``):

``"always"``   fsync after every record.
``"commit"``   flush every record; fsync only at commit / transition
               boundaries (``sync=True`` appends).  The default.
``"never"``    flush only, never fsync.  Durability against process
               crash but not OS crash; the benchmark mode.
"""

from __future__ import annotations

import json
import os
import struct
import time
import zlib

from repro.errors import DurabilityError, WalCorruptError
from repro.lang.literals import encode_literal, parse_literal
from repro.observe import NULL_STATS

#: record header: payload length, CRC32 of payload
_HEADER = struct.Struct("<II")

FSYNC_POLICIES = ("always", "commit", "never")


def encode_values(values) -> list:
    """Tuple values as a JSON-safe list of ARL literal strings."""
    return [encode_literal(v) for v in values]


def decode_values(encoded) -> tuple:
    """Inverse of :func:`encode_values`."""
    return tuple(parse_literal(text) for text in encoded)


class WriteAheadLog:
    """One append-only log file of transition records."""

    def __init__(self, path, *, fsync: str = "commit", stats=NULL_STATS,
                 faults=None, retry_limit: int = 5,
                 retry_backoff: float = 0.01, sleep=time.sleep):
        if fsync not in FSYNC_POLICIES:
            raise DurabilityError(
                f"unknown fsync policy {fsync!r}; "
                f"expected one of {FSYNC_POLICIES}", path=path)
        self.path = os.fspath(path)
        self.fsync_policy = fsync
        self.stats = stats
        self.faults = faults
        self.retry_limit = retry_limit
        self.retry_backoff = retry_backoff
        self._sleep = sleep
        self._file = None
        self.generation = 0
        self.data_records = 0   # records appended or replayed, sans header

    # ------------------------------------------------------------------
    # lifecycle

    def create(self, generation: int) -> None:
        """Start a fresh log containing only the generation header."""
        self._file = open(self.path, "wb")
        self.generation = generation
        self.data_records = 0
        payload = json.dumps({"gen": generation}).encode("utf-8")
        self._file.write(_HEADER.pack(len(payload), zlib.crc32(payload)))
        self._file.write(payload)
        self._file.flush()
        if self.fsync_policy != "never":
            os.fsync(self._file.fileno())

    def open(self) -> list:
        """Open an existing log, validating and collecting its records.

        Returns the decoded data records (header excluded).  A torn
        final record is truncated; corruption earlier in the file
        raises :class:`WalCorruptError`.
        """
        with open(self.path, "rb") as f:
            data = f.read()
        records, valid_end = self._scan(data)
        if not records or not isinstance(records[0], dict) \
                or "gen" not in records[0]:
            raise WalCorruptError("missing generation header",
                                  path=self.path, offset=0)
        self.generation = records[0]["gen"]
        if valid_end < len(data):
            # torn tail: drop the half-written final record
            with open(self.path, "r+b") as f:
                f.truncate(valid_end)
        self._file = open(self.path, "ab")
        self.data_records = len(records) - 1
        return records[1:]

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def _scan(self, data: bytes):
        """Decode ``data`` into records; returns (records, valid_end)."""
        records = []
        pos = 0
        while pos < len(data):
            if pos + _HEADER.size > len(data):
                break   # torn header
            length, crc = _HEADER.unpack_from(data, pos)
            end = pos + _HEADER.size + length
            if end > len(data):
                break   # torn payload
            payload = data[pos + _HEADER.size:end]
            if zlib.crc32(payload) != crc:
                if end == len(data):
                    break   # bad final record == torn tail
                raise WalCorruptError("record checksum mismatch",
                                      path=self.path, offset=pos)
            try:
                records.append(json.loads(payload.decode("utf-8")))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                if end == len(data):
                    break
                raise WalCorruptError(f"undecodable record: {exc}",
                                      path=self.path, offset=pos) from exc
            pos = end
        return records, pos

    # ------------------------------------------------------------------
    # writing

    def append(self, entries: list, *, sync: bool) -> None:
        """Durably append one record of ``entries``.

        ``sync=True`` marks a commit / transition boundary; whether that
        (or anything) actually fsyncs depends on the policy.  Raises
        :class:`DurabilityError` once transient-error retries are
        exhausted — the caller is expected to degrade.
        """
        payload = json.dumps(entries, separators=(",", ":"),
                             ensure_ascii=False).encode("utf-8")
        record = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        self._write_with_retry(record)
        self.data_records += 1
        self.stats.bump("wal.records")
        self._maybe_fsync(boundary=sync)

    def _write_with_retry(self, record: bytes) -> None:
        start = self._file.tell()
        if self.faults is not None:
            fraction = self.faults.torn_fraction("wal.append")
            if fraction is not None:
                # simulate the process dying mid-write: emit a prefix of
                # the record, make it reach the file, then "crash"
                self._file.write(record[:max(1, int(len(record)
                                                    * fraction))])
                self._file.flush()
                self.faults.hit("wal.append")
        delay = self.retry_backoff
        for attempt in range(self.retry_limit + 1):
            try:
                if self.faults is not None:
                    self.faults.hit("wal.append")
                self._file.write(record)
                self._file.flush()
                return
            except OSError:
                # undo any partial write so a retry never duplicates
                try:
                    self._file.seek(start)
                    self._file.truncate(start)
                except OSError:
                    pass
                if attempt == self.retry_limit:
                    raise DurabilityError(
                        f"WAL append failed after "
                        f"{self.retry_limit + 1} attempts",
                        path=self.path, offset=start) from None
                self.stats.bump("wal.retries")
                self._sleep(delay)
                delay *= 2

    def _maybe_fsync(self, *, boundary: bool) -> None:
        if self.fsync_policy == "never":
            return
        if self.fsync_policy == "commit" and not boundary:
            return
        delay = self.retry_backoff
        for attempt in range(self.retry_limit + 1):
            try:
                if self.faults is not None:
                    self.faults.hit("wal.fsync")
                os.fsync(self._file.fileno())
                self.stats.bump("wal.fsyncs")
                return
            except OSError:
                if attempt == self.retry_limit:
                    raise DurabilityError(
                        f"WAL fsync failed after "
                        f"{self.retry_limit + 1} attempts",
                        path=self.path) from None
                self.stats.bump("wal.retries")
                self._sleep(delay)
                delay *= 2
