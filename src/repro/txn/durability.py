"""Durability coordination: journaling, checkpoints, degraded mode.

:class:`DurabilityManager` sits between the :class:`~repro.db.Database`
and its :class:`~repro.txn.wal.WriteAheadLog`.  It buffers the logical
mutations of the transition in flight (the transition hooks report every
heap change here via their ``journal`` attribute — including undo-replay
compensations, so the log is an exact redo history of the heap) and
writes them as one WAL record when the database signals a durable
boundary: implicit-transition completion, explicit ``commit``, or the
settling after a failed transition.  DDL and rule-lifecycle statements
are journaled as deparsed command text in their own records, flushed
*ahead* of any later mutations so replay order matches execution order.

Checkpointing bounds the log.  The protocol survives a crash at any
step because generation numbers pair each checkpoint with its log:

1. write ``wal.log.new`` holding only a generation ``g+1`` header;
2. write ``checkpoint.arl.tmp`` — a ``-- wal-generation: g+1`` line and
   the :func:`repro.persist.dumps` script — then atomically rename it
   over ``checkpoint.arl``;
3. atomically rename ``wal.log.new`` over ``wal.log``.

A crash before step 2's rename leaves the old pair intact (orphan
``.tmp``/``.new`` files are deleted at recovery); a crash between the
renames leaves a new checkpoint with a stale (generation ``g``) log,
which recovery detects by the generation mismatch and discards.

When the WAL exhausts its write retries the manager flips to *degraded*
mode: reads keep working, every subsequent write attempt raises
:class:`~repro.errors.DegradedError`, and the WAL is left exactly at the
last durable boundary, so the recovery guarantee (the durably-committed
prefix) still holds.
"""

from __future__ import annotations

import os
import pathlib
import time

from repro.errors import (
    DegradedError, DurabilityError, WalCorruptError)
from repro.txn.wal import WriteAheadLog, encode_values

CHECKPOINT_NAME = "checkpoint.arl"
WAL_NAME = "wal.log"
_GENERATION_PREFIX = "-- wal-generation: "


class DurabilityManager:
    """Durable-state coordinator for one database.

    ``mode="fresh"`` starts a new durable directory (and refuses one
    that already holds state — that is :meth:`repro.db.Database.recover`
    territory); ``mode="recover"`` analyzes the directory and leaves
    the checkpoint script and the WAL's surviving records in
    :attr:`pending_script` / :attr:`pending_replay` for the database
    to replay before it attaches the manager.
    """

    def __init__(self, db, path, *, fsync: str = "commit",
                 checkpoint_every: int = 1000, retry_limit: int = 5,
                 retry_backoff: float = 0.01, sleep=time.sleep,
                 mode: str = "fresh", quiesce=None):
        self.db = db
        #: merge-then-flush ordering hook: called at the top of every
        #: :meth:`flush_boundary`, before the buffered record is
        #: written.  The database points this at the transition hooks'
        #: ``flush_tokens`` so any deferred token propagation —
        #: including a sharded batch's parallel match and deterministic
        #: merge — settles *before* the boundary's WAL record goes out.
        #: Propagation never journals (mutations journal at heap-change
        #: time, ahead of routing), so the quiesce can only add network
        #: state, never reorder or extend the record being flushed.
        self.quiesce = quiesce
        self.dir = pathlib.Path(path)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.checkpoint_every = checkpoint_every
        self.checkpoint_path = self.dir / CHECKPOINT_NAME
        self.wal_path = self.dir / WAL_NAME
        #: reason the database degraded to read-only, or None
        self.degraded: str | None = None
        #: a simulated crash ended this instance; journaling stopped
        self.crashed = False
        self._buffer: list = []
        self._wal_kwargs = dict(fsync=fsync, stats=db.stats,
                                faults=db.faults, retry_limit=retry_limit,
                                retry_backoff=retry_backoff, sleep=sleep)
        self.wal = WriteAheadLog(self.wal_path, **self._wal_kwargs)
        self.pending_script: str | None = None
        self.pending_replay: list = []
        if mode == "fresh":
            self._start_fresh()
        else:
            self.pending_script, self.pending_replay = self._analyze()

    @property
    def pending_records(self) -> int:
        """Journal entries buffered ahead of the next durable boundary.

        The supported status surface for callers (``Database.wal_info``,
        the serving status endpoint) — the buffer itself is private.
        """
        return len(self._buffer)

    # ------------------------------------------------------------------
    # startup

    def _start_fresh(self) -> None:
        if self.checkpoint_path.exists():
            raise DurabilityError(
                "durable state already present; use Database.recover",
                path=self.checkpoint_path)
        if self.wal_path.exists():
            if self.wal.open():
                raise DurabilityError(
                    "write-ahead log already holds records; "
                    "use Database.recover", path=self.wal_path)
        else:
            self.wal.create(1)

    def _analyze(self):
        """Crash analysis: returns ``(checkpoint_script, wal_records)``
        and leaves the WAL open for appending at the right generation."""
        for orphan in (pathlib.Path(str(self.checkpoint_path) + ".tmp"),
                       pathlib.Path(str(self.wal_path) + ".new")):
            try:
                orphan.unlink()
            except FileNotFoundError:
                pass
        script = ""
        checkpoint_generation = 1
        if self.checkpoint_path.exists():
            text = self.checkpoint_path.read_text()
            header, _, script = text.partition("\n")
            if not header.startswith(_GENERATION_PREFIX):
                raise WalCorruptError("checkpoint missing generation "
                                      "header", path=self.checkpoint_path,
                                      offset=0)
            try:
                checkpoint_generation = int(
                    header[len(_GENERATION_PREFIX):])
            except ValueError:
                raise WalCorruptError(
                    "unreadable checkpoint generation",
                    path=self.checkpoint_path, offset=0) from None
        if not self.wal_path.exists():
            # the log was lost but the checkpoint survives; start a
            # fresh log paired with it
            self.wal.create(checkpoint_generation)
            return script, []
        records = self.wal.open()
        if self.wal.generation == checkpoint_generation:
            return script, records
        if self.wal.generation < checkpoint_generation:
            # crash between the checkpoint rename and the log rename:
            # the checkpoint already covers everything the stale log
            # holds
            self.wal.close()
            self.wal = WriteAheadLog(self.wal_path, **self._wal_kwargs)
            self.wal.create(checkpoint_generation)
            return script, []
        raise WalCorruptError(
            f"write-ahead log generation {self.wal.generation} is ahead "
            f"of checkpoint generation {checkpoint_generation}",
            path=self.wal_path)

    # ------------------------------------------------------------------
    # journaling (called by the transition hooks and the database)

    def journal_insert(self, relation: str, values: tuple) -> None:
        self._buffer.append(["i", relation, encode_values(values)])

    def journal_delete(self, relation: str, values: tuple) -> None:
        self._buffer.append(["d", relation, encode_values(values)])

    def journal_replace(self, relation: str, before: tuple,
                        after: tuple) -> None:
        self._buffer.append(["r", relation, encode_values(before),
                             encode_values(after)])

    def journal_relation_created(self, relation: str, schema) -> None:
        """A relation appeared outside DDL dispatch (``retrieve into``)."""
        columns = ", ".join(f"{a.name} = {a.type.value}" for a in schema)
        self.journal_statement(f"create {relation} ({columns})",
                               sync=False)

    def journal_statement(self, text: str, *, sync: bool = True) -> None:
        """Log a DDL / rule-lifecycle command as its own record, after
        flushing any mutations buffered ahead of it."""
        if self.crashed:
            return
        self._flush_buffer(sync=False)
        self._append([["stmt", text]], sync=sync)

    def flush_boundary(self, *, sync: bool = True) -> None:
        """Write the buffered transition (if any) as one WAL record,
        after quiescing any deferred token propagation (merge-then-
        flush; see :attr:`quiesce`)."""
        if self.crashed:
            return
        if self.quiesce is not None:
            self.quiesce()
        self._flush_buffer(sync=sync)

    def _flush_buffer(self, *, sync: bool) -> None:
        if not self._buffer:
            return
        entries, self._buffer = self._buffer, []
        self._append(entries, sync=sync)

    def _append(self, entries: list, *, sync: bool) -> None:
        if self.degraded is not None:
            raise DegradedError(
                f"database is read-only: {self.degraded}",
                path=self.wal_path)
        try:
            self.wal.append(entries, sync=sync)
        except DegradedError:
            raise
        except DurabilityError as exc:
            self.degraded = str(exc)
            raise DegradedError(
                f"write-ahead logging failed; database is now "
                f"read-only ({exc})", path=self.wal_path) from exc

    def mark_crashed(self) -> None:
        """A simulated crash "killed the process": stop journaling and
        drop whatever was buffered (it was never durable)."""
        self.crashed = True
        self._buffer.clear()
        try:
            self.wal.close()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # checkpointing

    def maybe_checkpoint(self) -> None:
        """Checkpoint if the record-count threshold has been crossed
        (called at durable boundaries outside transactions)."""
        if (self.checkpoint_every
                and self.wal.data_records >= self.checkpoint_every
                and self.degraded is None and not self.crashed):
            self.checkpoint()

    def checkpoint(self) -> None:
        """Dump the database, atomically install the new checkpoint,
        and truncate the WAL to an empty next-generation log."""
        from repro import persist

        generation = self.wal.generation + 1
        new_wal_path = str(self.wal_path) + ".new"
        new_wal = WriteAheadLog(new_wal_path, **self._wal_kwargs)
        new_wal.create(generation)
        tmp_path = str(self.checkpoint_path) + ".tmp"
        with open(tmp_path, "w") as f:
            f.write(f"{_GENERATION_PREFIX}{generation}\n")
            f.write(persist.dumps(self.db))
            f.flush()
            if self.fsync != "never":
                os.fsync(f.fileno())
        faults = self.db.faults
        if faults is not None:
            try:
                faults.hit("checkpoint.rename")
            except BaseException:
                new_wal.close()
                raise
        os.replace(tmp_path, self.checkpoint_path)
        # the handle keeps following the inode across the rename
        os.replace(new_wal_path, self.wal_path)
        self.wal.close()
        new_wal.path = os.fspath(self.wal_path)
        self.wal = new_wal
        self.db.stats.bump("wal.checkpoints")

    # ------------------------------------------------------------------

    def close(self) -> None:
        self.wal.close()
