"""Tuple identifiers and stored-tuple records.

A :class:`TupleId` plays the role of EXODUS's persistent object identifier
in the paper: Ariel's ``replace'`` and ``delete'`` commands locate the
tuples to update "by using tuple identifiers that are part of tuples in the
P-node, rather than by performing a scan" (paper section 5.1).  TIDs are
stable for the lifetime of a tuple: ``replace`` updates a tuple in place
and keeps its TID.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class TupleId:
    """Stable identifier of a stored tuple: (relation name, slot number)."""

    relation: str
    slot: int

    def __str__(self) -> str:
        return f"{self.relation}:{self.slot}"


@dataclass(frozen=True, slots=True)
class StoredTuple:
    """A tuple as returned by scans: its identity plus its values.

    ``values`` is a plain tuple ordered per the relation's schema.  The
    record is immutable; updates go through the owning
    :class:`~repro.storage.heap.HeapRelation`.
    """

    tid: TupleId
    values: tuple

    def __getitem__(self, position: int):
        return self.values[position]

    def __len__(self) -> int:
        return len(self.values)
