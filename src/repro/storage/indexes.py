"""Secondary indexes: hash (equality) and B-tree (range).

Both index kinds map a single attribute value to the set of
:class:`~repro.storage.tuples.TupleId` of tuples holding that value.
``None`` (null) values are not indexed; an equality probe for ``None``
returns nothing, matching SQL's three-valued treatment of nulls.

The B-tree is realised as a sorted ``(key, tid)`` list maintained with
``bisect`` — logarithmic search, linear insert.  For the in-memory data
sizes this engine targets that is the standard Python idiom and it keeps
range scans trivially correct; the interface (``search``, ``range_search``)
is what the planner depends on, not the node layout.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator

from repro.errors import StorageError
from repro.storage.tuples import TupleId


class Index:
    """Base class for single-attribute secondary indexes."""

    #: "hash" or "btree"; used by the planner for access-path selection.
    kind: str = "abstract"

    def __init__(self, name: str, relation: str, attribute: str,
                 position: int):
        self.name = name
        self.relation = relation
        self.attribute = attribute
        self.position = position

    def key_of(self, values: tuple):
        """Extract this index's key from a full tuple of values."""
        return values[self.position]

    def insert(self, key, tid: TupleId) -> None:
        raise NotImplementedError

    def delete(self, key, tid: TupleId) -> None:
        raise NotImplementedError

    def search(self, key) -> Iterator[TupleId]:
        """All TIDs whose indexed attribute equals ``key``."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({self.name!r} on "
                f"{self.relation}.{self.attribute})")


class HashIndex(Index):
    """Equality-only index backed by a dict of key -> set of TIDs."""

    kind = "hash"

    def __init__(self, name: str, relation: str, attribute: str,
                 position: int):
        super().__init__(name, relation, attribute, position)
        self._buckets: dict[object, set[TupleId]] = {}
        self._count = 0

    def insert(self, key, tid: TupleId) -> None:
        if key is None:
            return
        self._buckets.setdefault(key, set()).add(tid)
        self._count += 1

    def delete(self, key, tid: TupleId) -> None:
        if key is None:
            return
        bucket = self._buckets.get(key)
        if bucket is None or tid not in bucket:
            raise StorageError(
                f"index {self.name}: delete of absent entry {key!r}/{tid}")
        bucket.discard(tid)
        if not bucket:
            del self._buckets[key]
        self._count -= 1

    def search(self, key) -> Iterator[TupleId]:
        if key is None:
            return iter(())
        return iter(self._buckets.get(key, ()))

    def __len__(self) -> int:
        return self._count

    def distinct_keys(self) -> int:
        """Number of distinct indexed key values (used by statistics)."""
        return len(self._buckets)


class BTreeIndex(Index):
    """Ordered index supporting equality and range probes.

    Keys must be mutually comparable (all numeric, or all strings); mixing
    incomparable key types in one index raises StorageError at insert.
    """

    kind = "btree"

    def __init__(self, name: str, relation: str, attribute: str,
                 position: int):
        super().__init__(name, relation, attribute, position)
        self._keys: list = []
        self._tids: list[TupleId] = []

    @staticmethod
    def _order_key(key):
        # bool sorts with ints naturally; mixed str/number raises TypeError
        # at bisect time which we convert to StorageError in insert().
        return key

    def insert(self, key, tid: TupleId) -> None:
        if key is None:
            return
        try:
            # Among duplicates order by tid slot for determinism.
            pos = bisect.bisect_right(self._keys, key)
        except TypeError as exc:
            raise StorageError(
                f"index {self.name}: key {key!r} not comparable with "
                f"existing keys") from exc
        self._keys.insert(pos, key)
        self._tids.insert(pos, tid)

    def delete(self, key, tid: TupleId) -> None:
        if key is None:
            return
        lo = bisect.bisect_left(self._keys, key)
        hi = bisect.bisect_right(self._keys, key, lo=lo)
        for i in range(lo, hi):
            if self._tids[i] == tid:
                del self._keys[i]
                del self._tids[i]
                return
        raise StorageError(
            f"index {self.name}: delete of absent entry {key!r}/{tid}")

    def search(self, key) -> Iterator[TupleId]:
        if key is None:
            return iter(())
        lo = bisect.bisect_left(self._keys, key)
        hi = bisect.bisect_right(self._keys, key, lo=lo)
        return iter(self._tids[lo:hi])

    def range_search(self, low=None, high=None, *,
                     low_inclusive: bool = True,
                     high_inclusive: bool = True) -> Iterator[TupleId]:
        """TIDs with key in the given (possibly half-open) interval.

        ``None`` bounds mean unbounded on that side.
        """
        if low is None:
            lo = 0
        elif low_inclusive:
            lo = bisect.bisect_left(self._keys, low)
        else:
            lo = bisect.bisect_right(self._keys, low)
        if high is None:
            hi = len(self._keys)
        elif high_inclusive:
            hi = bisect.bisect_right(self._keys, high)
        else:
            hi = bisect.bisect_left(self._keys, high)
        return iter(self._tids[lo:hi])

    def min_key(self):
        """Smallest indexed key, or None if the index is empty."""
        return self._keys[0] if self._keys else None

    def max_key(self):
        """Largest indexed key, or None if the index is empty."""
        return self._keys[-1] if self._keys else None

    def __len__(self) -> int:
        return len(self._keys)


def make_index(kind: str, name: str, relation: str, attribute: str,
               position: int) -> Index:
    """Factory used by the catalog's ``define index`` implementation."""
    kinds = {"hash": HashIndex, "btree": BTreeIndex}
    try:
        cls = kinds[kind.lower()]
    except KeyError:
        raise StorageError(
            f"unknown index kind {kind!r}; expected one of "
            f"{sorted(kinds)}") from None
    return cls(name, relation, attribute, position)


def bulk_load(index: Index, rows: Iterable[tuple]) -> None:
    """Load ``(values, tid)`` pairs into a fresh index."""
    for values, tid in rows:
        index.insert(index.key_of(values), tid)
