"""In-memory storage engine: heap relations, tuple identifiers, indexes.

The paper's Ariel sits on the EXODUS storage manager; the rule-system
algorithms only require stable tuple identity, sequential scans and index
lookups, all of which this in-memory engine provides (see DESIGN.md,
"Substitutions").
"""

from repro.storage.tuples import TupleId, StoredTuple
from repro.storage.heap import HeapRelation
from repro.storage.indexes import Index, HashIndex, BTreeIndex

__all__ = [
    "TupleId",
    "StoredTuple",
    "HeapRelation",
    "Index",
    "HashIndex",
    "BTreeIndex",
]
