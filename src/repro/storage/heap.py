"""Heap relations: the base tables of the engine.

A :class:`HeapRelation` stores tuples in numbered slots.  Slot numbers are
never reused, so a :class:`~repro.storage.tuples.TupleId` observed anywhere
(a P-node, an α-memory, an undo log) either still names the same logical
tuple or names nothing.  ``replace`` mutates a slot in place, preserving
the TID, exactly the property the paper's ``replace'``/``delete'`` action
commands rely on.

Secondary indexes registered on the relation are maintained automatically
by every mutation.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.catalog.schema import Schema
from repro.errors import StorageError
from repro.storage.indexes import Index
from repro.storage.tuples import StoredTuple, TupleId


class HeapRelation:
    """An in-memory relation with stable tuple identifiers."""

    def __init__(self, name: str, schema: Schema):
        self.name = name
        self.schema = schema
        self._slots: dict[int, tuple] = {}
        self._next_slot = 0
        self._indexes: dict[str, Index] = {}

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def insert(self, values: tuple) -> TupleId:
        """Append a tuple; returns its new TID."""
        values = self.schema.coerce_values(tuple(values))
        tid = TupleId(self.name, self._next_slot)
        self._next_slot += 1
        self._slots[tid.slot] = values
        for index in self._indexes.values():
            index.insert(index.key_of(values), tid)
        return tid

    def insert_many(self, rows) -> list[tuple[TupleId, tuple]]:
        """Bulk append: per-row semantics identical to :meth:`insert`
        (coercion, index maintenance, fresh TIDs) with the loop
        invariants hoisted; returns ``(tid, stored values)`` pairs so
        callers need no follow-up fetch.

        All-or-nothing: every row is coerced before any is applied, so
        one bad row mid-batch cannot leave earlier rows in the heap
        with their tokens never routed.
        """
        coerce = self.schema.coerce_values
        coerced = [coerce(tuple(values)) for values in rows]
        slots = self._slots
        indexes = list(self._indexes.values())
        name = self.name
        out: list[tuple[TupleId, tuple]] = []
        next_slot = self._next_slot
        for values in coerced:
            tid = TupleId(name, next_slot)
            next_slot += 1
            slots[tid.slot] = values
            for index in indexes:
                index.insert(index.key_of(values), tid)
            out.append((tid, values))
        self._next_slot = next_slot
        return out

    def delete(self, tid: TupleId) -> tuple:
        """Remove the tuple named by ``tid``; returns its last values."""
        values = self._require(tid)
        del self._slots[tid.slot]
        for index in self._indexes.values():
            index.delete(index.key_of(values), tid)
        return values

    def replace(self, tid: TupleId, new_values: tuple) -> tuple:
        """Overwrite the tuple in place; returns the old values."""
        old_values = self._require(tid)
        new_values = self.schema.coerce_values(tuple(new_values))
        self._slots[tid.slot] = new_values
        for index in self._indexes.values():
            old_key = index.key_of(old_values)
            new_key = index.key_of(new_values)
            if old_key != new_key:
                index.delete(old_key, tid)
                index.insert(new_key, tid)
        return old_values

    def restore(self, tid: TupleId, values: tuple) -> None:
        """Re-create a previously deleted tuple under its original TID.

        Used only by the undo machinery when rolling back a delete; normal
        clients use :meth:`insert`.
        """
        if tid.relation != self.name:
            raise StorageError(
                f"TID {tid} does not belong to relation {self.name!r}")
        if tid.slot in self._slots:
            raise StorageError(f"restore over live slot {tid}")
        values = self.schema.coerce_values(tuple(values))
        self._slots[tid.slot] = values
        self._next_slot = max(self._next_slot, tid.slot + 1)
        for index in self._indexes.values():
            index.insert(index.key_of(values), tid)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------

    def get(self, tid: TupleId) -> tuple:
        """Values of the tuple named by ``tid``."""
        return self._require(tid)

    def contains(self, tid: TupleId) -> bool:
        """True if ``tid`` names a live tuple of this relation."""
        return tid.relation == self.name and tid.slot in self._slots

    def scan(self) -> Iterator[StoredTuple]:
        """Yield every live tuple in slot order."""
        for slot in sorted(self._slots):
            yield StoredTuple(TupleId(self.name, slot), self._slots[slot])

    def scan_where(self, predicate: Callable[[tuple], bool]
                   ) -> Iterator[StoredTuple]:
        """Yield tuples whose values satisfy ``predicate``."""
        for stored in self.scan():
            if predicate(stored.values):
                yield stored

    def fetch(self, tids) -> Iterator[StoredTuple]:
        """Yield StoredTuples for the given TIDs (skipping dead ones)."""
        for tid in tids:
            values = self._slots.get(tid.slot)
            if values is not None:
                yield StoredTuple(tid, values)

    def __len__(self) -> int:
        return len(self._slots)

    def __repr__(self) -> str:
        return f"HeapRelation({self.name!r}, {len(self)} tuples)"

    # ------------------------------------------------------------------
    # indexes
    # ------------------------------------------------------------------

    def attach_index(self, index: Index) -> None:
        """Register a secondary index and bulk-load the current contents."""
        if index.relation != self.name:
            raise StorageError(
                f"index {index.name!r} targets relation "
                f"{index.relation!r}, not {self.name!r}")
        if index.name in self._indexes:
            raise StorageError(f"duplicate index name {index.name!r}")
        for stored in self.scan():
            index.insert(index.key_of(stored.values), stored.tid)
        self._indexes[index.name] = index

    def detach_index(self, name: str) -> Index:
        """Unregister and return a secondary index."""
        try:
            return self._indexes.pop(name)
        except KeyError:
            raise StorageError(f"no index named {name!r}") from None

    def indexes(self) -> tuple[Index, ...]:
        """All indexes currently attached, in attach order."""
        return tuple(self._indexes.values())

    def index_on(self, attribute: str, kind: str | None = None
                 ) -> Index | None:
        """An index on the given attribute (of the given kind), if any."""
        for index in self._indexes.values():
            if index.attribute != attribute:
                continue
            if kind is None or index.kind == kind:
                return index
        return None

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _require(self, tid: TupleId) -> tuple:
        if tid.relation != self.name:
            raise StorageError(
                f"TID {tid} does not belong to relation {self.name!r}")
        try:
            return self._slots[tid.slot]
        except KeyError:
            raise StorageError(f"dangling TID {tid}") from None
