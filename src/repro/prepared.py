"""Prepared statements: a parameterized plan cache over the pipeline.

A :class:`Prepared` carries one DML command through parse → analyze →
plan exactly once and then executes the finished plan any number of
times, each execution supplying a parameter vector for the ``$name`` /
``$1`` placeholders in the text.  Placeholders compile to closures that
read the vector at runtime (:mod:`repro.lang.expr`), and parameterized
equality/range predicates still drive index selection — the access path
is fixed at plan time, the key resolves per execution
(:class:`~repro.planner.plans.IndexProbe` /
:class:`~repro.planner.plans.IndexScan` bound expressions).

Staleness is handled by catalog versioning: every DDL change (relation,
index, rule lifecycle) bumps :attr:`Catalog.version <repro.catalog
.catalog.Catalog.version>`; a Prepared remembers the version it planned
against and transparently re-parses, re-analyzes and re-plans when the
versions no longer match, so a cached plan can never silently use a
dropped index or miss a new one.

:class:`StatementCache` is the LRU used by ``Database.execute`` to make
the same machinery transparent for repeated ad-hoc text.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.errors import ExecutionError
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse_command
from repro.observe import NULL_STATS


def is_cacheable(command: ast.Command) -> bool:
    """Whether a command's plan may be cached and re-executed.

    Only plain DML qualifies: ``retrieve into`` creates a relation (not
    repeatable), and DDL / rule management have no plans to cache.
    """
    if isinstance(command, ast.Retrieve):
        return command.into is None
    return isinstance(command, (ast.Append, ast.Delete, ast.Replace))


class Prepared:
    """One prepared statement bound to a database.

    Obtained from ``Database.prepare``.  ``signature`` lists the distinct
    parameter names in first-appearance order; :meth:`execute` takes them
    as keyword arguments.
    """

    def __init__(self, db, text: str, command: ast.Command | None = None):
        self.db = db
        self.text = text
        if command is None:
            command = db.analyzer.analyze(parse_command(text))
        if not is_cacheable(command):
            raise ExecutionError(
                f"cannot prepare a {type(command).__name__} command; "
                f"only retrieve/append/delete/replace can be prepared")
        self.signature: tuple[str, ...] = tuple(
            getattr(command, "param_signature", ()) or ())
        self._command = command
        self._planned = db.optimizer.plan_command(command)
        self._version = db.catalog.version
        # One statement may be executed by many serving-layer reader
        # threads at once; the replan-on-version-mismatch must not
        # interleave (a half-swapped command/plan pair would execute).
        self._replan_lock = threading.Lock()
        #: diagnostics: executions served and plans built
        self.executions = 0
        self.replans = 1

    # ------------------------------------------------------------------

    def current_plan(self):
        """The cached PlannedCommand, re-planned if the catalog moved.

        Semantic analysis annotates the syntax tree in place, so a
        replan starts from a fresh parse of the original text — the
        catalog change may alter name resolution, not just access paths.
        """
        if self._version != self.db.catalog.version:
            with self._replan_lock:
                if self._version != self.db.catalog.version:
                    command = self.db.analyzer.analyze(
                        parse_command(self.text))
                    self._command = command
                    self._planned = self.db.optimizer.plan_command(
                        command)
                    self._version = self.db.catalog.version
                    self.replans += 1
                    getattr(self.db, "stats", NULL_STATS).bump(
                        "plan_cache.replans")
        return self._planned

    def execute(self, **params):
        """Run the cached plan with the given parameter values."""
        return self.execute_with(params)

    def _check_params(self, params: dict[str, object] | None) -> dict:
        params = params or {}
        missing = [name for name in self.signature if name not in params]
        if missing:
            raise ExecutionError(
                "missing value(s) for parameter(s) "
                + ", ".join(f"${name}" for name in missing))
        unknown = sorted(set(params) - set(self.signature))
        if unknown:
            raise ExecutionError(
                "unknown parameter(s) "
                + ", ".join(f"${name}" for name in unknown)
                + f"; statement takes "
                + (", ".join(f"${name}" for name in self.signature)
                   if self.signature else "no parameters"))
        return params

    def execute_with(self, params: dict[str, object] | None):
        """Run the cached plan; ``params`` maps placeholder names to
        values (``$1``-style placeholders use the key ``"1"``)."""
        params = self._check_params(params)
        planned = self.current_plan()
        self.executions += 1
        getattr(self.db, "stats", NULL_STATS).bump(
            "plan_cache.executions")
        return self.db._execute_planned(planned, params)

    @property
    def read_only(self) -> bool:
        """Whether the statement is a plain retrieve (no ``into``)."""
        command = self._command
        return isinstance(command, ast.Retrieve) and command.into is None

    def execute_readonly(self, params: dict[str, object] | None):
        """Run the cached plan *outside* the transition machinery.

        The serving layer's read path: a plain retrieve needs no
        recovery scope, token flush or recognize-act cycle, so many
        reader threads may run it concurrently against a settled
        database (the service's snapshot gate keeps transitions out).
        Raises :class:`~repro.errors.ExecutionError` for any statement
        that could mutate.
        """
        if not self.read_only:
            raise ExecutionError(
                f"cannot execute a {type(self._command).__name__} "
                f"statement on the read-only path; route it through "
                f"the serialized write path")
        params = self._check_params(params)
        planned = self.current_plan()
        self.executions += 1
        stats = getattr(self.db, "stats", NULL_STATS)
        stats.bump("plan_cache.executions")
        self.db._require_open()
        result = self.db.executor.run(planned, params or None)
        self.db._note_plan_executed(planned)
        return result

    def explain(self) -> str:
        """The (current) physical plan, as an indented outline."""
        from repro.planner.plans import explain as explain_plan
        return explain_plan(self.current_plan().plan)

    def __repr__(self) -> str:
        sig = ", ".join(f"${name}" for name in self.signature)
        return f"Prepared({self.text!r}, params=[{sig}])"


class StatementCache:
    """LRU cache of Prepared statements keyed by command text.

    Backs the transparent caching inside ``Database.execute``: repeated
    ad-hoc DML pays the parse/analyze/plan cost once.  Entries re-plan
    themselves on catalog-version mismatch, so eviction is purely a
    memory bound, never a correctness mechanism.

    Thread-safe: the serving layer's reader threads hit ``lookup`` /
    ``store`` concurrently, and ``OrderedDict`` is not — an unlocked
    ``move_to_end`` racing an eviction can leave the recency list
    corrupt (a KeyError out of ``lookup``, or an entry evicted while
    being returned).  One lock serializes the short critical sections;
    plan execution itself happens outside it.
    """

    def __init__(self, capacity: int = 128, stats=None):
        self.capacity = capacity
        self._entries: "OrderedDict[str, Prepared]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        #: engine counter registry (``stmt_cache.*``)
        self.stats = stats or NULL_STATS

    def lookup(self, text: str) -> Prepared | None:
        with self._lock:
            entry = self._entries.get(text)
            if entry is not None:
                self._entries.move_to_end(text)
                self.hits += 1
        if entry is None:
            self.misses += 1
            self.stats.bump("stmt_cache.misses")
            return None
        self.stats.bump("stmt_cache.hits")
        return entry

    def store(self, text: str, prepared: Prepared) -> None:
        if self.capacity <= 0:
            return
        with self._lock:
            self._entries[text] = prepared
            self._entries.move_to_end(text)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, text: str) -> bool:
        with self._lock:
            return text in self._entries
