"""Database persistence: dump to (and load from) an ARL script.

A dump is an ordinary command script — ``create`` statements, ``define
index``, one ``append`` per tuple, then the rule definitions — so a
dumped database can be restored by any Ariel instance (or edited by
hand).  Data precedes rules in the script, so loading does not fire
event/transition rules on historical data; pattern rules re-prime their
α-memories and P-nodes from the loaded tuples during activation, exactly
as at original definition time.

This plays the role of EXODUS persistence in the original system (see
DESIGN.md, "Substitutions"): the rule-system state that matters —
definitions, data, schema — round-trips; transient per-transition state
(Δ-sets, dynamic memories) intentionally does not.
"""

from __future__ import annotations

import io
import pathlib

from repro.db import Database
from repro.lang.ast_nodes import deparse
from repro.lang.literals import encode_literal


def dumps(db: Database) -> str:
    """The database as an ARL script string."""
    out = io.StringIO()
    out.write("-- Ariel database dump\n")

    relations = sorted(db.catalog.relations(), key=lambda r: r.name)
    for relation in relations:
        columns = ", ".join(f"{a.name} = {a.type.value}"
                            for a in relation.schema)
        out.write(f"create {relation.name} ({columns})\n")

    for info in sorted(db.catalog.indexes(), key=lambda i: i.name):
        out.write(f"define index {info.name} on {info.relation} "
                  f"({info.attribute}) using {info.kind}\n")

    for relation in relations:
        for stored in relation.scan():
            out.write(_append_command(relation.name, relation.schema,
                                      stored.values) + "\n")

    inactive: list[str] = []
    for record in sorted(db.manager.installed_rules(),
                         key=lambda r: r.name):
        out.write(deparse(record.definition) + "\n")
        if not record.active:
            inactive.append(record.name)
    for name in inactive:
        out.write(f"deactivate rule {name}\n")
    return out.getvalue()


def dump(db: Database, path) -> None:
    """Write :func:`dumps` output to ``path``."""
    pathlib.Path(path).write_text(dumps(db))


def loads(script: str, **database_kwargs) -> Database:
    """A new database restored from a dump script.

    Rule firing is suspended while the script loads and the P-nodes
    primed by rule activation are cleared afterwards: restored data is
    *already processed* data — the original database's rules had their
    chance to react to it before the dump.  (Matches that were pending
    but unfired at dump time are consequently not preserved.)
    """
    db = Database(**database_kwargs)
    db._rules_suspended = True
    try:
        db.execute_script(script)
        for name in db.manager.active_rules():
            db.network.pnode(name).clear()
        db.manager.agenda.clear()
        db.network.flush_dynamic()
    finally:
        db._rules_suspended = False
    return db


def load(path, **database_kwargs) -> Database:
    """A new database restored from a dump file."""
    return loads(pathlib.Path(path).read_text(), **database_kwargs)


def _append_command(relation: str, schema, values: tuple) -> str:
    parts = []
    for attr, value in zip(schema, values):
        parts.append(f"{attr.name} = {_literal(value)}")
    return f"append {relation}({', '.join(parts)})"


#: total value → literal-text encoding, shared with the WAL and the AST
#: deparser (see :mod:`repro.lang.literals`)
_literal = encode_literal
