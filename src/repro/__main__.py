"""``python -m repro`` launches the interactive Ariel shell."""

from repro.cli import main

raise SystemExit(main())
