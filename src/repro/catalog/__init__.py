"""Schema and system-catalog subpackage."""

from repro.catalog.schema import Attribute, AttributeType, Schema
from repro.catalog.catalog import Catalog, IndexInfo

__all__ = ["Attribute", "AttributeType", "Schema", "Catalog", "IndexInfo"]
