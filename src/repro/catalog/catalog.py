"""The system catalog: relations, indexes, rules and rulesets.

Mirrors the paper's architecture (Figure 2): the *rule catalog* maintains
the definitions of rules; here it is one facet of a single system catalog
that also tracks base relations and secondary indexes.  Rule objects are
stored opaquely (the catalog does not depend on the rule subsystem) —
``repro.core.manager`` is the module that interprets them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.catalog.schema import Schema
from repro.errors import CatalogError
from repro.storage.heap import HeapRelation
from repro.storage.indexes import Index, make_index

#: Ruleset used when ``define rule`` has no ``in ruleset`` clause (paper §2.1).
DEFAULT_RULESET = "default_rules"


@dataclass(frozen=True)
class IndexInfo:
    """Catalog record for a secondary index."""

    name: str
    relation: str
    attribute: str
    kind: str


@dataclass
class RulesetInfo:
    """A named grouping of rules ("simply a means of grouping rules together
    for programmer convenience", paper §2.1)."""

    name: str
    rule_names: set[str] = field(default_factory=set)


class Catalog:
    """Registry of all persistent schema objects in one database."""

    def __init__(self):
        self._relations: dict[str, HeapRelation] = {}
        self._indexes: dict[str, IndexInfo] = {}
        self._rules: dict[str, object] = {}
        self._rulesets: dict[str, RulesetInfo] = {
            DEFAULT_RULESET: RulesetInfo(DEFAULT_RULESET)}
        #: monotonic schema version: bumped on every DDL change (relation,
        #: index, rule).  Cached plans record the version they were built
        #: against and are invalidated on mismatch.
        self._version = 0

    @property
    def version(self) -> int:
        """The current schema version (see :meth:`bump_version`)."""
        return self._version

    def bump_version(self) -> int:
        """Advance the schema version; called on any change that could
        invalidate a cached plan (DDL, index changes, rule activation)."""
        self._version += 1
        return self._version

    # ------------------------------------------------------------------
    # relations
    # ------------------------------------------------------------------

    def create_relation(self, name: str, schema: Schema) -> HeapRelation:
        """Create and register a new base relation."""
        if name in self._relations:
            raise CatalogError(f"relation {name!r} already exists")
        relation = HeapRelation(name, schema)
        self._relations[name] = relation
        self.bump_version()
        return relation

    def destroy_relation(self, name: str) -> None:
        """Drop a relation and every index defined on it."""
        if name not in self._relations:
            raise CatalogError(f"no relation named {name!r}")
        dependent_rules = [rule_name for rule_name, rule in self._rules.items()
                           if name in getattr(rule, "referenced_relations",
                                              ())]
        if dependent_rules:
            raise CatalogError(
                f"cannot destroy {name!r}: referenced by rule(s) "
                f"{sorted(dependent_rules)}")
        del self._relations[name]
        for index_name in [n for n, info in self._indexes.items()
                           if info.relation == name]:
            del self._indexes[index_name]
        self.bump_version()

    def relation(self, name: str) -> HeapRelation:
        """Look up a relation by name."""
        try:
            return self._relations[name]
        except KeyError:
            raise CatalogError(f"no relation named {name!r}") from None

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    def relations(self) -> Iterator[HeapRelation]:
        return iter(self._relations.values())

    # ------------------------------------------------------------------
    # indexes
    # ------------------------------------------------------------------

    def create_index(self, name: str, relation_name: str, attribute: str,
                     kind: str = "btree") -> Index:
        """Create a secondary index and load it with current data."""
        if name in self._indexes:
            raise CatalogError(f"index {name!r} already exists")
        relation = self.relation(relation_name)
        position = relation.schema.position(attribute)
        index = make_index(kind, name, relation_name, attribute, position)
        relation.attach_index(index)
        self._indexes[name] = IndexInfo(name, relation_name, attribute,
                                        index.kind)
        self.bump_version()
        return index

    def destroy_index(self, name: str) -> None:
        """Drop a secondary index."""
        try:
            info = self._indexes.pop(name)
        except KeyError:
            raise CatalogError(f"no index named {name!r}") from None
        self.relation(info.relation).detach_index(name)
        self.bump_version()

    def index_info(self, name: str) -> IndexInfo:
        try:
            return self._indexes[name]
        except KeyError:
            raise CatalogError(f"no index named {name!r}") from None

    def indexes(self) -> Iterator[IndexInfo]:
        return iter(self._indexes.values())

    # ------------------------------------------------------------------
    # rules and rulesets
    # ------------------------------------------------------------------

    def store_rule(self, name: str, rule: object,
                   ruleset: str | None = None) -> None:
        """Record a rule definition in the rule catalog.

        ``rule`` is opaque to the catalog.  The rule is added to ``ruleset``
        (created on demand), defaulting to :data:`DEFAULT_RULESET`.
        """
        if name in self._rules:
            raise CatalogError(f"rule {name!r} already exists")
        ruleset = ruleset or DEFAULT_RULESET
        self._rules[name] = rule
        self._rulesets.setdefault(
            ruleset, RulesetInfo(ruleset)).rule_names.add(name)
        self.bump_version()

    def drop_rule(self, name: str) -> object:
        """Remove a rule from the catalog and its ruleset; returns it."""
        try:
            rule = self._rules.pop(name)
        except KeyError:
            raise CatalogError(f"no rule named {name!r}") from None
        for ruleset in self._rulesets.values():
            ruleset.rule_names.discard(name)
        self.bump_version()
        return rule

    def rule(self, name: str) -> object:
        try:
            return self._rules[name]
        except KeyError:
            raise CatalogError(f"no rule named {name!r}") from None

    def has_rule(self, name: str) -> bool:
        return name in self._rules

    def rules(self) -> dict[str, object]:
        """Name -> rule mapping (a copy; mutation-safe)."""
        return dict(self._rules)

    def ruleset(self, name: str) -> RulesetInfo:
        try:
            return self._rulesets[name]
        except KeyError:
            raise CatalogError(f"no ruleset named {name!r}") from None

    def rulesets(self) -> Iterator[RulesetInfo]:
        return iter(self._rulesets.values())
