"""Relation schemas and attribute types.

Ariel supports the relational model with a POSTQUEL-style data definition
language.  We provide the four scalar types the paper's examples use
(``int4``, ``float8``, ``text``, ``bool``) plus aliases (``int``,
``integer``, ``float``, ``real``, ``string``, ``boolean``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import CatalogError, SemanticError


class AttributeType(enum.Enum):
    """Scalar attribute types supported by the engine."""

    INT = "int4"
    FLOAT = "float8"
    TEXT = "text"
    BOOL = "bool"

    @classmethod
    def from_name(cls, name: str) -> "AttributeType":
        """Resolve a type name (including aliases) to an AttributeType."""
        try:
            return _TYPE_ALIASES[name.lower()]
        except KeyError:
            accepted = ", ".join(sorted(_TYPE_ALIASES))
            raise SemanticError(
                f"unknown type name: {name!r}; "
                f"accepted names and aliases: {accepted}") from None

    def python_type(self) -> type:
        """The Python type used to store values of this attribute type."""
        return _PYTHON_TYPES[self]

    def accepts(self, value: object) -> bool:
        """True if ``value`` can be stored in an attribute of this type.

        Integers are acceptable for FLOAT attributes (they are widened on
        store); bool is *not* acceptable for INT despite being an int
        subclass, mirroring SQL's separation of the domains.
        """
        if value is None:
            return True
        if self is AttributeType.INT:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is AttributeType.FLOAT:
            return (isinstance(value, (int, float))
                    and not isinstance(value, bool))
        if self is AttributeType.TEXT:
            return isinstance(value, str)
        return isinstance(value, bool)

    def coerce(self, value: object) -> object:
        """Coerce ``value`` for storage, raising SemanticError on mismatch."""
        return _COERCERS[self](value)

    def coercer(self):
        """The bare coercion callable for this type — what the tuple
        storage hot path calls, bypassing enum dispatch."""
        return _COERCERS[self]


_TYPE_ALIASES = {
    "int4": AttributeType.INT,
    "int": AttributeType.INT,
    "integer": AttributeType.INT,
    "float8": AttributeType.FLOAT,
    "float": AttributeType.FLOAT,
    "real": AttributeType.FLOAT,
    "double": AttributeType.FLOAT,
    "text": AttributeType.TEXT,
    "string": AttributeType.TEXT,
    "varchar": AttributeType.TEXT,
    "char": AttributeType.TEXT,
    "bool": AttributeType.BOOL,
    "boolean": AttributeType.BOOL,
}

_PYTHON_TYPES = {
    AttributeType.INT: int,
    AttributeType.FLOAT: float,
    AttributeType.TEXT: str,
    AttributeType.BOOL: bool,
}


def _coerce_int(value):
    if value is None or (type(value) is int):
        return value
    if isinstance(value, int) and not isinstance(value, bool):
        return value
    raise SemanticError(f"value {value!r} is not valid for type int4")


def _coerce_float(value):
    if value is None or type(value) is float:
        return value
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    raise SemanticError(f"value {value!r} is not valid for type float8")


def _coerce_text(value):
    if value is None or isinstance(value, str):
        return value
    raise SemanticError(f"value {value!r} is not valid for type text")


def _coerce_bool(value):
    if value is None or isinstance(value, bool):
        return value
    raise SemanticError(f"value {value!r} is not valid for type bool")


_COERCERS = {
    AttributeType.INT: _coerce_int,
    AttributeType.FLOAT: _coerce_float,
    AttributeType.TEXT: _coerce_text,
    AttributeType.BOOL: _coerce_bool,
}


@dataclass(frozen=True)
class Attribute:
    """A named, typed column of a relation."""

    name: str
    type: AttributeType

    def __str__(self) -> str:
        return f"{self.name} = {self.type.value}"


class Schema:
    """An ordered list of attributes with by-name lookup.

    Schemas are immutable once constructed.  Attribute names are
    case-sensitive (the paper's examples are all lower case) and must be
    unique within a schema.
    """

    __slots__ = ("attributes", "_positions", "_coercers")

    def __init__(self, attributes: list[Attribute] | tuple[Attribute, ...]):
        self.attributes: tuple[Attribute, ...] = tuple(attributes)
        positions: dict[str, int] = {}
        for i, attr in enumerate(self.attributes):
            if attr.name in positions:
                raise CatalogError(
                    f"duplicate attribute name: {attr.name!r}")
            positions[attr.name] = i
        self._positions = positions
        self._coercers = tuple(a.type.coercer() for a in self.attributes)

    @classmethod
    def of(cls, **columns: str) -> "Schema":
        """Convenience constructor: ``Schema.of(name='text', age='int')``."""
        return cls([Attribute(name, AttributeType.from_name(type_name))
                    for name, type_name in columns.items()])

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self):
        return iter(self.attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.attributes == other.attributes

    def __hash__(self) -> int:
        return hash(self.attributes)

    def __repr__(self) -> str:
        cols = ", ".join(str(a) for a in self.attributes)
        return f"Schema({cols})"

    def names(self) -> tuple[str, ...]:
        """Attribute names in declaration order."""
        return tuple(a.name for a in self.attributes)

    def has(self, name: str) -> bool:
        """True if an attribute with this name exists."""
        return name in self._positions

    def position(self, name: str) -> int:
        """Zero-based position of the attribute, or raise SemanticError."""
        try:
            return self._positions[name]
        except KeyError:
            raise SemanticError(f"unknown attribute: {name!r}") from None

    def attribute(self, name: str) -> Attribute:
        """The attribute with this name, or raise SemanticError."""
        return self.attributes[self.position(name)]

    def type_of(self, name: str) -> AttributeType:
        """The type of the named attribute."""
        return self.attribute(name).type

    def coerce_values(self, values: tuple) -> tuple:
        """Validate and coerce a value tuple against this schema."""
        coercers = self._coercers
        if len(values) != len(coercers):
            raise StorageArityError(len(coercers), len(values))
        return tuple(c(v) for c, v in zip(coercers, values))


class StorageArityError(CatalogError):
    """Tuple arity does not match the schema."""

    def __init__(self, expected: int, got: int):
        super().__init__(f"schema expects {expected} values, got {got}")
        self.expected = expected
        self.got = got
