"""repro — a reproduction of the Ariel active DBMS rule system.

Implements Hanson, *Rule Condition Testing and Action Execution in
Ariel*, SIGMOD 1992: a relational DBMS with a POSTQUEL-subset query
language, the Ariel Rule Language (pattern + event + transition
conditions), the A-TREAT discrimination network with virtual α-memories,
an interval-skip-list selection predicate index, and rule action
execution by query modification through the ordinary query optimizer.

Entry point::

    from repro import Database
    db = Database()                 # A-TREAT network (the paper's system)
    db.execute('create emp (name = text, sal = float8)')
"""

from repro.db import Database
from repro.errors import (
    ArielError, CatalogError, DatabaseClosedError, DegradedError,
    DurabilityError, ExecutionError, ParseError, PlanError, RuleError,
    RuleLoopError, SemanticError, ServiceError, SessionError,
    StorageError, TransactionError, WalCorruptError)
from repro.faults import FaultRegistry, SimulatedCrash
from repro.observe import EngineStats, TraceHub

__version__ = "1.0.0"

__all__ = [
    "Database", "EngineStats", "TraceHub",
    "FaultRegistry", "SimulatedCrash",
    "ArielError", "CatalogError", "DatabaseClosedError",
    "DegradedError", "DurabilityError", "ExecutionError", "ParseError",
    "PlanError", "RuleError", "RuleLoopError", "SemanticError",
    "ServiceError", "SessionError", "StorageError",
    "TransactionError", "WalCorruptError",
    "__version__",
]
