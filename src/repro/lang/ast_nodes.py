"""Abstract syntax for the POSTQUEL subset and ARL.

Every node is a plain dataclass; semantic analysis decorates some of them
in place (attribute positions, inferred types) but the shapes here are
what the parser produces and what ``deparse`` renders back to text.  Rule
definitions are stored in the rule catalog as these syntax trees, exactly
as in the paper ("its definition, represented as a syntax tree, is placed
in the rule catalog", section 5.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Union


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------

@dataclass
class Expr:
    """Base class for expression nodes."""


@dataclass
class Const(Expr):
    """A literal: number, string or boolean."""

    value: object


@dataclass
class AttrRef(Expr):
    """``var.attr`` or ``previous var.attr``.

    ``previous`` refers to "the value that a tuple attribute had at the
    beginning of a transition" (paper section 2.3).  ``position`` is
    filled in by semantic analysis.
    """

    var: str
    attr: str
    previous: bool = False
    position: int | None = None

    def key(self) -> tuple[str, str, bool]:
        return (self.var, self.attr, self.previous)


@dataclass
class AllRef(Expr):
    """``var.all`` — the whole tuple, usable in target lists."""

    var: str


@dataclass
class Param(Expr):
    """``$name`` or ``$1`` — a prepared-statement parameter placeholder.

    Positional placeholders are named by their ordinal (``$1`` → name
    ``"1"``).  The value is supplied per execution through the parameter
    vector of :class:`~repro.lang.expr.Bindings`; ``type`` is inferred by
    semantic analysis from the attribute context the placeholder appears
    in (None when the context does not pin a type).
    """

    name: str
    type: object | None = None

    def key(self) -> str:
        return self.name


@dataclass
class BinOp(Expr):
    """Binary operator: comparison, arithmetic, or and/or."""

    op: str
    left: Expr
    right: Expr


@dataclass
class UnaryOp(Expr):
    """Unary operator: ``-`` or ``not``."""

    op: str
    operand: Expr


@dataclass
class NewCall(Expr):
    """``new(var)`` — "a selection condition which is always true"
    (paper section 2.1), awakening the rule on any new tuple value."""

    var: str


AGGREGATE_FUNCS = ("count", "sum", "avg", "min", "max")


@dataclass
class AggregateCall(Expr):
    """``count|sum|avg|min|max(expr)`` in a retrieve target list.

    POSTQUEL-style implicit grouping: when any target contains an
    aggregate, the aggregate-free targets become the group keys.
    ``count(var.all)`` counts rows; other aggregates skip nulls.
    """

    func: str
    argument: Expr


COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")
ARITHMETIC_OPS = ("+", "-", "*", "/")
LOGICAL_OPS = ("and", "or")


# ----------------------------------------------------------------------
# command building blocks
# ----------------------------------------------------------------------

@dataclass
class FromItem:
    """``var in relation``: binds a tuple variable to a relation."""

    var: str
    relation: str


@dataclass
class ResultColumn:
    """One entry of a retrieve/append target list.

    ``name`` may be None (positional, or derived from the expression);
    ``expr`` may be an :class:`AllRef` to expand a whole tuple.
    """

    name: Optional[str]
    expr: Expr


@dataclass
class ColumnDef:
    """``name = typename`` in a create command."""

    name: str
    type_name: str


class EventKind(enum.Enum):
    """The three triggering events of the ``on`` clause (paper §2.1)."""

    APPEND = "append"
    DELETE = "delete"
    REPLACE = "replace"


@dataclass
class EventSpec:
    """``on append|delete|replace relation [ (attrs) ]``.

    ``attributes`` narrows a replace event to updates touching any of the
    listed attributes; empty means any attribute.
    """

    kind: EventKind
    relation: str
    attributes: tuple[str, ...] = ()


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------

@dataclass
class Command:
    """Base class for command nodes."""


@dataclass
class CreateRelation(Command):
    """``create rel (a = int4, b = text, ...)``"""

    name: str
    columns: list[ColumnDef]


@dataclass
class DestroyRelation(Command):
    """``destroy rel``"""

    name: str


@dataclass
class DefineIndex(Command):
    """``define index name on rel (attr) [using btree|hash]``"""

    name: str
    relation: str
    attribute: str
    kind: str = "btree"


@dataclass
class RemoveIndex(Command):
    """``remove index name``"""

    name: str


@dataclass
class Append(Command):
    """``append [to] rel (targets) [from ...] [where ...]``

    Targets are either all named (``name = expr``) or all positional.
    With a where clause (or expressions referencing other variables), the
    command appends one tuple per qualifying binding.
    """

    relation: str
    targets: list[ResultColumn]
    from_items: list[FromItem] = field(default_factory=list)
    where: Optional[Expr] = None


@dataclass
class Delete(Command):
    """``delete var [from ...] [where ...]``"""

    target_var: str
    from_items: list[FromItem] = field(default_factory=list)
    where: Optional[Expr] = None
    #: set by query modification: locate tuples via P-node TIDs (delete')
    via_pnode: bool = False


@dataclass
class Replace(Command):
    """``replace var (assignments) [from ...] [where ...]``"""

    target_var: str
    assignments: list[ResultColumn]
    from_items: list[FromItem] = field(default_factory=list)
    where: Optional[Expr] = None
    #: set by query modification: locate tuples via P-node TIDs (replace')
    via_pnode: bool = False


@dataclass
class SortKey:
    """One ``sort by`` key: an expression and a direction."""

    expr: Expr
    ascending: bool = True


@dataclass
class Retrieve(Command):
    """``retrieve [unique] [into rel] (targets) [from ...] [where ...]
    [sort by expr [asc|desc], ...]``"""

    targets: list[ResultColumn]
    into: Optional[str] = None
    from_items: list[FromItem] = field(default_factory=list)
    where: Optional[Expr] = None
    sort_keys: list[SortKey] = field(default_factory=list)
    unique: bool = False


@dataclass
class Block(Command):
    """``do cmd1 cmd2 ... end`` — a transition block.

    "Blocks may not be nested.  The programmer designing a database
    transaction thus has control over where transitions occur."
    (paper section 2.2.1)
    """

    commands: list[Command]


@dataclass
class DefineRule(Command):
    """``define rule name [in ruleset] [priority p] [on event]
    [if condition [from ...]] then action`` (paper section 2.1)."""

    name: str
    action: Command
    ruleset: Optional[str] = None
    priority: float = 0.0
    event: Optional[EventSpec] = None
    condition: Optional[Expr] = None
    from_items: list[FromItem] = field(default_factory=list)


@dataclass
class RemoveRule(Command):
    """``remove rule name``"""

    name: str


@dataclass
class ActivateRule(Command):
    """``activate rule name`` — build the rule's discrimination network
    and prime its memories (paper section 6)."""

    name: str


@dataclass
class DeactivateRule(Command):
    """``deactivate rule name`` — tear the rule's network down."""

    name: str


@dataclass
class Halt(Command):
    """``halt`` — stop the recognize-act cycle (paper Figure 1)."""


@dataclass
class Explain(Command):
    """``explain [analyze] <command>`` — show (and with ``analyze``,
    execute and profile) a data command's physical plan."""

    command: Command
    analyze: bool = False


CommandNode = Union[
    CreateRelation, DestroyRelation, DefineIndex, RemoveIndex,
    Append, Delete, Replace, Retrieve, Block,
    DefineRule, RemoveRule, ActivateRule, DeactivateRule, Halt,
    Explain,
]


# ----------------------------------------------------------------------
# parameter collection
# ----------------------------------------------------------------------

def collect_params(node) -> list[Param]:
    """Every :class:`Param` node of a command (or expression), in
    first-appearance order.  The de-duplicated name sequence is a
    statement's *parameter signature*."""
    out: list[Param] = []
    _walk_params(node, out)
    return out


def _walk_params(node, out: list[Param]) -> None:
    if node is None:
        return
    if isinstance(node, Param):
        out.append(node)
    elif isinstance(node, BinOp):
        _walk_params(node.left, out)
        _walk_params(node.right, out)
    elif isinstance(node, UnaryOp):
        _walk_params(node.operand, out)
    elif isinstance(node, AggregateCall):
        _walk_params(node.argument, out)
    elif isinstance(node, ResultColumn):
        _walk_params(node.expr, out)
    elif isinstance(node, SortKey):
        _walk_params(node.expr, out)
    elif isinstance(node, Append):
        for col in node.targets:
            _walk_params(col, out)
        _walk_params(node.where, out)
    elif isinstance(node, Delete):
        _walk_params(node.where, out)
    elif isinstance(node, Replace):
        for col in node.assignments:
            _walk_params(col, out)
        _walk_params(node.where, out)
    elif isinstance(node, Retrieve):
        for col in node.targets:
            _walk_params(col, out)
        _walk_params(node.where, out)
        for key in node.sort_keys:
            _walk_params(key, out)
    elif isinstance(node, Block):
        for command in node.commands:
            _walk_params(command, out)
    elif isinstance(node, DefineRule):
        _walk_params(node.condition, out)
        _walk_params(node.action, out)


def param_signature(node) -> tuple[str, ...]:
    """Distinct parameter names of a command, in first-appearance order."""
    seen: set[str] = set()
    names: list[str] = []
    for param in collect_params(node):
        if param.name not in seen:
            seen.add(param.name)
            names.append(param.name)
    return tuple(names)


# ----------------------------------------------------------------------
# deparser
# ----------------------------------------------------------------------

def deparse(node) -> str:
    """Render an AST node back to command text.

    The output reparses to an equal tree (round-trip property, tested);
    it is also how rule definitions are displayed to users.
    """
    return _Deparser().render(node)


class _Deparser:
    def render(self, node) -> str:
        method = getattr(self, f"_render_{type(node).__name__}", None)
        if method is None:
            raise TypeError(f"cannot deparse {type(node).__name__}")
        return method(node)

    # -- expressions ---------------------------------------------------

    def _render_Const(self, node: Const) -> str:
        if node.value is None:
            return "null"
        if isinstance(node.value, bool):
            return "true" if node.value else "false"
        if isinstance(node.value, str):
            from repro.lang.literals import encode_string
            return encode_string(node.value)
        return repr(node.value)

    def _render_AttrRef(self, node: AttrRef) -> str:
        prefix = "previous " if node.previous else ""
        return f"{prefix}{node.var}.{node.attr}"

    def _render_AllRef(self, node: AllRef) -> str:
        return f"{node.var}.all"

    def _render_Param(self, node: Param) -> str:
        return f"${node.name}"

    def _render_NewCall(self, node: NewCall) -> str:
        return f"new({node.var})"

    def _render_AggregateCall(self, node: AggregateCall) -> str:
        return f"{node.func}({self.render(node.argument)})"

    def _render_BinOp(self, node: BinOp) -> str:
        left = self._maybe_paren(node.left, node.op, is_right=False)
        right = self._maybe_paren(node.right, node.op, is_right=True)
        return f"{left} {node.op} {right}"

    def _render_UnaryOp(self, node: UnaryOp) -> str:
        operand = self.render(node.operand)
        if isinstance(node.operand, BinOp):
            operand = f"({operand})"
        if node.op == "not":
            return f"not {operand}"
        if operand.startswith("-"):
            # avoid "--x", which the lexer would read as a comment
            operand = f"({operand})"
        return f"{node.op}{operand}"

    _PRECEDENCE = {
        "or": 1, "and": 2,
        "=": 3, "!=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3,
        "+": 4, "-": 4, "*": 5, "/": 5,
    }

    def _maybe_paren(self, child: Expr, parent_op: str,
                     is_right: bool) -> str:
        text = self.render(child)
        if not isinstance(child, BinOp):
            return text
        parent_prec = self._PRECEDENCE[parent_op]
        child_prec = self._PRECEDENCE[child.op]
        if child_prec < parent_prec or (child_prec == parent_prec
                                        and is_right):
            return f"({text})"
        return text

    # -- helpers ---------------------------------------------------------

    def _render_targets(self, targets: list[ResultColumn]) -> str:
        parts = []
        for col in targets:
            expr = self.render(col.expr)
            parts.append(f"{col.name} = {expr}" if col.name else expr)
        return ", ".join(parts)

    def _render_tail(self, from_items, where) -> str:
        text = ""
        if from_items:
            items = ", ".join(f"{f.var} in {f.relation}" for f in from_items)
            text += f" from {items}"
        if where is not None:
            text += f" where {self.render(where)}"
        return text

    # -- commands --------------------------------------------------------

    def _render_CreateRelation(self, node: CreateRelation) -> str:
        cols = ", ".join(f"{c.name} = {c.type_name}" for c in node.columns)
        return f"create {node.name} ({cols})"

    def _render_DestroyRelation(self, node: DestroyRelation) -> str:
        return f"destroy {node.name}"

    def _render_DefineIndex(self, node: DefineIndex) -> str:
        return (f"define index {node.name} on {node.relation} "
                f"({node.attribute}) using {node.kind}")

    def _render_RemoveIndex(self, node: RemoveIndex) -> str:
        return f"remove index {node.name}"

    def _render_Append(self, node: Append) -> str:
        text = (f"append to {node.relation} "
                f"({self._render_targets(node.targets)})")
        return text + self._render_tail(node.from_items, node.where)

    def _render_Delete(self, node: Delete) -> str:
        text = f"delete {node.target_var}"
        return text + self._render_tail(node.from_items, node.where)

    def _render_Replace(self, node: Replace) -> str:
        text = (f"replace {node.target_var} "
                f"({self._render_targets(node.assignments)})")
        return text + self._render_tail(node.from_items, node.where)

    def _render_Retrieve(self, node: Retrieve) -> str:
        unique = " unique" if node.unique else ""
        into = f" into {node.into}" if node.into else ""
        text = (f"retrieve{unique}{into} "
                f"({self._render_targets(node.targets)})")
        text += self._render_tail(node.from_items, node.where)
        if node.sort_keys:
            keys = ", ".join(
                self.render(k.expr) + ("" if k.ascending else " desc")
                for k in node.sort_keys)
            text += f" sort by {keys}"
        return text

    def _render_Block(self, node: Block) -> str:
        inner = "\n".join("    " + self.render(c) for c in node.commands)
        return f"do\n{inner}\nend"

    def _render_DefineRule(self, node: DefineRule) -> str:
        parts = [f"define rule {node.name}"]
        if node.ruleset:
            parts.append(f"in {node.ruleset}")
        if node.priority:
            parts.append(f"priority {node.priority!r}")
        if node.event:
            event = f"on {node.event.kind.value} {node.event.relation}"
            if node.event.attributes:
                event += f" ({', '.join(node.event.attributes)})"
            parts.append(event)
        if node.condition is not None:
            cond = f"if {self.render(node.condition)}"
            if node.from_items:
                items = ", ".join(f"{f.var} in {f.relation}"
                                  for f in node.from_items)
                cond += f" from {items}"
            parts.append(cond)
        parts.append(f"then {self.render(node.action)}")
        return "\n".join(parts)

    def _render_RemoveRule(self, node: RemoveRule) -> str:
        return f"remove rule {node.name}"

    def _render_ActivateRule(self, node: ActivateRule) -> str:
        return f"activate rule {node.name}"

    def _render_DeactivateRule(self, node: DeactivateRule) -> str:
        return f"deactivate rule {node.name}"

    def _render_Halt(self, node: Halt) -> str:
        return "halt"

    def _render_Explain(self, node: Explain) -> str:
        analyze = " analyze" if node.analyze else ""
        return f"explain{analyze} {self.render(node.command)}"
