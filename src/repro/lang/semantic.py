"""Semantic analysis: name resolution and type checking.

The analyzer resolves tuple variables to relations (explicit ``from``
bindings plus POSTQUEL's *default tuple variables*, where a relation name
used directly acts as a variable over that relation — paper section 2.1),
annotates every attribute reference with its position in the relation's
schema, infers expression types, and enforces the language's static rules:

* ``previous`` and ``new()`` only appear in rule conditions/actions;
* ``do … end`` blocks may not be nested (paper section 2.2.1);
* replace/append assignments name real attributes with compatible types;
* rule actions may share tuple variables with the rule condition — those
  references are resolved against the condition's bindings and later bound
  to the P-node by query modification.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.catalog import Catalog
from repro.catalog.schema import AttributeType
from repro.errors import SemanticError
from repro.lang import ast_nodes as ast


@dataclass
class Scope:
    """Tuple-variable bindings available to an expression.

    ``rule_vars`` is the subset bound by a rule's condition (shared
    variables, in the paper's terms); ``allow_previous`` / ``allow_new``
    gate the rule-only constructs.
    """

    bindings: dict[str, str] = field(default_factory=dict)  # var -> relation
    rule_vars: frozenset[str] = frozenset()
    allow_previous: bool = False
    allow_new: bool = False
    #: aggregates permitted only in retrieve target lists
    allow_aggregates: bool = False

    def bind(self, var: str, relation: str) -> None:
        existing = self.bindings.get(var)
        if existing is not None and existing != relation:
            raise SemanticError(
                f"tuple variable {var!r} bound to both {existing!r} "
                f"and {relation!r}")
        self.bindings[var] = relation

    def relation_of(self, var: str) -> str | None:
        return self.bindings.get(var)


def _contains_aggregate(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.AggregateCall):
        return True
    if isinstance(expr, ast.BinOp):
        return (_contains_aggregate(expr.left)
                or _contains_aggregate(expr.right))
    if isinstance(expr, ast.UnaryOp):
        return _contains_aggregate(expr.operand)
    return False


def _has_bare_attr_outside_aggregate(expr: ast.Expr) -> bool:
    """Any attribute reference not wrapped in an aggregate call?"""
    if isinstance(expr, (ast.AttrRef, ast.AllRef)):
        return True
    if isinstance(expr, ast.AggregateCall):
        return False       # references inside the aggregate are fine
    if isinstance(expr, ast.BinOp):
        return (_has_bare_attr_outside_aggregate(expr.left)
                or _has_bare_attr_outside_aggregate(expr.right))
    if isinstance(expr, ast.UnaryOp):
        return _has_bare_attr_outside_aggregate(expr.operand)
    return False


class SemanticAnalyzer:
    """Validates and annotates parsed commands against a catalog."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------

    def analyze(self, command: ast.Command,
                outer: Scope | None = None) -> ast.Command:
        """Analyze (and annotate in place) one command.

        ``outer`` carries a rule condition's bindings into the rule's
        action commands.
        """
        handler = getattr(self, f"_analyze_{type(command).__name__}", None)
        if handler is None:
            raise SemanticError(
                f"cannot analyze {type(command).__name__}")
        handler(command, outer or Scope())
        return command

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------

    def _analyze_CreateRelation(self, cmd: ast.CreateRelation,
                                outer: Scope) -> None:
        if self.catalog.has_relation(cmd.name):
            raise SemanticError(f"relation {cmd.name!r} already exists")
        seen = set()
        for col in cmd.columns:
            if col.name in seen:
                raise SemanticError(f"duplicate column {col.name!r}")
            seen.add(col.name)
            AttributeType.from_name(col.type_name)   # validates

    def _analyze_DestroyRelation(self, cmd: ast.DestroyRelation,
                                 outer: Scope) -> None:
        self.catalog.relation(cmd.name)

    def _analyze_DefineIndex(self, cmd: ast.DefineIndex,
                             outer: Scope) -> None:
        relation = self.catalog.relation(cmd.relation)
        relation.schema.position(cmd.attribute)
        if cmd.kind not in ("btree", "hash"):
            raise SemanticError(
                f"unknown index kind {cmd.kind!r}; "
                f"accepted kinds: btree, hash")

    def _analyze_RemoveIndex(self, cmd: ast.RemoveIndex,
                             outer: Scope) -> None:
        self.catalog.index_info(cmd.name)

    def _analyze_Explain(self, cmd: ast.Explain, outer: Scope) -> None:
        if not isinstance(cmd.command, (ast.Retrieve, ast.Append,
                                        ast.Delete, ast.Replace)):
            raise SemanticError(
                "explain expects a data command "
                "(retrieve/append/delete/replace), not "
                f"{type(cmd.command).__name__}")
        self.analyze(cmd.command, outer)

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------

    def _analyze_Append(self, cmd: ast.Append, outer: Scope) -> None:
        target = self.catalog.relation(cmd.relation)
        scope = self._make_scope(cmd.from_items, outer)
        cmd.targets = self._expand_all_refs(cmd.targets, scope)
        self._bind_implicit(cmd.targets, cmd.where, scope,
                            extra_vars=())
        named = [c for c in cmd.targets if c.name is not None]
        if named and len(named) != len(cmd.targets):
            raise SemanticError(
                "append targets must be all named or all positional")
        if named:
            seen = set()
            for col in cmd.targets:
                if col.name in seen:
                    raise SemanticError(
                        f"duplicate target attribute {col.name!r}")
                seen.add(col.name)
                expected = target.schema.type_of(col.name)
                self._check_assignable(col, expected, scope)
        else:
            if len(cmd.targets) != len(target.schema):
                raise SemanticError(
                    f"append to {cmd.relation!r} expects "
                    f"{len(target.schema)} values, got {len(cmd.targets)}")
            for col, attr in zip(cmd.targets, target.schema):
                self._check_assignable(col, attr.type, scope)
        self._check_where(cmd.where, scope)
        self._stash_scope(cmd, scope)

    def _analyze_Delete(self, cmd: ast.Delete, outer: Scope) -> None:
        scope = self._make_scope(cmd.from_items, outer)
        self._resolve_target_var(cmd.target_var, scope)
        self._bind_implicit([], cmd.where, scope,
                            extra_vars=(cmd.target_var,))
        self._check_where(cmd.where, scope)
        self._stash_scope(cmd, scope)

    def _analyze_Replace(self, cmd: ast.Replace, outer: Scope) -> None:
        scope = self._make_scope(cmd.from_items, outer)
        relation_name = self._resolve_target_var(cmd.target_var, scope)
        schema = self.catalog.relation(relation_name).schema
        self._bind_implicit(cmd.assignments, cmd.where, scope,
                            extra_vars=(cmd.target_var,))
        seen = set()
        for col in cmd.assignments:
            if col.name is None:
                raise SemanticError("replace assignments must be named")
            if col.name in seen:
                raise SemanticError(
                    f"duplicate assignment to {col.name!r}")
            seen.add(col.name)
            self._check_assignable(col, schema.type_of(col.name), scope)
        self._check_where(cmd.where, scope)
        self._stash_scope(cmd, scope)

    def _analyze_Retrieve(self, cmd: ast.Retrieve, outer: Scope) -> None:
        if cmd.into is not None and self.catalog.has_relation(cmd.into):
            raise SemanticError(
                f"retrieve into: relation {cmd.into!r} already exists")
        scope = self._make_scope(cmd.from_items, outer)
        cmd.targets = self._expand_all_refs(cmd.targets, scope,
                                            bind_first=True)
        self._bind_implicit(cmd.targets, cmd.where, scope, extra_vars=())
        named = set()
        for col in cmd.targets:
            scope.allow_aggregates = True
            try:
                self._check_expr(col.expr, scope)
            finally:
                scope.allow_aggregates = False
            # Explicitly named result columns must be unique; derived
            # names (attr names from different variables) may repeat.
            if col.name is not None:
                if col.name in named:
                    raise SemanticError(
                        f"duplicate result column {col.name!r}")
                named.add(col.name)
        self._check_where(cmd.where, scope)
        for key in cmd.sort_keys:
            key_type = self._check_expr(key.expr, scope)
            if key_type is AttributeType.BOOL:
                raise SemanticError("cannot sort by a boolean expression")
        self._check_aggregation_shape(cmd)
        self._stash_scope(cmd, scope)

    def _check_aggregation_shape(self, cmd: ast.Retrieve) -> None:
        """POSTQUEL implicit grouping: when any target aggregates, every
        target must be either aggregate-free (a group key) or an
        expression over aggregates and constants only."""
        has_aggregate = any(_contains_aggregate(col.expr)
                            for col in cmd.targets)
        if not has_aggregate:
            return
        for col in cmd.targets:
            if not _contains_aggregate(col.expr):
                continue
            if _has_bare_attr_outside_aggregate(col.expr):
                raise SemanticError(
                    "an aggregated result column may not also reference "
                    "attributes outside the aggregate")
        if cmd.sort_keys:
            raise SemanticError(
                "sort by is not supported on aggregated retrieves")

    def _analyze_Block(self, cmd: ast.Block, outer: Scope) -> None:
        for sub in cmd.commands:
            if isinstance(sub, ast.Block):
                raise SemanticError(
                    "do ... end blocks may not be nested")
            if isinstance(sub, (ast.DefineRule, ast.RemoveRule,
                                ast.ActivateRule, ast.DeactivateRule)):
                raise SemanticError(
                    "rule management commands are not allowed inside "
                    "a transition block")
            self.analyze(sub, outer)

    def _analyze_Halt(self, cmd: ast.Halt, outer: Scope) -> None:
        return None

    # ------------------------------------------------------------------
    # rules
    # ------------------------------------------------------------------

    def _analyze_DefineRule(self, cmd: ast.DefineRule,
                            outer: Scope) -> None:
        if self.catalog.has_rule(cmd.name):
            raise SemanticError(f"rule {cmd.name!r} already exists")
        params = ast.collect_params(cmd)
        if params:
            raise SemanticError(
                f"parameter ${params[0].name} is not allowed in a rule "
                f"definition; rules have no statement-level parameters")
        scope = self._make_scope(cmd.from_items, Scope())
        scope.allow_previous = True
        scope.allow_new = True
        if cmd.event is not None:
            relation = self.catalog.relation(cmd.event.relation)
            for attr in cmd.event.attributes:
                relation.schema.position(attr)
            if (cmd.event.attributes
                    and cmd.event.kind is not ast.EventKind.REPLACE):
                raise SemanticError(
                    "an attribute list on an event is only meaningful "
                    "for replace events")
            scope.bind(cmd.event.relation, cmd.event.relation)
        if cmd.condition is not None:
            self._bind_implicit([], cmd.condition, scope, extra_vars=())
            cond_type = self._check_expr(cmd.condition, scope)
            if cond_type is not AttributeType.BOOL:
                raise SemanticError("rule condition must be boolean")
        if cmd.condition is None and cmd.event is None:
            raise SemanticError(
                f"rule {cmd.name!r} needs an on clause, an if clause, "
                f"or both")
        cmd.condition_scope = dict(scope.bindings)
        # The action sees the condition's variables as shared variables.
        action_outer = Scope(
            bindings=dict(scope.bindings),
            rule_vars=frozenset(scope.bindings),
            allow_previous=True,
            allow_new=False,
        )
        if isinstance(cmd.action, ast.Block):
            for sub in cmd.action.commands:
                if isinstance(sub, ast.Block):
                    raise SemanticError(
                        "do ... end blocks may not be nested")
                self._check_action_command(sub)
                self.analyze(sub, action_outer)
        else:
            self._check_action_command(cmd.action)
            self.analyze(cmd.action, action_outer)

    @staticmethod
    def _check_action_command(sub: ast.Command) -> None:
        allowed = (ast.Append, ast.Delete, ast.Replace, ast.Retrieve,
                   ast.Halt)
        if not isinstance(sub, allowed):
            raise SemanticError(
                f"{type(sub).__name__} is not allowed in a rule action")

    def _analyze_RemoveRule(self, cmd: ast.RemoveRule,
                            outer: Scope) -> None:
        self.catalog.rule(cmd.name)

    def _analyze_ActivateRule(self, cmd: ast.ActivateRule,
                              outer: Scope) -> None:
        self.catalog.rule(cmd.name)

    def _analyze_DeactivateRule(self, cmd: ast.DeactivateRule,
                                outer: Scope) -> None:
        self.catalog.rule(cmd.name)

    # ------------------------------------------------------------------
    # scope construction
    # ------------------------------------------------------------------

    @staticmethod
    def _stash_scope(cmd: ast.Command, scope: Scope) -> None:
        """Record the resolved var -> relation map for the planner."""
        cmd.resolved_scope = dict(scope.bindings)
        cmd.rule_vars = scope.rule_vars
        cmd.param_signature = ast.param_signature(cmd)

    def _make_scope(self, from_items: list[ast.FromItem],
                    outer: Scope) -> Scope:
        scope = Scope(
            bindings=dict(outer.bindings),
            rule_vars=outer.rule_vars,
            allow_previous=outer.allow_previous,
            allow_new=outer.allow_new,
        )
        for item in from_items:
            self.catalog.relation(item.relation)   # must exist
            scope.bind(item.var, item.relation)
        return scope

    def _bind_implicit(self, targets, where, scope: Scope,
                       extra_vars: tuple[str, ...]) -> None:
        """Bind default tuple variables: unbound names matching relations."""
        used: set[str] = set(extra_vars)
        for col in targets or ():
            self._collect_vars(col.expr, used)
        if where is not None:
            self._collect_vars(where, used)
        for var in sorted(used):
            if scope.relation_of(var) is None:
                if self.catalog.has_relation(var):
                    scope.bind(var, var)
                else:
                    raise SemanticError(
                        f"unknown tuple variable or relation {var!r}")

    def _resolve_target_var(self, var: str, scope: Scope) -> str:
        relation = scope.relation_of(var)
        if relation is None:
            if not self.catalog.has_relation(var):
                raise SemanticError(
                    f"unknown tuple variable or relation {var!r}")
            scope.bind(var, var)
            relation = var
        return relation

    @staticmethod
    def _collect_vars(expr: ast.Expr, out: set[str]) -> None:
        if isinstance(expr, (ast.AttrRef, ast.AllRef, ast.NewCall)):
            out.add(expr.var)
        elif isinstance(expr, ast.BinOp):
            SemanticAnalyzer._collect_vars(expr.left, out)
            SemanticAnalyzer._collect_vars(expr.right, out)
        elif isinstance(expr, ast.UnaryOp):
            SemanticAnalyzer._collect_vars(expr.operand, out)
        elif isinstance(expr, ast.AggregateCall):
            SemanticAnalyzer._collect_vars(expr.argument, out)

    def _expand_all_refs(self, targets: list[ast.ResultColumn],
                         scope: Scope,
                         bind_first: bool = False
                         ) -> list[ast.ResultColumn]:
        """Expand ``var.all`` into one positional column per attribute."""
        expanded: list[ast.ResultColumn] = []
        for col in targets:
            if not isinstance(col.expr, ast.AllRef):
                expanded.append(col)
                continue
            if col.name is not None:
                raise SemanticError(
                    f"{col.expr.var}.all cannot be renamed")
            var = col.expr.var
            relation = scope.relation_of(var)
            if relation is None:
                if not self.catalog.has_relation(var):
                    raise SemanticError(
                        f"unknown tuple variable or relation {var!r}")
                scope.bind(var, var)
                relation = var
            schema = self.catalog.relation(relation).schema
            for attr in schema:
                expanded.append(ast.ResultColumn(
                    None, ast.AttrRef(var, attr.name)))
        return expanded

    @staticmethod
    def _result_name(col: ast.ResultColumn, position: int) -> str:
        if col.name is not None:
            return col.name
        if isinstance(col.expr, ast.AttrRef):
            return col.expr.attr
        return f"column{position + 1}"

    # ------------------------------------------------------------------
    # expression checking
    # ------------------------------------------------------------------

    def _check_where(self, where: ast.Expr | None, scope: Scope) -> None:
        if where is None:
            return
        where_type = self._check_expr(where, scope)
        if where_type not in (AttributeType.BOOL, None):
            raise SemanticError("where clause must be boolean")

    def _check_assignable(self, col: ast.ResultColumn,
                          expected: AttributeType, scope: Scope) -> None:
        actual = self._check_expr(col.expr, scope)
        if isinstance(col.expr, ast.Param) and actual is None:
            col.expr.type = expected
        if actual is None or actual is expected:
            return                      # null is assignable anywhere
        if (expected is AttributeType.FLOAT
                and actual is AttributeType.INT):
            return
        name = col.name or "<positional>"
        raise SemanticError(
            f"cannot assign {actual.value} expression to "
            f"{expected.value} attribute {name!r}")

    def _check_expr(self, expr: ast.Expr, scope: Scope) -> AttributeType:
        if isinstance(expr, ast.Const):
            return self._const_type(expr.value)
        if isinstance(expr, ast.Param):
            # A placeholder's type is unknown until it meets a typed
            # operand (see _check_binop / _check_assignable); until then
            # it behaves like the null literal, compatible with anything.
            return expr.type
        if isinstance(expr, ast.AttrRef):
            return self._check_attr_ref(expr, scope)
        if isinstance(expr, ast.NewCall):
            if not scope.allow_new:
                raise SemanticError(
                    "new() is only valid in a rule condition")
            if scope.relation_of(expr.var) is None:
                if not self.catalog.has_relation(expr.var):
                    raise SemanticError(
                        f"unknown tuple variable or relation {expr.var!r}")
                scope.bind(expr.var, expr.var)
            return AttributeType.BOOL
        if isinstance(expr, ast.AggregateCall):
            return self._check_aggregate(expr, scope)
        if isinstance(expr, ast.AllRef):
            raise SemanticError(
                f"{expr.var}.all is only valid in a target list")
        if isinstance(expr, ast.UnaryOp):
            operand = self._check_expr(expr.operand, scope)
            if expr.op == "-":
                if operand not in (AttributeType.INT,
                                   AttributeType.FLOAT, None):
                    raise SemanticError("unary minus needs a numeric "
                                        "operand")
                return operand
            if operand not in (AttributeType.BOOL, None):
                raise SemanticError("not needs a boolean operand")
            return AttributeType.BOOL
        if isinstance(expr, ast.BinOp):
            return self._check_binop(expr, scope)
        raise SemanticError(f"cannot type-check {type(expr).__name__}")

    def _check_attr_ref(self, expr: ast.AttrRef,
                        scope: Scope) -> AttributeType:
        relation = scope.relation_of(expr.var)
        if relation is None:
            if not self.catalog.has_relation(expr.var):
                raise SemanticError(
                    f"unknown tuple variable or relation {expr.var!r}")
            scope.bind(expr.var, expr.var)
            relation = expr.var
        if expr.previous and not scope.allow_previous:
            raise SemanticError(
                "previous is only valid in rule conditions and actions")
        schema = self.catalog.relation(relation).schema
        expr.position = schema.position(expr.attr)
        return schema.type_of(expr.attr)

    def _check_aggregate(self, expr: ast.AggregateCall,
                         scope: Scope) -> AttributeType | None:
        if not scope.allow_aggregates:
            raise SemanticError(
                f"{expr.func}() is only allowed in a retrieve target "
                f"list")
        if isinstance(expr.argument, ast.AllRef):
            if expr.func != "count":
                raise SemanticError(
                    f"{expr.func}(var.all) is not meaningful; only "
                    f"count(var.all) counts rows")
            # bind the variable like any other reference
            var = expr.argument.var
            if scope.relation_of(var) is None:
                if not self.catalog.has_relation(var):
                    raise SemanticError(
                        f"unknown tuple variable or relation {var!r}")
                scope.bind(var, var)
            return AttributeType.INT
        scope.allow_aggregates = False
        try:
            argument = self._check_expr(expr.argument, scope)
        finally:
            scope.allow_aggregates = True
        if expr.func == "count":
            return AttributeType.INT
        if expr.func == "avg":
            if argument not in (AttributeType.INT, AttributeType.FLOAT,
                                None):
                raise SemanticError("avg() needs a numeric argument")
            return AttributeType.FLOAT
        if expr.func == "sum":
            if argument not in (AttributeType.INT, AttributeType.FLOAT,
                                None):
                raise SemanticError("sum() needs a numeric argument")
            return argument
        # min / max: any ordered type
        if argument is AttributeType.BOOL:
            raise SemanticError(f"{expr.func}() cannot order booleans")
        return argument

    def _check_binop(self, expr: ast.BinOp,
                     scope: Scope) -> AttributeType | None:
        """Type of a binary expression.

        A ``None`` operand type is the null literal: it is compatible
        with everything (the run-time value is always unknown).
        """
        left = self._check_expr(expr.left, scope)
        right = self._check_expr(expr.right, scope)
        if isinstance(expr.left, ast.Param) and left is None:
            expr.left.type = right
        if isinstance(expr.right, ast.Param) and right is None:
            expr.right.type = left
        numeric = (AttributeType.INT, AttributeType.FLOAT, None)
        if expr.op in ast.LOGICAL_OPS:
            if left not in (AttributeType.BOOL, None) \
                    or right not in (AttributeType.BOOL, None):
                raise SemanticError(
                    f"{expr.op} needs boolean operands")
            return AttributeType.BOOL
        if expr.op in ast.ARITHMETIC_OPS:
            if left not in numeric or right not in numeric:
                raise SemanticError(
                    f"operator {expr.op!r} needs numeric operands")
            if AttributeType.FLOAT in (left, right):
                return AttributeType.FLOAT
            if left is None or right is None:
                return None
            return AttributeType.INT
        if expr.op in ast.COMPARISON_OPS:
            comparable = (left is right or left is None or right is None
                          or (left in numeric and right in numeric))
            if not comparable:
                raise SemanticError(
                    f"cannot compare {left.value} with {right.value}")
            if AttributeType.BOOL in (left, right) \
                    and expr.op not in ("=", "!="):
                raise SemanticError("booleans only support = and !=")
            return AttributeType.BOOL
        raise SemanticError(f"unknown operator {expr.op!r}")

    @staticmethod
    def _const_type(value: object) -> AttributeType | None:
        if value is None:
            return None                 # the null literal
        if isinstance(value, bool):
            return AttributeType.BOOL
        if isinstance(value, int):
            return AttributeType.INT
        if isinstance(value, float):
            return AttributeType.FLOAT
        if isinstance(value, str):
            return AttributeType.TEXT
        raise SemanticError(f"unsupported literal {value!r}")
