"""Recursive-descent parser for the POSTQUEL subset and ARL.

The grammar follows the paper's section 2 exactly where it is spelled out
(the ``define rule`` form, events, ``previous``, ``new()``, ``do … end``
blocks) and standard POSTQUEL for the data commands::

    command   := create | destroy | define-index | remove-index
               | append | delete | replace | retrieve | block
               | define-rule | remove-rule | activate | deactivate | halt
    append    := "append" ["to"] name "(" targets ")" tail
    delete    := "delete" ["from"] name tail
    replace   := "replace" name "(" targets ")" tail
    retrieve  := "retrieve" ["into" name] "(" targets ")" tail
    tail      := ["from" from-list] ["where" expr]
    rule      := "define" "rule" name ["in" name] ["priority" number]
                 ["on" event] ["if" expr ["from" from-list]] "then" action
    event     := ("append" ["to"] | "delete" ["from"] | "replace" ["to"])
                 name ["(" name-list ")"]
    action    := command | block
    block     := "do" command+ "end"

Expression precedence, loosest first: ``or``, ``and``, ``not``,
comparisons, ``+ -``, ``* /``, unary minus.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.lang import ast_nodes as ast
from repro.lang.lexer import Token, tokenize


class Parser:
    """Parses one command (or a script of commands) from a token list."""

    def __init__(self, text: str):
        self._tokens = tokenize(text)
        self._pos = 0

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        i = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[i]

    def _advance(self) -> Token:
        token = self._peek()
        if token.kind != "eof":
            self._pos += 1
        return token

    def _check(self, kind: str, value=None) -> bool:
        token = self._peek()
        if token.kind != kind:
            return False
        return value is None or token.value == value

    def _accept(self, kind: str, value=None) -> Token | None:
        if self._check(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: str, value=None) -> Token:
        token = self._peek()
        if not self._check(kind, value):
            expected = value if value is not None else kind
            raise ParseError(f"expected {expected!r}, found {token}",
                             token.line, token.column)
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        return self._expect("keyword", word)

    def _name(self) -> str:
        """An identifier; keywords are allowed where a name is required
        (so a relation may have an attribute called ``priority``)."""
        token = self._peek()
        if token.kind in ("ident", "keyword"):
            self._advance()
            return str(token.value)
        raise ParseError(f"expected a name, found {token}",
                         token.line, token.column)

    def at_end(self) -> bool:
        return self._peek().kind == "eof"

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------

    def parse_command(self) -> ast.Command:
        """Parse exactly one command; trailing input is an error."""
        command = self._command()
        if not self.at_end():
            token = self._peek()
            raise ParseError(f"unexpected input after command: {token}",
                             token.line, token.column)
        return command

    def parse_script(self) -> list[ast.Command]:
        """Parse a sequence of commands until end of input."""
        commands = []
        while not self.at_end():
            commands.append(self._command())
        return commands

    # ------------------------------------------------------------------
    # commands
    # ------------------------------------------------------------------

    def _command(self) -> ast.Command:
        token = self._peek()
        if token.kind != "keyword":
            raise ParseError(f"expected a command, found {token}",
                             token.line, token.column)
        handlers = {
            "create": self._create,
            "destroy": self._destroy,
            "append": self._append,
            "delete": self._delete,
            "replace": self._replace,
            "retrieve": self._retrieve,
            "do": self._block,
            "define": self._define,
            "remove": self._remove,
            "activate": self._activate,
            "deactivate": self._deactivate,
            "halt": self._halt,
            "explain": self._explain,
        }
        handler = handlers.get(token.value)
        if handler is None:
            raise ParseError(f"unknown command {token}",
                             token.line, token.column)
        return handler()

    def _create(self) -> ast.CreateRelation:
        self._expect_keyword("create")
        name = self._name()
        self._expect("op", "(")
        columns = []
        while True:
            col_name = self._name()
            self._expect("op", "=")
            type_name = self._name()
            columns.append(ast.ColumnDef(col_name, type_name))
            if not self._accept("op", ","):
                break
        self._expect("op", ")")
        return ast.CreateRelation(name, columns)

    def _destroy(self) -> ast.DestroyRelation:
        self._expect_keyword("destroy")
        return ast.DestroyRelation(self._name())

    def _explain(self) -> ast.Explain:
        self._expect_keyword("explain")
        analyze = bool(self._accept("keyword", "analyze"))
        return ast.Explain(self._command(), analyze)

    def _define(self) -> ast.Command:
        self._expect_keyword("define")
        if self._accept("keyword", "rule"):
            return self._define_rule()
        if self._accept("keyword", "index"):
            return self._define_index()
        token = self._peek()
        raise ParseError(f"expected 'rule' or 'index' after define, "
                         f"found {token}", token.line, token.column)

    def _define_index(self) -> ast.DefineIndex:
        name = self._name()
        self._expect_keyword("on")
        relation = self._name()
        self._expect("op", "(")
        attribute = self._name()
        self._expect("op", ")")
        kind = "btree"
        if self._accept("keyword", "using"):
            kind = self._name()
        return ast.DefineIndex(name, relation, attribute, kind)

    def _remove(self) -> ast.Command:
        self._expect_keyword("remove")
        if self._accept("keyword", "rule"):
            return ast.RemoveRule(self._name())
        if self._accept("keyword", "index"):
            return ast.RemoveIndex(self._name())
        token = self._peek()
        raise ParseError(f"expected 'rule' or 'index' after remove, "
                         f"found {token}", token.line, token.column)

    def _activate(self) -> ast.ActivateRule:
        self._expect_keyword("activate")
        self._expect_keyword("rule")
        return ast.ActivateRule(self._name())

    def _deactivate(self) -> ast.DeactivateRule:
        self._expect_keyword("deactivate")
        self._expect_keyword("rule")
        return ast.DeactivateRule(self._name())

    def _halt(self) -> ast.Halt:
        self._expect_keyword("halt")
        return ast.Halt()

    def _append(self) -> ast.Append:
        self._expect_keyword("append")
        self._accept("keyword", "to")
        relation = self._name()
        self._expect("op", "(")
        targets = self._target_list()
        self._expect("op", ")")
        from_items, where = self._tail()
        return ast.Append(relation, targets, from_items, where)

    def _delete(self) -> ast.Delete:
        self._expect_keyword("delete")
        # "delete from emp" is tolerated, matching the event syntax; but
        # "delete emp from d in dept" keeps "from" as the tail keyword, so
        # only consume "from" when a name follows immediately followed by
        # neither "in" nor end-of-names context.  Simplest unambiguous
        # rule: accept "from" here only when the next-next token is not
        # "in".
        if (self._check("keyword", "from")
                and not self._looks_like_from_list(1)):
            self._advance()
        target = self._name()
        from_items, where = self._tail()
        return ast.Delete(target, from_items, where)

    def _looks_like_from_list(self, offset: int) -> bool:
        """True if tokens at ``offset`` look like ``var in rel``."""
        return (self._peek(offset).kind in ("ident", "keyword")
                and self._peek(offset + 1).kind == "keyword"
                and self._peek(offset + 1).value == "in")

    def _replace(self) -> ast.Replace:
        self._expect_keyword("replace")
        target = self._name()
        self._expect("op", "(")
        assignments = self._target_list()
        self._expect("op", ")")
        for col in assignments:
            if col.name is None:
                raise ParseError(
                    "replace assignments must be of the form attr = expr")
        from_items, where = self._tail()
        return ast.Replace(target, assignments, from_items, where)

    def _retrieve(self) -> ast.Retrieve:
        self._expect_keyword("retrieve")
        unique = bool(self._accept("keyword", "unique"))
        into = None
        if self._accept("keyword", "into"):
            into = self._name()
        self._expect("op", "(")
        targets = self._target_list()
        self._expect("op", ")")
        from_items, where = self._tail()
        sort_keys: list[ast.SortKey] = []
        if self._accept("keyword", "sort"):
            self._expect_keyword("by")
            sort_keys.append(self._sort_key())
            while self._accept("op", ","):
                sort_keys.append(self._sort_key())
        return ast.Retrieve(targets, into, from_items, where, sort_keys,
                            unique)

    def _sort_key(self) -> ast.SortKey:
        expr = self._expr()
        ascending = True
        if self._accept("keyword", "desc"):
            ascending = False
        else:
            self._accept("keyword", "asc")
        return ast.SortKey(expr, ascending)

    def _block(self) -> ast.Block:
        self._expect_keyword("do")
        commands = []
        while not self._check("keyword", "end"):
            if self.at_end():
                token = self._peek()
                raise ParseError("unterminated do ... end block",
                                 token.line, token.column)
            commands.append(self._command())
        self._expect_keyword("end")
        if not commands:
            raise ParseError("empty do ... end block")
        return ast.Block(commands)

    def _define_rule(self) -> ast.DefineRule:
        name = self._name()
        ruleset = None
        if self._accept("keyword", "in"):
            ruleset = self._name()
        priority = 0.0
        if self._accept("keyword", "priority"):
            priority = float(self._signed_number())
        event = None
        if self._accept("keyword", "on"):
            event = self._event_spec()
        condition = None
        from_items: list[ast.FromItem] = []
        if self._accept("keyword", "if"):
            condition = self._expr()
            if self._accept("keyword", "from"):
                from_items = self._from_list()
        self._expect_keyword("then")
        action = self._command()
        return ast.DefineRule(name, action, ruleset, priority, event,
                              condition, from_items)

    def _event_spec(self) -> ast.EventSpec:
        token = self._peek()
        kinds = {"append": ast.EventKind.APPEND,
                 "delete": ast.EventKind.DELETE,
                 "replace": ast.EventKind.REPLACE}
        if token.kind != "keyword" or token.value not in kinds:
            raise ParseError(
                f"expected append, delete or replace after 'on', "
                f"found {token}", token.line, token.column)
        kind = kinds[self._advance().value]
        # optional "to"/"from" filler per the paper's grammar
        if kind is ast.EventKind.DELETE:
            self._accept("keyword", "from")
        else:
            self._accept("keyword", "to")
        relation = self._name()
        attributes: tuple[str, ...] = ()
        if self._accept("op", "("):
            names = [self._name()]
            while self._accept("op", ","):
                names.append(self._name())
            self._expect("op", ")")
            attributes = tuple(names)
        return ast.EventSpec(kind, relation, attributes)

    def _signed_number(self):
        sign = -1 if self._accept("op", "-") else 1
        token = self._expect("number")
        return sign * token.value

    # ------------------------------------------------------------------
    # target lists, from lists, tails
    # ------------------------------------------------------------------

    def _target_list(self) -> list[ast.ResultColumn]:
        targets = [self._target()]
        while self._accept("op", ","):
            targets.append(self._target())
        return targets

    def _target(self) -> ast.ResultColumn:
        # "name = expr" when an identifier is directly followed by '='
        # (but not '==' ... there is no '=='), otherwise a bare expression.
        if (self._peek().kind in ("ident", "keyword")
                and self._peek().value not in ("previous", "new", "not",
                                               "true", "false")
                and self._peek(1).kind == "op"
                and self._peek(1).value == "="):
            name = self._name()
            self._advance()   # '='
            return ast.ResultColumn(name, self._expr())
        return ast.ResultColumn(None, self._expr())

    def _from_list(self) -> list[ast.FromItem]:
        items = [self._from_item()]
        while self._accept("op", ","):
            items.append(self._from_item())
        return items

    def _from_item(self) -> ast.FromItem:
        var = self._name()
        self._expect_keyword("in")
        relation = self._name()
        return ast.FromItem(var, relation)

    def _tail(self) -> tuple[list[ast.FromItem], ast.Expr | None]:
        from_items: list[ast.FromItem] = []
        where = None
        if self._accept("keyword", "from"):
            from_items = self._from_list()
        if self._accept("keyword", "where"):
            where = self._expr()
        return from_items, where

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def _expr(self) -> ast.Expr:
        return self._or_expr()

    def _or_expr(self) -> ast.Expr:
        left = self._and_expr()
        while self._accept("keyword", "or"):
            left = ast.BinOp("or", left, self._and_expr())
        return left

    def _and_expr(self) -> ast.Expr:
        left = self._not_expr()
        while self._accept("keyword", "and"):
            left = ast.BinOp("and", left, self._not_expr())
        return left

    def _not_expr(self) -> ast.Expr:
        if self._accept("keyword", "not"):
            return ast.UnaryOp("not", self._not_expr())
        return self._comparison()

    def _comparison(self) -> ast.Expr:
        left = self._additive()
        token = self._peek()
        if token.kind == "op" and token.value in ast.COMPARISON_OPS:
            self._advance()
            op = token.value
            right = self._additive()
            return ast.BinOp(op, left, right)
        # "!=" may also be written "! ="?  No: the lexer produces '!='
        # as one token only; a lone '!' is a lex error.
        return left

    def _additive(self) -> ast.Expr:
        left = self._multiplicative()
        while True:
            token = self._peek()
            if token.kind == "op" and token.value in ("+", "-"):
                self._advance()
                left = ast.BinOp(token.value, left,
                                 self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> ast.Expr:
        left = self._unary()
        while True:
            token = self._peek()
            if token.kind == "op" and token.value in ("*", "/"):
                self._advance()
                left = ast.BinOp(token.value, left, self._unary())
            else:
                return left

    def _unary(self) -> ast.Expr:
        if self._accept("op", "-"):
            operand = self._unary()
            # Fold negative numeric literals into the constant so that
            # "-1" parses as Const(-1), matching what deparse emits.
            if isinstance(operand, ast.Const) \
                    and isinstance(operand.value, (int, float)) \
                    and not isinstance(operand.value, bool):
                return ast.Const(-operand.value)
            return ast.UnaryOp("-", operand)
        return self._primary()

    def _primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind == "param":
            self._advance()
            return ast.Param(str(token.value))
        if token.kind == "number":
            self._advance()
            return ast.Const(token.value)
        if token.kind == "string":
            self._advance()
            return ast.Const(token.value)
        if self._accept("keyword", "true"):
            return ast.Const(True)
        if self._accept("keyword", "false"):
            return ast.Const(False)
        if self._accept("keyword", "null"):
            return ast.Const(None)
        # inf/nan are literals unless used as a tuple variable (inf.attr)
        for word, literal in (("inf", float("inf")), ("nan", float("nan"))):
            if self._check("keyword", word) and not (
                    self._peek(1).kind == "op"
                    and self._peek(1).value == "."):
                self._advance()
                return ast.Const(literal)
        if self._accept("op", "("):
            expr = self._expr()
            self._expect("op", ")")
            return expr
        if self._accept("keyword", "previous"):
            var = self._name()
            self._expect("op", ".")
            attr = self._name()
            return ast.AttrRef(var, attr, previous=True)
        if self._check("keyword", "new") and self._peek(1).kind == "op" \
                and self._peek(1).value == "(":
            self._advance()
            self._advance()
            var = self._name()
            self._expect("op", ")")
            return ast.NewCall(var)
        if (token.kind == "ident"
                and token.value in ast.AGGREGATE_FUNCS
                and self._peek(1).kind == "op"
                and self._peek(1).value == "("):
            self._advance()
            self._advance()
            argument = self._expr()
            self._expect("op", ")")
            return ast.AggregateCall(str(token.value), argument)
        if token.kind in ("ident", "keyword"):
            var = self._name()
            self._expect("op", ".")
            attr = self._name()
            if attr == "all":
                return ast.AllRef(var)
            return ast.AttrRef(var, attr)
        raise ParseError(f"expected an expression, found {token}",
                         token.line, token.column)


def parse_command(text: str) -> ast.Command:
    """Parse exactly one command from ``text``."""
    return Parser(text).parse_command()


def parse_script(text: str) -> list[ast.Command]:
    """Parse a whole script (commands separated by whitespace/newlines)."""
    return Parser(text).parse_script()
