"""The POSTQUEL-subset query language plus the Ariel Rule Language (ARL).

Ariel "chose to support the relational data model and provide a subset of
the POSTQUEL query language of POSTGRES" extended "with a production-rule
language called the Ariel Rule Language" (paper section 2).  This package
implements the lexer, parser, abstract syntax, semantic analyzer and
expression machinery for that language.
"""

from repro.lang.lexer import Lexer, Token
from repro.lang.parser import Parser, parse_command, parse_script
from repro.lang.semantic import SemanticAnalyzer
from repro.lang import ast_nodes as ast

__all__ = [
    "Lexer",
    "Token",
    "Parser",
    "parse_command",
    "parse_script",
    "SemanticAnalyzer",
    "ast",
]
