"""Predicate analysis: conjunct splitting, selection/join classification,
and interval extraction.

Used by two clients:

* the **query optimizer**, to push selections to scans and pick join
  predicates/access paths;
* the **rule network builder**, to split a rule condition into per-variable
  selection predicates and inter-variable join predicates, and to find the
  interval form (``c1 < r.a <= c2``, ``c = r.a``, ``c < r.a`` …) that the
  top-level selection predicate index can index (paper section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SemanticError
from repro.intervals.interval import Interval, NEG_INF, POS_INF, key_lt
from repro.lang import ast_nodes as ast
from repro.lang.expr import constant_value, contains_params, variables_of


def split_conjuncts(expr: ast.Expr | None) -> list[ast.Expr]:
    """Flatten a predicate into its top-level AND conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, ast.BinOp) and expr.op == "and":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: list[ast.Expr]) -> ast.Expr | None:
    """Rebuild an AND tree from conjuncts (None when empty)."""
    result: ast.Expr | None = None
    for conjunct in conjuncts:
        result = (conjunct if result is None
                  else ast.BinOp("and", result, conjunct))
    return result


@dataclass(frozen=True)
class EquiJoinPredicate:
    """``left_var.left_attr = right_var.right_attr`` between two variables.

    Positions are resolved schema positions; the optimizer and the TREAT
    join step use them for index probes and hash keys.
    """

    left_var: str
    left_attr: str
    left_position: int
    right_var: str
    right_attr: str
    right_position: int

    def reversed(self) -> "EquiJoinPredicate":
        return EquiJoinPredicate(
            self.right_var, self.right_attr, self.right_position,
            self.left_var, self.left_attr, self.left_position)


@dataclass
class ConditionGraph:
    """A rule condition (or WHERE clause) split per the TREAT layout.

    * ``selections[var]`` — conjuncts referencing only ``var``;
    * ``joins`` — conjuncts referencing two or more variables;
    * ``constants`` — variable-free conjuncts (evaluated once).
    """

    selections: dict[str, list[ast.Expr]]
    joins: list[ast.Expr]
    constants: list[ast.Expr]

    def selection_predicate(self, var: str) -> ast.Expr | None:
        return conjoin(self.selections.get(var, []))

    def join_predicate(self) -> ast.Expr | None:
        return conjoin(self.joins)


def build_condition_graph(expr: ast.Expr | None,
                          variables: list[str]) -> ConditionGraph:
    """Partition a predicate into selections, joins and constants."""
    selections: dict[str, list[ast.Expr]] = {v: [] for v in variables}
    joins: list[ast.Expr] = []
    constants: list[ast.Expr] = []
    for conjunct in split_conjuncts(expr):
        referenced = variables_of(conjunct)
        unknown = referenced - set(variables)
        if unknown:
            raise SemanticError(
                f"predicate references unbound variables {sorted(unknown)}")
        if not referenced:
            constants.append(conjunct)
        elif len(referenced) == 1:
            selections[next(iter(referenced))].append(conjunct)
        else:
            joins.append(conjunct)
    return ConditionGraph(selections, joins, constants)


# ----------------------------------------------------------------------
# interval extraction for the selection predicate index
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class AttrInterval:
    """An interval constraint on one (non-``previous``) attribute."""

    attr: str
    position: int
    interval: Interval


def interval_of_conjunct(conjunct: ast.Expr,
                         var: str) -> AttrInterval | None:
    """The interval form of ``var.attr CMP const-expr``, if it has one.

    Returns None for conjuncts the interval index cannot handle (``!=``,
    ``previous`` references, arithmetic over the attribute, multiple
    attributes, ``new()``, …); those become residual predicates tested
    after the index probe.
    """
    if not isinstance(conjunct, ast.BinOp) \
            or conjunct.op not in ast.COMPARISON_OPS \
            or conjunct.op == "!=":
        return None
    sides = [(conjunct.left, conjunct.right, conjunct.op),
             (conjunct.right, conjunct.left, _flip(conjunct.op))]
    for attr_side, const_side, op in sides:
        if not isinstance(attr_side, ast.AttrRef) or attr_side.previous:
            continue
        if attr_side.var != var:
            continue
        if variables_of(const_side):
            continue
        try:
            bound = constant_value(const_side)
        except SemanticError:
            continue
        if bound is None:
            return None
        return AttrInterval(attr_side.attr, attr_side.position or 0,
                            _interval_for(op, bound))
    return None


def _flip(op: str) -> str:
    return {"=": "=", "!=": "!=", "<": ">", "<=": ">=",
            ">": "<", ">=": "<="}[op]


def _interval_for(op: str, bound) -> Interval:
    if op == "=":
        return Interval.point(bound)
    if op == "<":
        return Interval.at_most(bound, closed=False)
    if op == "<=":
        return Interval.at_most(bound, closed=True)
    if op == ">":
        return Interval.at_least(bound, closed=False)
    return Interval.at_least(bound, closed=True)


def intersect(a: Interval, b: Interval) -> Interval | None:
    """Intersection of two intervals (None when empty).

    Payloads are dropped; callers re-attach their own.
    """
    if key_lt(a.low, b.low):
        low, low_closed = b.low, b.low_closed
    elif key_lt(b.low, a.low):
        low, low_closed = a.low, a.low_closed
    else:
        low, low_closed = a.low, a.low_closed and b.low_closed
    if key_lt(a.high, b.high):
        high, high_closed = a.high, a.high_closed
    elif key_lt(b.high, a.high):
        high, high_closed = b.high, b.high_closed
    else:
        high, high_closed = a.high, a.high_closed and b.high_closed
    try:
        return Interval(low, high, low_closed, high_closed)
    except ValueError:
        return None


@dataclass
class SelectionAnalysis:
    """A variable's selection predicate, split for index anchoring.

    ``anchor`` is the tightest interval constraint on a single attribute,
    obtained by intersecting every interval-form conjunct on the chosen
    attribute; ``residual`` is the AND of all remaining conjuncts
    (including conjuncts on other attributes), to be verified after the
    index reports a candidate match.  ``unsatisfiable`` marks predicates
    whose interval conjuncts contradict (empty intersection).
    """

    anchor: AttrInterval | None
    residual: ast.Expr | None
    unsatisfiable: bool = False


def analyze_selection(conjuncts: list[ast.Expr],
                      var: str) -> SelectionAnalysis:
    """Choose an index anchor for a variable's selection conjuncts.

    Strategy: group the interval-form conjuncts by attribute, intersect
    each group, and anchor on the attribute whose combined interval is a
    point if one exists (most selective), otherwise the attribute with the
    most conjuncts.  Everything else is residual.
    """
    by_attr: dict[str, list[tuple[int, AttrInterval]]] = {}
    residual: list[ast.Expr] = []
    interval_positions: dict[int, str] = {}
    for i, conjunct in enumerate(conjuncts):
        attr_interval = interval_of_conjunct(conjunct, var)
        if attr_interval is None:
            residual.append(conjunct)
        else:
            by_attr.setdefault(attr_interval.attr, []).append(
                (i, attr_interval))
            interval_positions[i] = attr_interval.attr

    if not by_attr:
        return SelectionAnalysis(None, conjoin(residual))

    combined: dict[str, AttrInterval | None] = {}
    for attr, entries in by_attr.items():
        interval: Interval | None = entries[0][1].interval
        for _, attr_interval in entries[1:]:
            if interval is not None:
                interval = intersect(interval, attr_interval.interval)
        combined[attr] = (None if interval is None else AttrInterval(
            attr, entries[0][1].position, interval))

    if any(v is None for v in combined.values()):
        return SelectionAnalysis(None, conjoin(conjuncts),
                                 unsatisfiable=True)

    def score(attr: str) -> tuple:
        attr_interval = combined[attr]
        is_point = (attr_interval.interval.low_closed
                    and attr_interval.interval.high_closed
                    and not key_lt(attr_interval.interval.low,
                                   attr_interval.interval.high))
        bounded = (attr_interval.interval.low is not NEG_INF) + \
                  (attr_interval.interval.high is not POS_INF)
        return (is_point, bounded, len(by_attr[attr]), attr)

    best = max(combined, key=score)
    anchor = combined[best]
    for i, conjunct in enumerate(conjuncts):
        if interval_positions.get(i) == best:
            continue
        if i in interval_positions:
            residual.append(conjunct)
    # Keep residuals in original conjunct order for readable deparse.
    residual_set = {id(c) for c in residual}
    ordered = [c for c in conjuncts if id(c) in residual_set]
    return SelectionAnalysis(anchor, conjoin(ordered))


# ----------------------------------------------------------------------
# parameterized anchors (prepared statements)
# ----------------------------------------------------------------------

@dataclass
class ParamAnchor:
    """An index anchor whose bounds are parameter expressions.

    Produced for conjuncts like ``var.attr = $id`` or
    ``var.attr > $low and var.attr <= $high`` — the bound expressions
    reference no tuple variables but at least one ``$param``, so the
    access path can be chosen at plan time while the concrete key is
    resolved from the parameter vector at each execution.  ``eq`` set
    means a point probe; otherwise ``low``/``high`` give the (possibly
    one-sided) range bounds.
    """

    attr: str
    position: int
    eq: ast.Expr | None = None
    low: ast.Expr | None = None
    low_closed: bool = False
    high: ast.Expr | None = None
    high_closed: bool = False


def param_bound_of_conjunct(conjunct: ast.Expr, var: str
                            ) -> tuple[str, int, str, ast.Expr] | None:
    """The ``(attr, position, op, bound_expr)`` form of a conjunct
    comparing ``var.attr`` against a tuple-variable-free expression that
    contains at least one parameter placeholder; None otherwise."""
    if not isinstance(conjunct, ast.BinOp) \
            or conjunct.op not in ast.COMPARISON_OPS \
            or conjunct.op == "!=":
        return None
    sides = [(conjunct.left, conjunct.right, conjunct.op),
             (conjunct.right, conjunct.left, _flip(conjunct.op))]
    for attr_side, bound_side, op in sides:
        if not isinstance(attr_side, ast.AttrRef) or attr_side.previous:
            continue
        if attr_side.var != var:
            continue
        if variables_of(bound_side) or not contains_params(bound_side):
            continue
        return (attr_side.attr, attr_side.position or 0, op, bound_side)
    return None


def analyze_param_selection(conjuncts: list[ast.Expr],
                            var: str) -> tuple[ParamAnchor | None,
                                               ast.Expr | None]:
    """Choose a parameterized index anchor for a variable's selections.

    Returns ``(anchor, residual)``; the residual re-checks every conjunct
    not folded into the anchor (including constant-interval conjuncts,
    which the caller's plain analysis may prefer to anchor on instead).
    Equality anchors win over range anchors; among ranges the attribute
    with the most param bounds wins.
    """
    by_attr: dict[str, list[tuple[ast.Expr, int, str, ast.Expr]]] = {}
    for conjunct in conjuncts:
        form = param_bound_of_conjunct(conjunct, var)
        if form is not None:
            attr, position, op, bound = form
            by_attr.setdefault(attr, []).append(
                (conjunct, position, op, bound))
    if not by_attr:
        return None, conjoin(conjuncts)

    def score(attr: str) -> tuple:
        entries = by_attr[attr]
        has_eq = any(op == "=" for _, _, op, _ in entries)
        return (has_eq, len(entries), attr)

    best = max(by_attr, key=score)
    entries = by_attr[best]
    position = entries[0][1]
    anchor = ParamAnchor(best, position)
    folded: set[int] = set()
    for conjunct, _, op, bound in entries:
        if op == "=" and anchor.eq is None:
            anchor.eq = bound
            folded.add(id(conjunct))
        elif op in (">", ">=") and anchor.low is None \
                and anchor.eq is None:
            anchor.low = bound
            anchor.low_closed = op == ">="
            folded.add(id(conjunct))
        elif op in ("<", "<=") and anchor.high is None \
                and anchor.eq is None:
            anchor.high = bound
            anchor.high_closed = op == "<="
            folded.add(id(conjunct))
    if anchor.eq is None and anchor.low is None and anchor.high is None:
        return None, conjoin(conjuncts)
    residual = conjoin([c for c in conjuncts if id(c) not in folded])
    return anchor, residual


def equijoin_of_conjunct(conjunct: ast.Expr) -> EquiJoinPredicate | None:
    """The equi-join form of ``v1.a = v2.b`` (current values), if any."""
    if not isinstance(conjunct, ast.BinOp) or conjunct.op != "=":
        return None
    left, right = conjunct.left, conjunct.right
    if not (isinstance(left, ast.AttrRef) and isinstance(right, ast.AttrRef)):
        return None
    if left.previous or right.previous:
        return None
    if left.var == right.var:
        return None
    return EquiJoinPredicate(
        left.var, left.attr, left.position or 0,
        right.var, right.attr, right.position or 0)
