"""Expression evaluation: bindings and a closure compiler.

Expressions are compiled once (per plan, per rule predicate) into nested
Python closures over a :class:`Bindings` environment; this is the hot path
of both query execution and token testing, so attribute positions are
resolved at compile time and evaluation does no name lookups.

Null semantics are SQL-like three-valued logic: comparisons and arithmetic
involving a null yield null (``None``); ``and``/``or``/``not`` follow
Kleene logic; a WHERE clause or rule predicate accepts a row only when the
result is exactly ``True``.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ExecutionError, SemanticError
from repro.lang import ast_nodes as ast


class Bindings:
    """Evaluation environment: tuple variables bound to value tuples.

    ``current`` maps a tuple variable to its tuple of attribute values;
    ``previous`` maps a variable to the values it had at the beginning of
    the transition (only present for transition-condition variables);
    ``tids`` maps a variable to the TupleId of the bound stored tuple when
    it has one (scans of base relations and P-nodes provide it; values
    computed on the fly do not); ``params`` is the prepared-statement
    parameter vector (name -> value), set once at the plan root and never
    mutated during execution, so copies share it by reference.
    """

    __slots__ = ("current", "previous", "tids", "params")

    def __init__(self, current: dict[str, tuple] | None = None,
                 previous: dict[str, tuple] | None = None,
                 tids: dict[str, object] | None = None,
                 params: dict[str, object] | None = None):
        self.current = current if current is not None else {}
        self.previous = previous if previous is not None else {}
        self.tids = tids if tids is not None else {}
        self.params = params if params is not None else _NO_PARAMS

    def child(self) -> "Bindings":
        """A copy that can be extended without mutating this one."""
        return Bindings(dict(self.current), dict(self.previous),
                        dict(self.tids), self.params)

    def bind(self, var: str, values: tuple, tid=None,
             previous: tuple | None = None) -> "Bindings":
        """A copy with ``var`` (re)bound."""
        out = self.child()
        out.current[var] = values
        if tid is not None:
            out.tids[var] = tid
        if previous is not None:
            out.previous[var] = previous
        return out

    def rebind(self, var: str, values: tuple, tid=None,
               previous: tuple | None = None) -> "Bindings":
        """Mutate-in-place variant of :meth:`bind` for the scan hot path.

        Safe only when the caller owns this Bindings and its consumer
        does not retain yielded bindings across iterations (scans under
        a hash/sort-merge build side must keep using :meth:`bind`).
        """
        self.current[var] = values
        if tid is not None:
            self.tids[var] = tid
        if previous is not None:
            self.previous[var] = previous
        return self

    def __repr__(self) -> str:
        return f"Bindings({self.current!r}, previous={self.previous!r})"


#: shared empty parameter vector for parameterless execution
_NO_PARAMS: dict[str, object] = {}

Evaluator = Callable[[Bindings], object]


def compile_expr(expr: ast.Expr) -> Evaluator:
    """Compile an analyzed expression into a closure over Bindings.

    AttrRef nodes must carry their resolved ``position`` (set by semantic
    analysis).
    """
    if isinstance(expr, ast.Const):
        value = expr.value
        return lambda b: value
    if isinstance(expr, ast.AttrRef):
        if expr.position is None:
            raise SemanticError(
                f"unresolved attribute reference {expr.var}.{expr.attr}; "
                f"run semantic analysis first")
        var, pos = expr.var, expr.position
        if expr.previous:
            return lambda b: b.previous[var][pos]
        return lambda b: b.current[var][pos]
    if isinstance(expr, ast.Param):
        name = expr.name

        def eval_param(b: Bindings):
            try:
                return b.params[name]
            except KeyError:
                raise ExecutionError(
                    f"no value bound for parameter ${name}") from None
        return eval_param
    if isinstance(expr, ast.NewCall):
        return lambda b: True
    if isinstance(expr, ast.UnaryOp):
        operand = compile_expr(expr.operand)
        if expr.op == "-":
            return lambda b: _negate(operand(b))
        if expr.op == "not":
            return lambda b: _not(operand(b))
        raise SemanticError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, ast.BinOp):
        return _compile_binop(expr)
    if isinstance(expr, ast.AllRef):
        raise SemanticError(
            f"{expr.var}.all is only valid in a target list")
    if isinstance(expr, ast.AggregateCall):
        raise SemanticError(
            f"{expr.func}() must be evaluated by the aggregation "
            f"executor, not compiled directly")
    raise SemanticError(f"cannot compile {type(expr).__name__}")


def is_true(value: object) -> bool:
    """Predicate acceptance under three-valued logic."""
    return value is True


def _compile_binop(expr: ast.BinOp) -> Evaluator:
    if expr.op == "and":
        left = compile_expr(expr.left)
        right = compile_expr(expr.right)

        def eval_and(b: Bindings):
            lhs = left(b)
            if lhs is False:
                return False
            rhs = right(b)
            if rhs is False:
                return False
            if lhs is None or rhs is None:
                return None
            return True
        return eval_and
    if expr.op == "or":
        left = compile_expr(expr.left)
        right = compile_expr(expr.right)

        def eval_or(b: Bindings):
            lhs = left(b)
            if lhs is True:
                return True
            rhs = right(b)
            if rhs is True:
                return True
            if lhs is None or rhs is None:
                return None
            return False
        return eval_or

    left = compile_expr(expr.left)
    right = compile_expr(expr.right)
    op = expr.op
    if op in ast.COMPARISON_OPS:
        compare = _COMPARATORS[op]

        def eval_cmp(b: Bindings):
            lhs = left(b)
            if lhs is None:
                return None
            rhs = right(b)
            if rhs is None:
                return None
            return compare(lhs, rhs)
        return eval_cmp
    if op in ast.ARITHMETIC_OPS:
        combine = _ARITHMETIC[op]

        def eval_arith(b: Bindings):
            lhs = left(b)
            if lhs is None:
                return None
            rhs = right(b)
            if rhs is None:
                return None
            return combine(lhs, rhs)
        return eval_arith
    raise SemanticError(f"unknown operator {op!r}")


def _negate(value):
    if value is None:
        return None
    return -value


def _not(value):
    if value is None:
        return None
    return not value


def _divide(a, b):
    if b == 0:
        raise ExecutionError("division by zero")
    if isinstance(a, int) and isinstance(b, int) and a % b == 0:
        return a // b
    return a / b


_COMPARATORS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_ARITHMETIC = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _divide,
}


def constant_value(expr: ast.Expr):
    """Fold a constant expression to its value.

    Raises SemanticError if the expression references any tuple variable
    or parameter placeholder (a parameter is only known at bind time).
    Used by predicate analysis to extract interval bounds like
    ``1.1 * 30000``.
    """
    if references_variables(expr) or contains_params(expr):
        raise SemanticError("expression is not constant")
    return compile_expr(expr)(Bindings())


def contains_params(expr: ast.Expr) -> bool:
    """True if the expression mentions any ``$param`` placeholder."""
    if isinstance(expr, ast.Param):
        return True
    if isinstance(expr, ast.BinOp):
        return contains_params(expr.left) or contains_params(expr.right)
    if isinstance(expr, ast.UnaryOp):
        return contains_params(expr.operand)
    if isinstance(expr, ast.AggregateCall):
        return contains_params(expr.argument)
    return False


def references_variables(expr: ast.Expr) -> bool:
    """True if the expression mentions any tuple variable."""
    return bool(variables_of(expr))


def variables_of(expr: ast.Expr) -> set[str]:
    """All tuple variables mentioned (current or previous)."""
    out: set[str] = set()
    _collect_vars(expr, out)
    return out


def _collect_vars(expr: ast.Expr, out: set[str]) -> None:
    if isinstance(expr, (ast.AttrRef, ast.AllRef, ast.NewCall)):
        out.add(expr.var)
    elif isinstance(expr, ast.BinOp):
        _collect_vars(expr.left, out)
        _collect_vars(expr.right, out)
    elif isinstance(expr, ast.UnaryOp):
        _collect_vars(expr.operand, out)
    elif isinstance(expr, ast.AggregateCall):
        _collect_vars(expr.argument, out)


def attr_positions_of(expr: ast.Expr, var: str) \
        -> tuple[tuple[int, ...], tuple[int, ...]] | None:
    """The value-tuple positions ``expr`` reads from ``var``, split into
    (current, previous) reference positions.

    Returns None when the expression reads anything besides plain
    resolved attribute references of ``var`` (whole-tuple references,
    ``new()``, aggregates, other variables) — callers use the projection
    to memoize predicate results, and None means "results cannot be
    keyed by a projection of the value tuple".
    """
    current: set[int] = set()
    previous: set[int] = set()
    if not _collect_positions(expr, var, current, previous):
        return None
    return (tuple(sorted(current)), tuple(sorted(previous)))


def _collect_positions(expr: ast.Expr, var: str, current: set[int],
                       previous: set[int]) -> bool:
    if isinstance(expr, ast.AttrRef):
        if expr.var != var or expr.position is None:
            return False
        (previous if expr.previous else current).add(expr.position)
        return True
    if isinstance(expr, ast.BinOp):
        return (_collect_positions(expr.left, var, current, previous)
                and _collect_positions(expr.right, var, current, previous))
    if isinstance(expr, ast.UnaryOp):
        return _collect_positions(expr.operand, var, current, previous)
    if isinstance(expr, (ast.AllRef, ast.NewCall, ast.AggregateCall)):
        return False
    return True


def previous_variables_of(expr: ast.Expr) -> set[str]:
    """Variables referenced with the ``previous`` keyword."""
    out: set[str] = set()

    def walk(node: ast.Expr) -> None:
        if isinstance(node, ast.AttrRef) and node.previous:
            out.add(node.var)
        elif isinstance(node, ast.BinOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, ast.UnaryOp):
            walk(node.operand)

    walk(expr)
    return out
