"""Tokenizer for the POSTQUEL subset and ARL.

Keywords are case-insensitive (normalised to lower case); identifiers are
case-sensitive.  Strings use double quotes with backslash escapes, matching
the paper's examples (``dept.name = "Sales"``).  Comments run from ``--``
or ``#`` to end of line.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParseError

KEYWORDS = frozenset({
    "create", "destroy", "append", "delete", "replace", "retrieve",
    "into", "to", "from", "where", "in", "define", "remove", "rule",
    "index", "on", "if", "then", "priority", "do", "end", "using",
    "and", "or", "not", "previous", "new", "true", "false", "null",
    "activate", "deactivate", "halt", "sort", "by", "asc", "desc",
    "unique", "explain", "analyze", "inf", "nan",
})

#: multi-character operators first so maximal munch applies
OPERATORS = ("!=", "<=", ">=", "=", "<", ">", "+", "-", "*", "/",
             "(", ")", ",", ".")


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    kind: str          # 'keyword' | 'ident' | 'number' | 'string' | 'op'
                       # | 'param' | 'eof'
    value: object
    line: int
    column: int

    def __str__(self) -> str:
        if self.kind == "eof":
            return "<end of input>"
        return repr(self.value)


class Lexer:
    """Converts command text into a token stream."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    def tokens(self) -> list[Token]:
        """Tokenize the whole input, ending with a single EOF token."""
        out: list[Token] = []
        while True:
            token = self._next_token()
            out.append(token)
            if token.kind == "eof":
                return out

    # ------------------------------------------------------------------

    def _advance(self, n: int = 1) -> None:
        for _ in range(n):
            if self.pos < len(self.text) and self.text[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _peek(self, offset: int = 0) -> str:
        i = self.pos + offset
        return self.text[i] if i < len(self.text) else ""

    def _skip_trivia(self) -> None:
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch in " \t\r\n;":
                # A stray semicolon is treated as whitespace: scripts may
                # separate commands with either newlines or semicolons.
                self._advance()
            elif ch == "#" or self.text.startswith("--", self.pos):
                while self.pos < len(self.text) \
                        and self.text[self.pos] != "\n":
                    self._advance()
            else:
                return

    def _next_token(self) -> Token:
        self._skip_trivia()
        if self.pos >= len(self.text):
            return Token("eof", None, self.line, self.column)
        line, column = self.line, self.column
        ch = self._peek()
        if ch == '"':
            return self._string(line, column)
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._number(line, column)
        if ch.isalpha() or ch == "_":
            return self._word(line, column)
        if ch == "$":
            return self._param(line, column)
        for op in OPERATORS:
            if self.text.startswith(op, self.pos):
                self._advance(len(op))
                return Token("op", op, line, column)
        raise ParseError(f"unexpected character {ch!r}", line, column)

    def _string(self, line: int, column: int) -> Token:
        self._advance()   # opening quote
        chars: list[str] = []
        while True:
            ch = self._peek()
            if ch == "":
                raise ParseError("unterminated string literal", line, column)
            if ch == "\\":
                escape = self._peek(1)
                mapped = {"n": "\n", "t": "\t", "r": "\r", '"': '"',
                          "\\": "\\"}.get(escape)
                if mapped is None:
                    raise ParseError(f"bad escape \\{escape}",
                                     self.line, self.column)
                chars.append(mapped)
                self._advance(2)
            elif ch == '"':
                self._advance()
                return Token("string", "".join(chars), line, column)
            else:
                chars.append(ch)
                self._advance()

    def _number(self, line: int, column: int) -> Token:
        start = self.pos
        saw_dot = False
        saw_exp = False
        while self.pos < len(self.text):
            ch = self._peek()
            if ch.isdigit():
                self._advance()
            elif ch == "." and not saw_dot and not saw_exp \
                    and self._peek(1).isdigit():
                saw_dot = True
                self._advance()
            elif ch in "eE" and not saw_exp and (
                    self._peek(1).isdigit()
                    or (self._peek(1) in "+-" and self._peek(2).isdigit())):
                saw_exp = True
                self._advance(2 if self._peek(1) in "+-" else 1)
            else:
                break
        text = self.text[start:self.pos]
        value: object
        if saw_dot or saw_exp:
            value = float(text)
        else:
            value = int(text)
        return Token("number", value, line, column)

    def _param(self, line: int, column: int) -> Token:
        """``$name`` or ``$1`` — a prepared-statement placeholder."""
        self._advance()   # '$'
        start = self.pos
        if self._peek().isdigit():
            while self._peek().isdigit():
                self._advance()
        else:
            while self._peek().isalnum() or self._peek() == "_":
                self._advance()
        name = self.text[start:self.pos]
        if not name:
            raise ParseError("expected a parameter name after '$'",
                             line, column)
        return Token("param", name, line, column)

    def _word(self, line: int, column: int) -> Token:
        start = self.pos
        while self.pos < len(self.text) and (self._peek().isalnum()
                                             or self._peek() == "_"):
            self._advance()
        word = self.text[start:self.pos]
        if word.lower() in KEYWORDS:
            return Token("keyword", word.lower(), line, column)
        return Token("ident", word, line, column)


def tokenize(text: str) -> list[Token]:
    """Convenience wrapper: tokenize ``text`` fully."""
    return Lexer(text).tokens()
