"""Total literal serialisation: values → ARL literal text and back.

One escape table, shared by every component that renders values as
command text — :mod:`repro.persist` dumps, the AST deparser's string
constants, and the write-ahead log's mutation records — and matched
exactly by the lexer's string scanner.  The encoding must be *total*
over the storable value domain (None, bool, int, float including
non-finite values, arbitrary str): a WAL record that cannot be decoded
is data loss.

``\\r`` matters: Python's text-mode file reading applies universal
newline translation, so a raw carriage return written inside a dump or
WAL string would come back as ``\\n``.  Every character the file layer
can mangle is escaped; other control characters pass through unchanged
(binary-exact in UTF-8).
"""

from __future__ import annotations

import math

from repro.errors import ArielError

#: string escape table (encode side); the lexer implements the inverse
_ESCAPES = {
    "\\": "\\\\",
    '"': '\\"',
    "\n": "\\n",
    "\t": "\\t",
    "\r": "\\r",
}


def encode_string(value: str) -> str:
    """A double-quoted ARL string literal for ``value`` (total)."""
    out = []
    for ch in value:
        out.append(_ESCAPES.get(ch, ch))
    return '"' + "".join(out) + '"'


def encode_literal(value) -> str:
    """``value`` as ARL literal text that the lexer reads back exactly.

    Floats use ``repr`` (shortest exact form); the non-finite values
    map to the ``inf`` / ``-inf`` / ``nan`` literals the language
    accepts.
    """
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return encode_string(value)
    if isinstance(value, float):
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if math.isnan(value):
            return "nan"
        return repr(value)
    if isinstance(value, int):
        return repr(value)
    raise ArielError(f"cannot serialise value {value!r}")


def parse_literal(text: str):
    """The value an ARL literal denotes (inverse of
    :func:`encode_literal`).

    Accepts exactly one literal: a string, a number (optionally
    negated), ``true``/``false``/``null``, or ``inf``/``-inf``/``nan``.
    """
    from repro.lang.lexer import tokenize

    tokens = tokenize(text)
    i = 0
    negate = False
    if (tokens[i].kind, tokens[i].value) == ("op", "-"):
        negate = True
        i += 1
    token = tokens[i]
    if tokens[i + 1].kind != "eof":
        raise ArielError(f"not a single literal: {text!r}")
    if token.kind in ("number", "string"):
        value = token.value
    elif token.kind == "keyword" and token.value in ("true", "false",
                                                     "null"):
        value = {"true": True, "false": False, "null": None}[token.value]
    elif token.kind == "keyword" and token.value in ("inf", "nan"):
        value = float(token.value)
    else:
        raise ArielError(f"not a literal: {text!r}")
    if negate:
        if not isinstance(value, (int, float)) \
                or isinstance(value, bool):
            raise ArielError(f"cannot negate literal: {text!r}")
        return -value
    return value
