"""Exception hierarchy for the Ariel reproduction.

All library errors derive from :class:`ArielError` so callers can catch one
base class.  The hierarchy mirrors the processing pipeline: lexing/parsing,
semantic analysis, catalog/schema management, storage, planning/execution,
and the rule system.

::

    ArielError
    ├── ParseError            lexer / parser
    ├── SemanticError         semantic analysis
    ├── CatalogError          catalog management
    ├── StorageError          heap / index storage
    ├── PlanError             query optimizer
    ├── ExecutionError        plan interpretation
    ├── RuleError             rule system
    │   └── RuleLoopError     recognize-act cascade guard
    ├── TransactionError      transaction / block misuse
    ├── DatabaseClosedError   use of a closed database handle
    ├── ServiceError          concurrent-serving layer (repro.serve)
    │   └── SessionError      unknown / closed serving session
    └── DurabilityError       write-ahead log and checkpointing
        ├── WalCorruptError   unreadable / corrupt WAL record
        └── DegradedError     database degraded to read-only mode

The durability family carries location context: :attr:`DurabilityError.path`
names the durable file involved and :attr:`DurabilityError.offset` the byte
offset of the record at fault (either may be None when not applicable), so
operators can find the damage without re-parsing the message text.
"""

from __future__ import annotations


class ArielError(Exception):
    """Base class for every error raised by the repro library."""


class ParseError(ArielError):
    """Raised by the lexer or parser on malformed command text.

    Carries the 1-based ``line`` and ``column`` of the offending token when
    available so front ends can point at the error.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None):
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)
        self.line = line
        self.column = column


class SemanticError(ArielError):
    """Raised when a syntactically valid command fails semantic analysis.

    Examples: unknown relation or attribute, type mismatch in an expression,
    ``previous`` used outside a rule condition, an aggregate where none is
    allowed.
    """


class CatalogError(ArielError):
    """Raised for catalog violations: duplicate or missing relations,
    indexes, rules or rulesets."""


class StorageError(ArielError):
    """Raised by the storage engine: dangling tuple identifiers, schema and
    tuple arity mismatches, index inconsistencies."""


class PlanError(ArielError):
    """Raised when the optimizer cannot produce a plan for a command."""


class ExecutionError(ArielError):
    """Raised while interpreting a query plan (e.g. type errors that only
    surface at run time, division by zero in an expression)."""


class RuleError(ArielError):
    """Base class for rule-system errors."""


class RuleLoopError(RuleError):
    """Raised when the recognize-act cycle exceeds the configured maximum
    number of rule firings for a single triggering transition.

    Production-rule programs can loop (a rule action re-triggering the same
    rule); Ariel bounds the cycle so a run-away rule set surfaces as an error
    instead of a hang.
    """


class TransactionError(ArielError):
    """Raised for misuse of transactions or transition blocks (nested
    ``do ... end`` blocks, commit without begin, and similar)."""


class DatabaseClosedError(ArielError):
    """Raised on any use of a database after :meth:`repro.db.Database
    .close` — including a second ``close()`` — so callers get a clear
    lifecycle error instead of a failure deep inside the durability
    layer writing to a closed WAL handle."""


class ServiceError(ArielError):
    """Base class for errors of the concurrent serving layer
    (:mod:`repro.serve`): service shut down, malformed requests,
    protocol violations."""


class SessionError(ServiceError):
    """Raised when a serving request names an unknown or already-closed
    session, or a session-scoped resource (such as a prepared-statement
    name) that does not exist."""


class DurabilityError(ArielError):
    """Base class for durability-layer failures (write-ahead logging,
    checkpointing, recovery).

    Carries the durable file's ``path`` and, when known, the byte
    ``offset`` of the record involved.
    """

    def __init__(self, message: str, path=None, offset: int | None = None):
        context = []
        if path is not None:
            context.append(f"path {path}")
        if offset is not None:
            context.append(f"offset {offset}")
        if context:
            message = f"{message} ({', '.join(context)})"
        super().__init__(message)
        self.path = None if path is None else str(path)
        self.offset = offset


class WalCorruptError(DurabilityError):
    """Raised when a write-ahead-log record cannot be trusted: a CRC
    mismatch or undecodable payload *followed by further data* (a bad
    final record is a torn tail and is silently truncated instead), or
    an unreadable generation header."""


class DegradedError(DurabilityError):
    """Raised on write attempts after the database degraded to read-only
    mode — the WAL exhausted its write retries, so accepting further
    mutations would silently break the durability guarantee.  Reads are
    still served."""
