"""Query optimizer: statistics, physical plans, cost-based planning.

Ariel's architecture routes every data command — including rule actions —
through the query optimizer (paper Figure 2 and section 5.2).  The planner
here is a compact Selinger-style optimizer: per-variable selections are
pushed to scans, access paths (sequential, B-tree range, hash point) are
chosen from catalog indexes, and join orders are enumerated bottom-up with
a simple cardinality model.
"""

from repro.planner.stats import Statistics
from repro.planner.plans import (
    Plan, SeqScan, IndexScan, IndexProbe, PnodeScan, FilterPlan,
    NestedLoopJoin, HashJoin, SortMergeJoin, explain)
from repro.planner.optimizer import Optimizer, PlannedCommand

__all__ = [
    "Statistics",
    "Plan", "SeqScan", "IndexScan", "IndexProbe", "PnodeScan",
    "FilterPlan", "NestedLoopJoin", "HashJoin", "SortMergeJoin",
    "explain",
    "Optimizer", "PlannedCommand",
]
