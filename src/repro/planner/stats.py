"""Catalog statistics and selectivity estimation.

Estimates follow the classic System R defaults: equality against a
constant is ``1/distinct(attr)``, ranges get 1/3, inequality 2/3 (the
magic constants every Selinger-style optimizer inherits).  Distinct-value
counts come from a hash index when one exists, otherwise from a bounded
scan of the relation, cached until the relation's cardinality changes by
more than 20%.
"""

from __future__ import annotations

from repro.catalog.catalog import Catalog
from repro.lang import ast_nodes as ast
from repro.lang.predicates import (
    equijoin_of_conjunct, interval_of_conjunct, param_bound_of_conjunct)
from repro.intervals.interval import NEG_INF, POS_INF

#: System R's default selectivities
EQ_DEFAULT = 0.1
RANGE_DEFAULT = 1.0 / 3.0
NEQ_DEFAULT = 2.0 / 3.0
OTHER_DEFAULT = 0.5

#: cap on how many tuples a distinct-count estimation scan will look at
_DISTINCT_SCAN_CAP = 2000


class Statistics:
    """Cardinality and selectivity estimates over a catalog."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        # (relation, attr) -> (distinct estimate, cardinality at estimate)
        self._distinct_cache: dict[tuple[str, str], tuple[int, int]] = {}

    # ------------------------------------------------------------------
    # base statistics
    # ------------------------------------------------------------------

    def cardinality(self, relation_name: str) -> int:
        return len(self.catalog.relation(relation_name))

    def distinct(self, relation_name: str, attribute: str) -> int:
        """Estimated number of distinct values of an attribute (>= 1)."""
        relation = self.catalog.relation(relation_name)
        card = len(relation)
        if card == 0:
            return 1
        cached = self._distinct_cache.get((relation_name, attribute))
        if cached is not None:
            estimate, at_card = cached
            if at_card and abs(card - at_card) / at_card <= 0.2:
                return estimate
        index = relation.index_on(attribute, "hash")
        if index is not None:
            estimate = max(1, index.distinct_keys())
        else:
            position = relation.schema.position(attribute)
            seen = set()
            for i, stored in enumerate(relation.scan()):
                if i >= _DISTINCT_SCAN_CAP:
                    break
                seen.add(stored.values[position])
            estimate = max(1, len(seen))
            if card > _DISTINCT_SCAN_CAP:
                # linear extrapolation, capped by cardinality
                estimate = min(card,
                               estimate * card // _DISTINCT_SCAN_CAP)
        self._distinct_cache[(relation_name, attribute)] = (estimate, card)
        return estimate

    # ------------------------------------------------------------------
    # selectivities
    # ------------------------------------------------------------------

    def selection_selectivity(self, conjunct: ast.Expr, var: str,
                              relation_name: str) -> float:
        """Estimated fraction of ``relation`` tuples satisfying a
        single-variable conjunct."""
        attr_interval = interval_of_conjunct(conjunct, var)
        if attr_interval is not None:
            interval = attr_interval.interval
            point = (interval.low_closed and interval.high_closed
                     and interval.low == interval.high)
            if point:
                return 1.0 / self.distinct(relation_name,
                                           attr_interval.attr)
            one_sided = (interval.low is NEG_INF
                         or interval.high is POS_INF)
            return RANGE_DEFAULT if one_sided else RANGE_DEFAULT / 2
        param_bound = param_bound_of_conjunct(conjunct, var)
        if param_bound is not None:
            # A parameterized bound: the value is unknown at plan time,
            # so fall back to the System R defaults for its shape.
            _, _, op, _ = param_bound
            if op == "=":
                return 1.0 / self.distinct(relation_name, param_bound[0])
            return RANGE_DEFAULT
        if isinstance(conjunct, ast.BinOp) and conjunct.op == "!=":
            return NEQ_DEFAULT
        if isinstance(conjunct, ast.NewCall):
            return 1.0
        return OTHER_DEFAULT

    def join_selectivity(self, conjunct: ast.Expr,
                         scope: dict[str, str]) -> float:
        """Estimated selectivity of a multi-variable conjunct."""
        join = equijoin_of_conjunct(conjunct)
        if join is not None:
            left_rel = scope.get(join.left_var)
            right_rel = scope.get(join.right_var)
            left_d = self.distinct(left_rel, join.left_attr) \
                if left_rel else 10
            right_d = self.distinct(right_rel, join.right_attr) \
                if right_rel else 10
            return 1.0 / max(left_d, right_d, 1)
        if isinstance(conjunct, ast.BinOp) \
                and conjunct.op in ast.COMPARISON_OPS:
            return RANGE_DEFAULT
        return OTHER_DEFAULT

    def equijoin_bucket(self, relation_name: str, attribute: str,
                        rows: float) -> float:
        """Expected matches of one equality probe into ``rows`` tuples
        drawn from ``relation`` — rows over the attribute's distinct
        count.  The join planner's estimate of a hash-bucket (or index
        probe) result size."""
        return rows / max(self.distinct(relation_name, attribute), 1)

    def scan_cardinality(self, relation_name: str, var: str,
                         conjuncts: list[ast.Expr]) -> float:
        """Estimated output rows of scanning with pushed selections."""
        rows = float(self.cardinality(relation_name))
        for conjunct in conjuncts:
            rows *= self.selection_selectivity(conjunct, var,
                                               relation_name)
        return max(rows, 0.0)
