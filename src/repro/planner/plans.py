"""Physical plan operators (iterator model over Bindings).

Every operator yields :class:`~repro.lang.expr.Bindings` — tuple variables
bound to value tuples plus their TIDs — rather than flat rows; projection
to output rows happens only at the top of a ``retrieve``.  This is what
lets one plan machinery serve ordinary queries *and* rule actions: the
:class:`PnodeScan` operator binds every shared tuple variable of a rule
(current and ``previous`` values, and the TIDs that ``replace'`` /
``delete'`` need) from one P-node entry, exactly as described in paper
section 5.2.

Operators are parameterised: ``rows(ctx, outer)`` streams results given
outer bindings, so an :class:`IndexProbe` under a :class:`NestedLoopJoin`
is an index nested-loop join with no special casing.

``explain analyze`` support lives here too: :func:`instrument` shallow-
copies a plan tree and wraps every node in an :class:`AnalyzedPlan` that
records rows produced, loop (re-execution) count and wall time, without
touching the original (possibly cached) plan.
"""

from __future__ import annotations

import copy
import time
from typing import Iterator

from repro.errors import PlanError
from repro.intervals.interval import Interval, NEG_INF, POS_INF
from repro.lang import ast_nodes as ast
from repro.lang.ast_nodes import deparse
from repro.lang.expr import Bindings, compile_expr, is_true


class Plan:
    """Base class for physical operators.

    ``reuse=True`` lets scans mutate one Bindings object in place per
    yielded row instead of copying three dicts per row.  It is only safe
    when the consumer finishes with each yielded binding before pulling
    the next (the executor's evaluate-and-discard loops); operators that
    retain rows (hash build sides, sort-merge inputs) always ask their
    children for fresh copies.
    """

    #: tuple variables this plan binds
    vars: frozenset[str] = frozenset()

    #: attribute names holding child plans, in :meth:`children` order —
    #: what :func:`instrument` rewrites when wrapping a tree
    child_attrs: tuple[str, ...] = ()

    def rows(self, ctx, outer: Bindings,
             reuse: bool = False) -> Iterator[Bindings]:
        raise NotImplementedError

    def label(self) -> str:
        return type(self).__name__

    def children(self) -> tuple["Plan", ...]:
        return ()


def _compile_optional(expr: ast.Expr | None):
    return compile_expr(expr) if expr is not None else None


class SeqScan(Plan):
    """Sequential scan of a base relation, with an optional pushed
    selection predicate."""

    def __init__(self, relation: str, var: str,
                 predicate: ast.Expr | None = None):
        self.relation = relation
        self.var = var
        self.predicate_expr = predicate
        self._predicate = _compile_optional(predicate)
        self.vars = frozenset([var])

    def rows(self, ctx, outer: Bindings,
             reuse: bool = False) -> Iterator[Bindings]:
        relation = ctx.catalog.relation(self.relation)
        predicate = self._predicate
        var = self.var
        if reuse:
            base = outer.child()
            for stored in relation.scan():
                bound = base.rebind(var, stored.values, stored.tid)
                if predicate is None or is_true(predicate(bound)):
                    yield bound
        else:
            for stored in relation.scan():
                bound = outer.bind(var, stored.values, stored.tid)
                if predicate is None or is_true(predicate(bound)):
                    yield bound

    def label(self) -> str:
        text = f"SeqScan {self.relation} as {self.var}"
        if self.predicate_expr is not None:
            text += f" [{deparse(self.predicate_expr)}]"
        return text


class IndexScan(Plan):
    """Index access with constant bounds: a B-tree range or a hash point.

    ``residual`` re-checks conjuncts the index key does not fully cover.
    ``low_expr`` / ``high_expr`` are parameterized bounds (prepared
    statements): evaluated against the outer bindings on every execution,
    they override the corresponding static interval endpoint, so one
    cached plan serves every parameter value.  A bound that evaluates to
    null produces no rows (SQL comparison semantics).
    """

    def __init__(self, relation: str, var: str, index_name: str,
                 interval: Interval, residual: ast.Expr | None = None,
                 low_expr: ast.Expr | None = None,
                 high_expr: ast.Expr | None = None):
        self.relation = relation
        self.var = var
        self.index_name = index_name
        self.interval = interval
        self.residual_expr = residual
        self._residual = _compile_optional(residual)
        self.low_expr = low_expr
        self.high_expr = high_expr
        self._low = _compile_optional(low_expr)
        self._high = _compile_optional(high_expr)
        self.vars = frozenset([var])

    def rows(self, ctx, outer: Bindings,
             reuse: bool = False) -> Iterator[Bindings]:
        relation = ctx.catalog.relation(self.relation)
        index = None
        for candidate in relation.indexes():
            if candidate.name == self.index_name:
                index = candidate
                break
        if index is None:
            raise PlanError(f"index {self.index_name!r} disappeared; "
                            f"replan required")
        iv = self.interval
        if index.kind == "hash":
            tids = index.search(iv.low)
        else:
            low = None if iv.low is NEG_INF else iv.low
            high = None if iv.high is POS_INF else iv.high
            if self._low is not None:
                low = self._low(outer)
                if low is None:
                    return
            if self._high is not None:
                high = self._high(outer)
                if high is None:
                    return
            tids = index.range_search(low, high,
                                      low_inclusive=iv.low_closed,
                                      high_inclusive=iv.high_closed)
        residual = self._residual
        var = self.var
        base = outer.child() if reuse else None
        for stored in relation.fetch(tids):
            if reuse:
                bound = base.rebind(var, stored.values, stored.tid)
            else:
                bound = outer.bind(var, stored.values, stored.tid)
            if residual is None or is_true(residual(bound)):
                yield bound

    def label(self) -> str:
        text = (f"IndexScan {self.relation} as {self.var} "
                f"using {self.index_name} {self.interval}")
        if self.low_expr is not None:
            text += f" low={deparse(self.low_expr)}"
        if self.high_expr is not None:
            text += f" high={deparse(self.high_expr)}"
        if self.residual_expr is not None:
            text += f" [{deparse(self.residual_expr)}]"
        return text


class IndexProbe(Plan):
    """Parameterised equality probe: the key is computed from the outer
    bindings on every call (the inner side of an index nested-loop
    join)."""

    def __init__(self, relation: str, var: str, index_name: str,
                 key: ast.Expr, residual: ast.Expr | None = None):
        self.relation = relation
        self.var = var
        self.index_name = index_name
        self.key_expr = key
        self._key = compile_expr(key)
        self.residual_expr = residual
        self._residual = _compile_optional(residual)
        self.vars = frozenset([var])

    def rows(self, ctx, outer: Bindings,
             reuse: bool = False) -> Iterator[Bindings]:
        key = self._key(outer)
        if key is None:
            return
        relation = ctx.catalog.relation(self.relation)
        index = None
        for candidate in relation.indexes():
            if candidate.name == self.index_name:
                index = candidate
                break
        if index is None:
            raise PlanError(f"index {self.index_name!r} disappeared; "
                            f"replan required")
        residual = self._residual
        var = self.var
        base = outer.child() if reuse else None
        for stored in relation.fetch(index.search(key)):
            if reuse:
                bound = base.rebind(var, stored.values, stored.tid)
            else:
                bound = outer.bind(var, stored.values, stored.tid)
            if residual is None or is_true(residual(bound)):
                yield bound

    def label(self) -> str:
        text = (f"IndexProbe {self.relation} as {self.var} "
                f"using {self.index_name} on {deparse(self.key_expr)}")
        if self.residual_expr is not None:
            text += f" [{deparse(self.residual_expr)}]"
        return text


class PnodeScan(Plan):
    """Scan of a rule's P-node, binding every shared tuple variable.

    "The Ariel query processor provides an operator called PnodeScan which
    can scan a P-node and optionally apply a selection predicate to it"
    (paper section 5.2).
    """

    def __init__(self, pnode, predicate: ast.Expr | None = None):
        self.pnode = pnode
        self.predicate_expr = predicate
        self._predicate = _compile_optional(predicate)
        self.vars = frozenset(pnode.variables)

    def rows(self, ctx, outer: Bindings,
             reuse: bool = False) -> Iterator[Bindings]:
        # match.extend always copies, so the reuse flag has no effect.
        predicate = self._predicate
        for match in self.pnode.matches():
            bound = match.extend(outer)
            if predicate is None or is_true(predicate(bound)):
                yield bound

    def label(self) -> str:
        text = (f"PnodeScan P({self.pnode.rule_name}) "
                f"binding {', '.join(sorted(self.vars))}")
        if self.predicate_expr is not None:
            text += f" [{deparse(self.predicate_expr)}]"
        return text


class FilterPlan(Plan):
    """Apply a predicate to child rows (non-pushable conjuncts)."""

    child_attrs = ("child",)

    def __init__(self, child: Plan, predicate: ast.Expr):
        self.child = child
        self.predicate_expr = predicate
        self._predicate = compile_expr(predicate)
        self.vars = child.vars

    def rows(self, ctx, outer: Bindings,
             reuse: bool = False) -> Iterator[Bindings]:
        predicate = self._predicate
        for bound in self.child.rows(ctx, outer, reuse):
            if is_true(predicate(bound)):
                yield bound

    def label(self) -> str:
        return f"Filter [{deparse(self.predicate_expr)}]"

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)


class NestedLoopJoin(Plan):
    """For each outer row, re-execute the inner plan with that row bound.

    With an :class:`IndexProbe` inner this is an index nested-loop join;
    with a scan inner it is the plain nested loop of paper Figure 8.
    """

    child_attrs = ("outer", "inner")

    def __init__(self, outer: Plan, inner: Plan,
                 predicate: ast.Expr | None = None):
        self.outer = outer
        self.inner = inner
        self.predicate_expr = predicate
        self._predicate = _compile_optional(predicate)
        self.vars = outer.vars | inner.vars

    def rows(self, ctx, outer: Bindings,
             reuse: bool = False) -> Iterator[Bindings]:
        # The outer side may reuse: each left row is fully consumed by
        # the inner loop before the next one is produced.  The inner
        # side's rows reach our consumer, so it inherits our flag.
        predicate = self._predicate
        for left in self.outer.rows(ctx, outer, True):
            for both in self.inner.rows(ctx, left, reuse):
                if predicate is None or is_true(predicate(both)):
                    yield both

    def label(self) -> str:
        text = "NestedLoopJoin"
        if self.predicate_expr is not None:
            text += f" [{deparse(self.predicate_expr)}]"
        return text

    def children(self) -> tuple[Plan, ...]:
        return (self.outer, self.inner)


class HashJoin(Plan):
    """Equi-join: build a hash table on the left, probe with the right.

    Null keys never join (SQL semantics).  ``residual`` evaluates any
    extra join conjuncts on matched pairs.
    """

    child_attrs = ("left", "right")

    def __init__(self, left: Plan, right: Plan,
                 left_keys: list[ast.Expr], right_keys: list[ast.Expr],
                 residual: ast.Expr | None = None):
        if len(left_keys) != len(right_keys) or not left_keys:
            raise PlanError("hash join needs matching non-empty key lists")
        self.left = left
        self.right = right
        self.left_key_exprs = left_keys
        self.right_key_exprs = right_keys
        self._left_keys = [compile_expr(k) for k in left_keys]
        self._right_keys = [compile_expr(k) for k in right_keys]
        self.residual_expr = residual
        self._residual = _compile_optional(residual)
        self.vars = left.vars | right.vars

    def rows(self, ctx, outer: Bindings,
             reuse: bool = False) -> Iterator[Bindings]:
        # The build side is retained in the table, so it must not reuse;
        # probe rows are copied into ``merged`` before the next row, so
        # the probe side may.
        table: dict[tuple, list[Bindings]] = {}
        for left in self.left.rows(ctx, outer):
            key = tuple(k(left) for k in self._left_keys)
            if any(v is None for v in key):
                continue
            table.setdefault(key, []).append(left)
        residual = self._residual
        right_vars = self.right.vars
        for right in self.right.rows(ctx, outer, True):
            key = tuple(k(right) for k in self._right_keys)
            if any(v is None for v in key):
                continue
            for left in table.get(key, ()):
                merged = left.child()
                for var in right_vars:
                    merged.current[var] = right.current[var]
                    if var in right.tids:
                        merged.tids[var] = right.tids[var]
                    if var in right.previous:
                        merged.previous[var] = right.previous[var]
                if residual is None or is_true(residual(merged)):
                    yield merged

    def label(self) -> str:
        keys = ", ".join(
            f"{deparse(l)} = {deparse(r)}"
            for l, r in zip(self.left_key_exprs, self.right_key_exprs))
        text = f"HashJoin [{keys}]"
        if self.residual_expr is not None:
            text += f" +[{deparse(self.residual_expr)}]"
        return text

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)


class SortMergeJoin(Plan):
    """Single-key equi-join by sorting both inputs and merging.

    Present because the paper calls it out ("it could have chosen
    SortMergeJoin instead of NestedLoopJoin in Figure 8"); the optimizer
    picks it when both inputs are large and no index applies.
    """

    child_attrs = ("left", "right")

    def __init__(self, left: Plan, right: Plan,
                 left_key: ast.Expr, right_key: ast.Expr,
                 residual: ast.Expr | None = None):
        self.left = left
        self.right = right
        self.left_key_expr = left_key
        self.right_key_expr = right_key
        self._left_key = compile_expr(left_key)
        self._right_key = compile_expr(right_key)
        self.residual_expr = residual
        self._residual = _compile_optional(residual)
        self.vars = left.vars | right.vars

    def rows(self, ctx, outer: Bindings,
             reuse: bool = False) -> Iterator[Bindings]:
        # Both inputs are materialized, so neither may reuse bindings.
        left_rows = [(self._left_key(b), b)
                     for b in self.left.rows(ctx, outer)]
        right_rows = [(self._right_key(b), b)
                      for b in self.right.rows(ctx, outer)]
        left_rows = sorted((p for p in left_rows if p[0] is not None),
                           key=lambda p: p[0])
        right_rows = sorted((p for p in right_rows if p[0] is not None),
                            key=lambda p: p[0])
        residual = self._residual
        right_vars = self.right.vars
        i = j = 0
        while i < len(left_rows) and j < len(right_rows):
            lkey, rkey = left_rows[i][0], right_rows[j][0]
            if lkey < rkey:
                i += 1
            elif rkey < lkey:
                j += 1
            else:
                # find the blocks of equal keys on both sides
                i2 = i
                while i2 < len(left_rows) and left_rows[i2][0] == lkey:
                    i2 += 1
                j2 = j
                while j2 < len(right_rows) and right_rows[j2][0] == lkey:
                    j2 += 1
                for _, left in left_rows[i:i2]:
                    for _, right in right_rows[j:j2]:
                        merged = left.child()
                        for var in right_vars:
                            merged.current[var] = right.current[var]
                            if var in right.tids:
                                merged.tids[var] = right.tids[var]
                            if var in right.previous:
                                merged.previous[var] = right.previous[var]
                        if residual is None or is_true(residual(merged)):
                            yield merged
                i, j = i2, j2

    def label(self) -> str:
        text = (f"SortMergeJoin [{deparse(self.left_key_expr)} = "
                f"{deparse(self.right_key_expr)}]")
        if self.residual_expr is not None:
            text += f" +[{deparse(self.residual_expr)}]"
        return text

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)


class EmptyPlan(Plan):
    """Produces no rows (unsatisfiable predicates plan to this)."""

    def rows(self, ctx, outer: Bindings,
             reuse: bool = False) -> Iterator[Bindings]:
        return iter(())

    def label(self) -> str:
        return "Empty"


class SingletonPlan(Plan):
    """Produces exactly the outer bindings once (zero-variable commands
    like ``append t(a = 1)``)."""

    def rows(self, ctx, outer: Bindings,
             reuse: bool = False) -> Iterator[Bindings]:
        yield outer

    def label(self) -> str:
        return "Singleton"


class AnalyzedPlan(Plan):
    """Instrumenting wrapper around one plan node (``explain analyze``).

    Counts loops (how often the node was (re-)executed — the inner side
    of a nested-loop join runs once per outer row), rows produced, and
    wall time.  Timing brackets each ``next()`` on the wrapped iterator,
    so a node's time *includes* its children (as in PostgreSQL's EXPLAIN
    ANALYZE) but excludes time the consumer spends on each row.
    """

    def __init__(self, node: Plan, children: list["AnalyzedPlan"]):
        self.node = node
        self._children = tuple(children)
        self.vars = node.vars
        self.loops = 0
        self.rows_out = 0
        self.seconds = 0.0

    def rows(self, ctx, outer: Bindings,
             reuse: bool = False) -> Iterator[Bindings]:
        self.loops += 1
        iterator = self.node.rows(ctx, outer, reuse)
        perf_counter = time.perf_counter
        while True:
            start = perf_counter()
            try:
                row = next(iterator)
            except StopIteration:
                self.seconds += perf_counter() - start
                return
            self.seconds += perf_counter() - start
            self.rows_out += 1
            yield row

    def rows_in(self) -> int:
        """Rows the node consumed: the sum of its children's output."""
        return sum(child.rows_out for child in self._children)

    def label(self) -> str:
        parts = []
        if self._children:
            parts.append(f"rows_in={self.rows_in()}")
        parts.append(f"rows={self.rows_out}")
        parts.append(f"loops={self.loops}")
        parts.append(f"time={self.seconds * 1000.0:.3f}ms")
        return f"{self.node.label()} ({' '.join(parts)})"

    def children(self) -> tuple[Plan, ...]:
        return self._children


def instrument(plan: Plan) -> AnalyzedPlan:
    """Wrap every node of a plan tree in an :class:`AnalyzedPlan`.

    The tree is rebuilt from shallow copies with child attributes
    rewritten to the wrapped children, so the original plan — which may
    live in a statement cache — is never mutated and records nothing.
    """
    node = copy.copy(plan)
    wrapped_children = []
    for attr in plan.child_attrs:
        wrapped = instrument(getattr(plan, attr))
        setattr(node, attr, wrapped)
        wrapped_children.append(wrapped)
    return AnalyzedPlan(node, wrapped_children)


def explain(plan: Plan, indent: int = 0) -> str:
    """Render a plan tree as an indented outline (one node per line)."""
    lines = ["  " * indent + plan.label()]
    for child in plan.children():
        lines.append(explain(child, indent + 1))
    return "\n".join(lines)


def plan_operators(plan: Plan) -> list[str]:
    """Flat list of operator class names (handy for tests)."""
    out = [type(plan).__name__]
    for child in plan.children():
        out.extend(plan_operators(child))
    return out
