"""The cost-based query optimizer.

Planning proceeds exactly as in System R's lineage: the WHERE clause is
split into conjuncts; single-variable conjuncts are pushed down and drive
access-path selection (B-tree range scans, hash point lookups, otherwise a
sequential scan with the predicate inlined); multi-variable conjuncts rank
join orders, enumerated bottom-up over left-deep trees by dynamic
programming (greedy beyond 8 inputs).  Join methods considered: index
nested loop (when the new input has an index on an equi-join attribute),
hash join, sort-merge join, and plain nested loop.

The same entry point plans rule actions: the rule-action planner passes a
:class:`~repro.planner.plans.PnodeScan` as a *seed* input binding all of
the rule's shared tuple variables at once, and "the rest of the query plan
is constructed as usual by the query optimizer" (paper section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.errors import PlanError
from repro.intervals.interval import Interval, NEG_INF, POS_INF
from repro.lang import ast_nodes as ast
from repro.lang.expr import (
    Bindings, compile_expr, contains_params, is_true, variables_of)
from repro.lang.predicates import (
    analyze_param_selection, analyze_selection, build_condition_graph,
    conjoin, equijoin_of_conjunct)
from repro.planner import cost as costs
from repro.planner.plans import (
    EmptyPlan, FilterPlan, HashJoin, IndexProbe, IndexScan,
    NestedLoopJoin, Plan, SeqScan, SingletonPlan, SortMergeJoin)
from repro.planner.stats import Statistics

#: dynamic programming is exact up to this many join inputs
_DP_LIMIT = 8


@dataclass
class PlannedCommand:
    """A command together with its chosen plan and resolved scope."""

    command: ast.Command
    plan: Plan
    scope: dict[str, str]


@dataclass
class _Input:
    """One join-order input: a plan fragment binding some variables."""

    vars: frozenset[str]
    plan: Plan
    cost: float
    rows: float
    #: base relation of a single-variable leaf (None for seeds/joins);
    #: used to consider index nested-loop probes against this input.
    relation: str | None = None
    var: str | None = None
    #: selection conjuncts already applied (residuals included)
    indexable: bool = True


class Optimizer:
    """Builds physical plans for analyzed commands."""

    def __init__(self, catalog: Catalog,
                 statistics: Statistics | None = None):
        self.catalog = catalog
        self.stats = statistics or Statistics(catalog)

    # ------------------------------------------------------------------
    # public entry points
    # ------------------------------------------------------------------

    def plan_command(self, command: ast.Command,
                     seed: Plan | None = None,
                     seed_rows: float = 1.0) -> PlannedCommand:
        """Plan a DML command (optionally seeded with a P-node scan)."""
        scope: dict[str, str] = dict(
            getattr(command, "resolved_scope", {}) or {})
        if isinstance(command, ast.Append):
            needed = self._append_vars(command)
        elif isinstance(command, ast.Delete):
            needed = self._where_vars(command) | {command.target_var}
            needed |= {f.var for f in command.from_items}
        elif isinstance(command, ast.Replace):
            needed = self._where_vars(command) | {command.target_var}
            for col in command.assignments:
                needed |= variables_of(col.expr)
            needed |= {f.var for f in command.from_items}
        elif isinstance(command, ast.Retrieve):
            needed = self._where_vars(command)
            for col in command.targets:
                needed |= variables_of(col.expr)
            for key in command.sort_keys:
                needed |= variables_of(key.expr)
            needed |= {f.var for f in command.from_items}
        else:
            raise PlanError(
                f"cannot plan {type(command).__name__}")
        plan = self.plan_variables(sorted(needed), command.where, scope,
                                   seed=seed, seed_rows=seed_rows)
        return PlannedCommand(command, plan, scope)

    def plan_variables(self, variables: list[str],
                       where: ast.Expr | None,
                       scope: dict[str, str],
                       seed: Plan | None = None,
                       seed_rows: float = 1.0) -> Plan:
        """Plan the evaluation of ``where`` over the given variables.

        ``seed`` pre-binds ``seed.vars`` (a P-node scan); remaining
        variables come from base-relation scans.
        """
        seed_vars = frozenset(seed.vars) if seed is not None else frozenset()
        unknown = set(variables) - set(scope) - set(seed_vars)
        if unknown:
            raise PlanError(f"variables with no relation: {sorted(unknown)}")
        graph = build_condition_graph(
            where, sorted(set(variables) | set(seed_vars)))

        # Variable-free conjuncts without parameters evaluate once: any
        # non-True kills the command.  Parameterized ones can only be
        # decided at execution time, so they become a runtime filter over
        # the finished plan.
        dynamic_constants = []
        for conjunct in graph.constants:
            if contains_params(conjunct):
                dynamic_constants.append(conjunct)
            elif not is_true(compile_expr(conjunct)(Bindings())):
                return EmptyPlan()

        def finish(plan: Plan) -> Plan:
            if dynamic_constants:
                return FilterPlan(plan, conjoin(dynamic_constants))
            return plan

        inputs: list[_Input] = []
        if seed is not None:
            seed_conjuncts = [
                c for v in seed_vars for c in graph.selections.get(v, [])]
            seed_conjuncts += [
                j for j in graph.joins
                if variables_of(j) <= seed_vars]
            plan: Plan = seed
            if seed_conjuncts:
                plan = FilterPlan(plan, conjoin(seed_conjuncts))
            inputs.append(_Input(frozenset(seed_vars), plan,
                                 cost=max(seed_rows, 1.0),
                                 rows=max(seed_rows * (0.5 if seed_conjuncts
                                                       else 1.0), 0.1)))

        for var in variables:
            if var in seed_vars:
                continue
            inputs.append(self._leaf(var, scope[var],
                                     graph.selections.get(var, [])))
        if any(isinstance(i.plan, EmptyPlan) for i in inputs):
            return EmptyPlan()
        if not inputs:
            return finish(SingletonPlan())

        join_conjuncts = [j for j in graph.joins
                          if not variables_of(j) <= seed_vars]
        best = self._order_joins(inputs, join_conjuncts, scope)
        return finish(best.plan)

    # ------------------------------------------------------------------
    # access paths
    # ------------------------------------------------------------------

    def _leaf(self, var: str, relation_name: str,
              conjuncts: list[ast.Expr]) -> _Input:
        relation = self.catalog.relation(relation_name)
        analysis = analyze_selection(conjuncts, var)
        if analysis.unsatisfiable:
            return _Input(frozenset([var]), EmptyPlan(), 0.0, 0.0,
                          relation_name, var)
        out_rows = self.stats.scan_cardinality(relation_name, var,
                                               conjuncts)
        seq_cost, _ = costs.seq_scan_cost(len(relation), out_rows)
        best_plan: Plan = SeqScan(relation_name, var, conjoin(conjuncts))
        best_cost = seq_cost
        if analysis.anchor is not None:
            interval = analysis.anchor.interval
            point = (interval.low_closed and interval.high_closed
                     and interval.low == interval.high)
            index = relation.index_on(analysis.anchor.attr, "btree")
            if index is None and point:
                index = relation.index_on(analysis.anchor.attr, "hash")
            if index is not None:
                idx_cost, _ = costs.index_scan_cost(out_rows)
                if idx_cost < best_cost:
                    best_cost = idx_cost
                    best_plan = IndexScan(relation_name, var, index.name,
                                          interval, analysis.residual)
        # Parameterized anchors: a conjunct like ``var.attr = $id`` can
        # still drive index selection — the access path is fixed at plan
        # time, the key resolves from the parameter vector per execution.
        if any(contains_params(c) for c in conjuncts):
            p_anchor, p_residual = analyze_param_selection(conjuncts, var)
            if p_anchor is not None:
                idx_cost, _ = costs.index_scan_cost(out_rows)
                if p_anchor.eq is not None:
                    index = (relation.index_on(p_anchor.attr, "hash")
                             or relation.index_on(p_anchor.attr, "btree"))
                    # an equality probe is at worst as good as a static
                    # range anchor at equal estimated cost
                    if index is not None and idx_cost <= best_cost:
                        best_cost = idx_cost
                        best_plan = IndexProbe(relation_name, var,
                                               index.name, p_anchor.eq,
                                               p_residual)
                else:
                    index = relation.index_on(p_anchor.attr, "btree")
                    if index is not None and idx_cost < best_cost:
                        bounds = Interval(NEG_INF, POS_INF,
                                          p_anchor.low_closed,
                                          p_anchor.high_closed)
                        best_cost = idx_cost
                        best_plan = IndexScan(relation_name, var,
                                              index.name, bounds,
                                              p_residual,
                                              low_expr=p_anchor.low,
                                              high_expr=p_anchor.high)
        return _Input(frozenset([var]), best_plan, best_cost, out_rows,
                      relation_name, var)

    # ------------------------------------------------------------------
    # join ordering
    # ------------------------------------------------------------------

    def _order_joins(self, inputs: list[_Input],
                     join_conjuncts: list[ast.Expr],
                     scope: dict[str, str]) -> _Input:
        if len(inputs) == 1:
            leftover = list(join_conjuncts)
            result = inputs[0]
            if leftover:
                result = _Input(result.vars,
                                FilterPlan(result.plan, conjoin(leftover)),
                                result.cost, result.rows)
            return result
        if len(inputs) <= _DP_LIMIT:
            return self._order_dp(inputs, join_conjuncts, scope)
        return self._order_greedy(inputs, join_conjuncts, scope)

    def _order_dp(self, inputs: list[_Input],
                  join_conjuncts: list[ast.Expr],
                  scope: dict[str, str]) -> _Input:
        n = len(inputs)
        full = (1 << n) - 1
        table: dict[int, _Input] = {}
        for i, item in enumerate(inputs):
            table[1 << i] = item
        for mask in range(1, full + 1):
            if mask not in table:
                continue
            current = table[mask]
            for j in range(n):
                bit = 1 << j
                if mask & bit:
                    continue
                candidate = self._join(current, inputs[j],
                                       join_conjuncts, scope)
                key = mask | bit
                existing = table.get(key)
                if existing is None or candidate.cost < existing.cost:
                    table[key] = candidate
        return table[full]

    def _order_greedy(self, inputs: list[_Input],
                      join_conjuncts: list[ast.Expr],
                      scope: dict[str, str]) -> _Input:
        remaining = sorted(inputs, key=lambda i: i.rows)
        current = remaining.pop(0)
        while remaining:
            best_index = 0
            best: _Input | None = None
            for i, item in enumerate(remaining):
                candidate = self._join(current, item, join_conjuncts,
                                       scope)
                if best is None or candidate.cost < best.cost:
                    best, best_index = candidate, i
            remaining.pop(best_index)
            current = best
        return current

    def _join(self, left: _Input, right: _Input,
              join_conjuncts: list[ast.Expr],
              scope: dict[str, str]) -> _Input:
        both = left.vars | right.vars
        applicable = [c for c in join_conjuncts
                      if variables_of(c) <= both
                      and not variables_of(c) <= left.vars
                      and not variables_of(c) <= right.vars]
        selectivity = 1.0
        for conjunct in applicable:
            selectivity *= self.stats.join_selectivity(conjunct, scope)
        out_rows = max(left.rows * right.rows * selectivity, 0.0)

        equis = []
        for conjunct in applicable:
            equi = equijoin_of_conjunct(conjunct)
            if equi is None:
                continue
            if equi.left_var in left.vars:
                equis.append((conjunct, equi))
            elif equi.right_var in left.vars:
                equis.append((conjunct, equi.reversed()))

        predicate = conjoin(applicable)
        best_plan: Plan = NestedLoopJoin(left.plan, right.plan, predicate)
        best_cost, _ = costs.nested_loop_cost(left.cost, left.rows,
                                              right.cost, out_rows)

        if equis:
            residual = conjoin(
                [c for c in applicable
                 if c is not equis[0][0]]) if len(applicable) > 1 else None
            left_keys = []
            right_keys = []
            for conjunct, equi in equis:
                left_keys.append(ast.AttrRef(
                    equi.left_var, equi.left_attr,
                    position=equi.left_position))
                right_keys.append(ast.AttrRef(
                    equi.right_var, equi.right_attr,
                    position=equi.right_position))
            equi_ids = {id(e[0]) for e in equis}
            multi_residual = conjoin(
                [c for c in applicable if id(c) not in equi_ids])

            hash_cost, _ = costs.hash_join_cost(
                left.cost, left.rows, right.cost, right.rows, out_rows)
            if hash_cost < best_cost:
                best_cost = hash_cost
                best_plan = HashJoin(left.plan, right.plan, left_keys,
                                     right_keys, multi_residual)

            merge_cost, _ = costs.merge_join_cost(
                left.cost, left.rows, right.cost, right.rows, out_rows)
            if merge_cost < best_cost:
                best_cost = merge_cost
                best_plan = SortMergeJoin(left.plan, right.plan,
                                          left_keys[0], right_keys[0],
                                          residual)

            probe_plan = self._index_probe(right, equis, applicable)
            if probe_plan is not None:
                matches = max(out_rows / max(left.rows, 1.0), 0.0)
                probe_cost, _ = costs.index_nlj_cost(
                    left.cost, left.rows, matches, out_rows)
                if probe_cost < best_cost:
                    best_cost = probe_cost
                    best_plan = NestedLoopJoin(left.plan, probe_plan, None)

        return _Input(both, best_plan, best_cost, max(out_rows, 0.1))

    def _index_probe(self, right: _Input, equis, applicable
                     ) -> Plan | None:
        """An IndexProbe replacement for a single-variable right leaf."""
        if right.relation is None or right.var is None:
            return None
        relation = self.catalog.relation(right.relation)
        for conjunct, equi in equis:
            if equi.right_var != right.var:
                continue
            index = (relation.index_on(equi.right_attr, "hash")
                     or relation.index_on(equi.right_attr, "btree"))
            if index is None:
                continue
            key = ast.AttrRef(equi.left_var, equi.left_attr,
                              position=equi.left_position)
            residual_parts = [c for c in applicable if c is not conjunct]
            existing = getattr(right.plan, "predicate_expr", None)
            if isinstance(right.plan, (SeqScan,)) and existing is not None:
                residual_parts.append(existing)
            elif isinstance(right.plan, IndexScan):
                # Rebuilding the probe loses the original access path's
                # interval; fold it back in as a residual via the scan's
                # residual and skip (keep it simple: only replace SeqScan
                # leaves).
                return None
            elif not isinstance(right.plan, SeqScan):
                return None
            return IndexProbe(right.relation, right.var, index.name, key,
                              conjoin(residual_parts))
        return None

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _where_vars(command) -> set[str]:
        if command.where is None:
            return set()
        return variables_of(command.where)

    @staticmethod
    def _append_vars(command: ast.Append) -> set[str]:
        out = set()
        for col in command.targets:
            out |= variables_of(col.expr)
        out |= {f.var for f in command.from_items}
        if command.where is not None:
            out |= variables_of(command.where)
        return out
