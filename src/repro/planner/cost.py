"""Cost model for the Selinger-style planner.

Costs are abstract "tuples touched" units — adequate for ranking plans
over an in-memory engine.  Each function returns (cost, output rows).
"""

from __future__ import annotations

import math


def seq_scan_cost(relation_rows: float, output_rows: float
                  ) -> tuple[float, float]:
    """Scan every tuple, emit the estimated qualifying fraction."""
    return (max(relation_rows, 1.0), output_rows)


def index_scan_cost(output_rows: float) -> tuple[float, float]:
    """Touch roughly the qualifying tuples plus a descent."""
    return (output_rows + _log(output_rows), output_rows)


def nested_loop_cost(left_cost: float, left_rows: float,
                     right_cost: float, output_rows: float
                     ) -> tuple[float, float]:
    """Re-run the inner per outer row."""
    return (left_cost + max(left_rows, 1.0) * max(right_cost, 1.0),
            output_rows)


def index_nlj_cost(left_cost: float, left_rows: float,
                   matches_per_probe: float, output_rows: float
                   ) -> tuple[float, float]:
    """One index probe per outer row."""
    per_probe = 1.0 + matches_per_probe
    return (left_cost + max(left_rows, 1.0) * per_probe, output_rows)


def hash_join_cost(left_cost: float, left_rows: float,
                   right_cost: float, right_rows: float,
                   output_rows: float) -> tuple[float, float]:
    """Build on left, probe with right."""
    return (left_cost + right_cost + left_rows + right_rows + output_rows,
            output_rows)


def merge_join_cost(left_cost: float, left_rows: float,
                    right_cost: float, right_rows: float,
                    output_rows: float) -> tuple[float, float]:
    """Sort both sides, then a linear merge."""
    sort = left_rows * _log(left_rows) + right_rows * _log(right_rows)
    return (left_cost + right_cost + sort + output_rows, output_rows)


def _log(rows: float) -> float:
    return math.log2(rows + 2.0)
