"""A blocking client for the rule-evaluation front end.

:class:`ServiceClient` speaks the JSON-lines protocol of
:mod:`repro.serve.protocol` over one TCP connection (= one server
session).  Engine errors surface as :class:`RemoteError`, which
carries the server-side exception class name so callers can
distinguish a :class:`~repro.errors.TransactionError` denial from an
:class:`~repro.errors.ExecutionError` without parsing messages.

.. code-block:: python

    with ServiceClient(host, port) as client:
        client.execute('append emp(name = "a", sal = 1.0)')
        client.prepare("by_sal", "retrieve (e.name) from e in emp "
                                 "where e.sal > $floor")
        rows = client.exec_prepared("by_sal", {"floor": 0.5})["rows"]
"""

from __future__ import annotations

import itertools
import socket

from repro.errors import ServiceError
from repro.serve import protocol


class RemoteError(ServiceError):
    """A server-side error relayed over the wire.

    :attr:`kind` is the original exception class name (for example
    ``"TransactionError"``); the message is the original message.
    """

    def __init__(self, kind: str, message: str):
        super().__init__(message)
        self.kind = kind


class ServiceClient:
    """One connection (= one server session) to a RuleServer."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._socket = socket.create_connection((host, port),
                                                timeout=timeout)
        self._reader = self._socket.makefile("rb")
        self._writer = self._socket.makefile("wb")
        self._request_ids = itertools.count(1)
        self.closed = False

    # ------------------------------------------------------------------

    def _call(self, op: str, **fields) -> dict:
        if self.closed:
            raise ServiceError("client is closed")
        request = {"id": next(self._request_ids), "op": op, **fields}
        try:
            self._writer.write(protocol.encode_message(request))
            self._writer.flush()
            response = protocol.read_message(self._reader)
        except (OSError, ValueError) as exc:
            self.close()
            raise ServiceError(
                f"connection to rule server lost: {exc}") from exc
        if response is None:
            self.close()
            raise ServiceError("rule server closed the connection")
        if not response.get("ok"):
            error = response.get("error") or {}
            raise RemoteError(error.get("kind", "ServiceError"),
                              error.get("message", "unknown error"))
        return response.get("result") or {}

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------

    def ping(self) -> bool:
        return self._call("ping").get("type") == "pong"

    def session_id(self) -> int:
        return self._call("session")["session"]

    def execute(self, text: str) -> dict:
        """Execute one command; returns the protocol result dict
        (``{"type": "rows"|"dml"|"text"|"ok", ...}``)."""
        return self._call("execute", text=text)

    def query(self, text: str) -> dict:
        """Execute a retrieve on the server's read path."""
        return self._call("query", text=text)

    def rows(self, text: str) -> list[list]:
        """The rows of a retrieve (convenience over :meth:`query`)."""
        return self.query(text)["rows"]

    def prepare(self, name: str, text: str) -> list[str]:
        """Prepare ``text`` under ``name``; returns the parameter
        signature."""
        return self._call("prepare", name=name, text=text)["signature"]

    def exec_prepared(self, name: str,
                      params: dict | None = None) -> dict:
        """Execute a prepared statement by name."""
        return self._call("exec", name=name, params=params or {})

    def begin(self) -> None:
        self._call("begin")

    def commit(self) -> None:
        self._call("commit")

    def abort(self) -> None:
        self._call("abort")

    def status(self) -> dict:
        return self._call("status")["status"]

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Close the connection (ending the server-side session);
        idempotent."""
        if self.closed:
            return
        self.closed = True
        for stream in (self._writer, self._reader, self._socket):
            try:
                stream.close()
            except OSError:
                pass

    def __enter__(self) -> ServiceClient:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
