"""repro.serve — the concurrent rule-evaluation service.

Turns a single-threaded :class:`~repro.db.Database` into a served
system (ROADMAP item 1, the ezrules evaluator-service shape):

* :class:`~repro.serve.session.Session` — one client's handle, with
  snapshot-isolated reads: a read runs only between fully-settled
  transitions (the per-transition Δ-sets and undo scopes are the
  consistency boundary), enforced by the service's
  :class:`~repro.serve.session.SnapshotGate`.
* :class:`~repro.serve.service.RuleService` — a single-consumer write
  queue that serializes every mutation through the existing
  recognize-act cycle and WAL, so journal bytes and firing order are
  identical to serial execution, with per-session transaction gating.
* :class:`~repro.serve.server.RuleServer` /
  :class:`~repro.serve.client.ServiceClient` — a JSON-lines TCP front
  end dispatching prepared-statement executions from many concurrent
  clients.
* :mod:`~repro.serve.loadgen` — the load generator behind the
  sustained evaluations/sec benchmark (``BENCH_serving.json``).
"""

from repro.serve.client import RemoteError, ServiceClient
from repro.serve.server import RuleServer
from repro.serve.service import RuleService
from repro.serve.session import Session, SnapshotGate

__all__ = [
    "RemoteError", "RuleServer", "RuleService", "ServiceClient",
    "Session", "SnapshotGate",
]
