"""Load generator for the rule-evaluation service.

Drives a :class:`~repro.serve.server.RuleServer` with N concurrent
clients executing a prepared-statement workload (the ezrules
evaluator-service shape: event in → rule outcome out) and reports
sustained evaluations/sec.  This is both the CI smoke driver and the
measurement engine behind ``BENCH_serving.json``.

Run standalone (boots its own server over a demo rule base)::

    python -m repro.serve.loadgen --standalone --clients 4 --duration 2

or point it at a running server with ``--host``/``--port``.  The
workload mixes snapshot-isolated reads (an indexed prepared retrieve)
with serialized writes (a prepared replace that triggers an audit
rule) in a configurable ratio; every client reports its own op count
and the summary includes the per-path totals.
"""

from __future__ import annotations

import argparse
import json
import threading
import time

from repro.db import Database
from repro.serve.client import ServiceClient
from repro.serve.server import RuleServer

#: prepared read: one indexed probe, the "evaluate for entity" shape
READ_STATEMENT = ("retrieve (e.name, e.sal) from e in emp "
                  "where e.id = $id")

#: prepared write: bump one entity's salary — fires the audit rule
WRITE_STATEMENT = ("replace e (sal = $sal) from e in emp "
                   "where e.id = $id")


def demo_database(rows: int = 200, rules: int = 4,
                  **database_kwargs) -> Database:
    """A demo rule base for standalone load runs: an indexed entity
    relation, an audit log, and range rules that fire on updates."""
    db = Database(**database_kwargs)
    db.execute("create emp (id = int4, name = text, sal = float8)")
    db.execute("create audit (tag = text, who = text)")
    db.execute("define index emp_id on emp (id) using hash")
    for i in range(rules):
        low = 1000.0 * i
        high = low + 500.0
        db.execute(
            f'define rule audit_{i} on replace emp '
            f'if {low} < emp.sal and emp.sal <= {high} '
            f'then append to audit(tag = "band{i}", who = emp.name)')
    db.bulk_append("emp", [
        (i, f"emp{i:04d}", 1000.0 * (i % rules) + 250.0)
        for i in range(rows)])
    return db


class _ClientWorker(threading.Thread):
    """One closed-loop client: exec, wait for the reply, repeat."""

    def __init__(self, host: str, port: int, deadline: float,
                 rows: int, write_every: int, offset: int):
        super().__init__(name=f"loadgen-{offset}", daemon=True)
        self.host = host
        self.port = port
        self.deadline = deadline
        self.rows = rows
        self.write_every = write_every
        self.offset = offset
        self.reads = 0
        self.writes = 0
        self.errors = 0
        self.error: str | None = None

    def run(self) -> None:
        try:
            with ServiceClient(self.host, self.port) as client:
                client.prepare("probe", READ_STATEMENT)
                if self.write_every:
                    client.prepare("bump", WRITE_STATEMENT)
                i = self.offset
                while time.perf_counter() < self.deadline:
                    i += 1
                    if self.write_every and i % self.write_every == 0:
                        client.exec_prepared("bump", {
                            "id": i % self.rows,
                            "sal": 250.0 + (i % 2000)})
                        self.writes += 1
                    else:
                        client.exec_prepared("probe",
                                             {"id": i % self.rows})
                        self.reads += 1
        except Exception as exc:   # surfaced in the summary
            self.error = f"{type(exc).__name__}: {exc}"
            self.errors += 1


def run_load(host: str, port: int, clients: int = 4,
             duration: float = 2.0, rows: int = 200,
             write_ratio: float = 0.0) -> dict:
    """Drive the server with ``clients`` concurrent closed-loop
    clients for ``duration`` seconds; returns a summary dict
    (``ops_per_sec`` is the headline sustained evaluations/sec)."""
    write_every = int(round(1.0 / write_ratio)) if write_ratio else 0
    start = time.perf_counter()
    deadline = start + duration
    workers = [
        _ClientWorker(host, port, deadline, rows, write_every,
                      offset=i * 7919)
        for i in range(clients)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=duration + 30.0)
    elapsed = time.perf_counter() - start
    reads = sum(w.reads for w in workers)
    writes = sum(w.writes for w in workers)
    total = reads + writes
    return {
        "clients": clients,
        "duration_s": round(elapsed, 4),
        "reads": reads,
        "writes": writes,
        "ops": total,
        "ops_per_sec": round(total / elapsed, 2) if elapsed else 0.0,
        "per_client": [w.reads + w.writes for w in workers],
        "errors": [w.error for w in workers if w.error],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="load-generate against a repro rule server")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--standalone", action="store_true",
                        help="boot a demo server in-process first")
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--duration", type=float, default=2.0)
    parser.add_argument("--rows", type=int, default=200)
    parser.add_argument("--write-ratio", type=float, default=0.1,
                        help="fraction of ops that are writes")
    parser.add_argument("--json", metavar="PATH",
                        help="also write the summary as JSON")
    args = parser.parse_args(argv)

    server = None
    host, port = args.host, args.port
    if args.standalone:
        server = RuleServer(db=demo_database(rows=args.rows))
        host, port = server.start()
        print(f"standalone server on {host}:{port}")
    elif not port:
        parser.error("--port is required unless --standalone")
    try:
        summary = run_load(host, port, clients=args.clients,
                           duration=args.duration, rows=args.rows,
                           write_ratio=args.write_ratio)
    finally:
        if server is not None:
            server.stop(close_db=True)
    print(f"clients={summary['clients']} ops={summary['ops']} "
          f"({summary['reads']} reads, {summary['writes']} writes) "
          f"in {summary['duration_s']}s -> "
          f"{summary['ops_per_sec']} evaluations/sec")
    for error in summary["errors"]:
        print(f"client error: {error}")
    if args.json:
        with open(args.json, "w") as f:
            json.dump(summary, f, indent=2)
            f.write("\n")
    return 1 if summary["errors"] or not summary["ops"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
