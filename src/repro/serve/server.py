"""The socket front end: a threaded TCP server over a RuleService.

One TCP connection is one :class:`~repro.serve.session.Session`.  Each
connection gets its own handler thread (reads scale out through the
snapshot gate; writes funnel into the service's single write queue),
speaking the JSON-lines protocol of :mod:`repro.serve.protocol`.
Engine errors are answered on the wire and the connection keeps
serving; protocol errors (unreadable frames) end the connection.  A
dropped connection aborts the session's open transaction, so a dying
client can never wedge the write queue.
"""

from __future__ import annotations

import socketserver
import threading

from repro.errors import ArielError
from repro.serve import protocol
from repro.serve.service import RuleService


class _ConnectionHandler(socketserver.StreamRequestHandler):
    """One client connection = one session, served line by line."""

    def handle(self) -> None:  # noqa: D102 (socketserver interface)
        self.server.rule_server._serve_connection(self.rfile,
                                                  self.wfile)


class _ThreadedTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class RuleServer:
    """Serve a :class:`~repro.serve.service.RuleService` over TCP.

    ``port=0`` (the default) binds an ephemeral port; :meth:`start`
    returns the bound ``(host, port)``.  The server owns its service
    when it created one (``service=None`` + database kwargs), and
    :meth:`stop` shuts the service down in that case.
    """

    def __init__(self, service: RuleService | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 **database_kwargs):
        self._owns_service = service is None
        self.service = service if service is not None \
            else RuleService(**database_kwargs)
        self._host = host
        self._port = port
        self._server: _ThreadedTCPServer | None = None
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Bind, start serving in a daemon thread, and return the
        bound address."""
        if self._server is not None:
            return self.address
        self._server = _ThreadedTCPServer((self._host, self._port),
                                          _ConnectionHandler)
        self._server.rule_server = self
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-serve-accept", daemon=True)
        self._thread.start()
        return self.address

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port); raises before :meth:`start`."""
        if self._server is None:
            raise RuntimeError("server is not started")
        host, port = self._server.server_address[:2]
        return host, port

    @property
    def running(self) -> bool:
        return self._server is not None

    def stop(self, shutdown_service: bool | None = None,
             close_db: bool = False) -> None:
        """Stop accepting connections and (when the server owns its
        service, or when forced) shut the service down."""
        server, self._server = self._server, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        if shutdown_service is None:
            shutdown_service = self._owns_service
        if shutdown_service:
            self.service.shutdown(close_db=close_db)

    def __enter__(self) -> RuleServer:
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # connection serving
    # ------------------------------------------------------------------

    def _serve_connection(self, rfile, wfile) -> None:
        session = self.service.open_session()
        try:
            while True:
                try:
                    request = protocol.read_message(rfile)
                except ValueError as exc:
                    self._respond(wfile, {
                        "ok": False,
                        "error": protocol.error_payload(exc)})
                    break
                if request is None:        # client hung up
                    break
                if not request:            # blank keep-alive line
                    continue
                response = self._dispatch(session, request)
                response["id"] = request.get("id")
                if not self._respond(wfile, response):
                    break
                if request.get("op") == "close":
                    break
        finally:
            self.service.close_session(session)

    @staticmethod
    def _respond(wfile, payload: dict) -> bool:
        try:
            wfile.write(protocol.encode_message(payload))
            wfile.flush()
            return True
        except (OSError, ValueError):
            return False

    def _dispatch(self, session, request: dict) -> dict:
        op = request.get("op")
        try:
            if op == "ping":
                return {"ok": True, "result": {"type": "pong"}}
            if op == "session":
                return {"ok": True,
                        "result": {"type": "session",
                                   "session": session.id}}
            if op == "execute":
                result = session.execute(self._field(request, "text"))
                return {"ok": True,
                        "result": protocol.encode_result(result)}
            if op == "query":
                result = session.query(self._field(request, "text"))
                return {"ok": True,
                        "result": protocol.encode_result(result)}
            if op == "prepare":
                signature = session.prepare(
                    self._field(request, "name"),
                    self._field(request, "text"))
                return {"ok": True,
                        "result": {"type": "prepared",
                                   "signature": list(signature)}}
            if op == "exec":
                result = session.execute_prepared(
                    self._field(request, "name"),
                    request.get("params") or {})
                return {"ok": True,
                        "result": protocol.encode_result(result)}
            if op == "begin":
                session.begin()
                return {"ok": True, "result": {"type": "ok"}}
            if op == "commit":
                session.commit()
                return {"ok": True, "result": {"type": "ok"}}
            if op == "abort":
                session.abort()
                return {"ok": True, "result": {"type": "ok"}}
            if op == "status":
                return {"ok": True,
                        "result": {"type": "status",
                                   "status": self.service.status()}}
            if op == "close":
                return {"ok": True, "result": {"type": "ok"}}
            raise ValueError(
                f"unknown op {op!r}; expected one of "
                f"{list(protocol.OPS)}")
        except (ArielError, ValueError, TypeError) as exc:
            return {"ok": False, "error": protocol.error_payload(exc)}

    @staticmethod
    def _field(request: dict, name: str) -> str:
        value = request.get(name)
        if not isinstance(value, str) or not value:
            raise ValueError(f"request is missing the {name!r} field")
        return value
