"""Serving sessions and the transition-granular snapshot gate.

The engine's consistency unit is the *settled transition*: after the
transition hooks flush, the Δ-sets clear and the recognize-act cycle
runs to quiescence, the heap, α-memories, P-nodes and WAL all agree.
:class:`SnapshotGate` turns that boundary into an isolation level for
concurrent readers: any number of read sessions may run between
transitions, and the single writer thread excludes them for exactly
the duration of one transition (or one explicit transaction), so a
reader can never observe a half-applied Δ-set or a mid-cascade agenda.

:class:`Session` is one client's handle on the
:class:`~repro.serve.service.RuleService`: it carries the client's
named prepared statements and its transaction state.  All methods
delegate to the service, which decides per command whether it takes
the concurrent read path or the serialized write queue.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from repro.errors import SessionError


class SnapshotGate:
    """A readers-writer gate at transition granularity.

    Readers share; the writer excludes.  Writer-preferring: once the
    write queue wants the gate, new readers wait, so a stream of
    retrieves cannot starve mutations.  The writer side is only ever
    taken by the service's single consumer thread, which may hold it
    across many operations (an explicit transaction).
    """

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if not self._readers:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    @contextmanager
    def read(self):
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self):
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    def snapshot(self) -> dict:
        """Gate occupancy (diagnostics for the status endpoint)."""
        with self._cond:
            return {"readers": self._readers,
                    "writer": self._writer,
                    "writers_waiting": self._writers_waiting}


class Session:
    """One client's handle on a :class:`~repro.serve.service
    .RuleService`.

    Sessions are cheap (a dict of prepared statements plus flags) and
    single-client by convention: the service serializes all mutations
    anyway, but a session's prepared-statement namespace and
    transaction state are not meant to be shared between threads.
    """

    def __init__(self, service, session_id: int):
        self.service = service
        self.id = session_id
        #: client-named prepared statements (name -> Prepared)
        self.prepared: dict = {}
        #: this session holds the service's open transaction
        self.in_transaction = False
        self.closed = False
        #: diagnostics: operations served on each path
        self.reads = 0
        self.writes = 0

    # ------------------------------------------------------------------
    # delegation — the service decides read path vs write queue
    # ------------------------------------------------------------------

    def execute(self, text: str):
        """Execute one command (read path for plain retrieves, the
        serialized write queue for everything else)."""
        return self.service.execute(self, text)

    def query(self, text: str):
        """Execute a retrieve on the snapshot-isolated read path."""
        return self.service.query(self, text)

    def prepare(self, name: str, text: str):
        """Prepare ``text`` under a session-scoped name; returns the
        parameter signature."""
        return self.service.prepare(self, name, text)

    def execute_prepared(self, name: str,
                         params: dict | None = None):
        """Execute a prepared statement by its session-scoped name."""
        return self.service.execute_prepared(self, name, params)

    def begin(self) -> None:
        self.service.begin(self)

    def commit(self) -> None:
        self.service.commit(self)

    def abort(self) -> None:
        self.service.abort(self)

    def close(self) -> None:
        self.service.close_session(self)

    def _require_open(self) -> None:
        if self.closed:
            raise SessionError(f"session {self.id} is closed")

    def prepared_statement(self, name: str):
        """The session's prepared statement ``name`` (or raise)."""
        prepared = self.prepared.get(name)
        if prepared is None:
            known = ", ".join(sorted(self.prepared)) or "none"
            raise SessionError(
                f"session {self.id} has no prepared statement "
                f"{name!r} (prepared: {known})")
        return prepared

    def __enter__(self) -> Session:
        return self

    def __exit__(self, *exc_info) -> None:
        if not self.closed:
            self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else (
            "in-transaction" if self.in_transaction else "open")
        return (f"Session(id={self.id}, {state}, "
                f"{len(self.prepared)} prepared)")
