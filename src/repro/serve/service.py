"""The concurrent rule-evaluation service: one engine, many sessions.

:class:`RuleService` wraps a single :class:`~repro.db.Database` behind
two disciplines that together make concurrent serving *equivalent to a
serial execution*:

* **Serialized writes.**  Every mutating command — ad-hoc DML, DDL,
  rule lifecycle, prepared-statement executions of append/delete/
  replace, and transaction control — is submitted to a single-consumer
  write queue.  One writer thread drains it, running each operation
  through the ordinary ``Database`` entry points, so the recognize-act
  cycle, the firing order, and the WAL's journal bytes are exactly
  those of the same commands executed serially in queue order.  The
  service records that order (:attr:`serial_log`), which is what the
  concurrent-vs-serial equivalence property replays.
* **Snapshot-isolated reads.**  Plain retrieves run concurrently on
  the calling threads under the shared side of a
  :class:`~repro.serve.session.SnapshotGate`; the writer takes the
  exclusive side for the duration of each transition.  A reader
  therefore only ever sees fully-settled transitions — never a
  half-applied Δ-set, a mid-cascade agenda, or an uncommitted
  transaction.

**Transactions** are per-session and exclusive: ``begin`` hands the
owning session the write gate until ``commit``/``abort``.  A second
session's ``begin`` is *denied* with a clean
:class:`~repro.errors.TransactionError` before the engine is touched
(the engine-level guard would corrupt nothing either, but the denial
must not depend on timing), other sessions' writes are deferred in
arrival order until the transaction ends, and other sessions' reads
wait on the gate — uncommitted state never escapes the owner.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from concurrent.futures import Future
from queue import Empty, SimpleQueue

from repro.db import Database
from repro.errors import (
    ExecutionError, ServiceError, SessionError, TransactionError)
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse_command
from repro.serve.session import Session, SnapshotGate

#: sentinel draining the writer thread
_STOP = object()

#: default seconds a caller waits for the writer before giving up
DEFAULT_TIMEOUT = 30.0


class _WriteOp:
    """One queued write: what to run, for whom, and where the caller
    waits for the outcome."""

    __slots__ = ("kind", "session", "payload", "future")

    def __init__(self, kind: str, session: Session, payload):
        self.kind = kind
        self.session = session
        self.payload = payload
        self.future: Future = Future()


def _is_plain_retrieve(command: ast.Command) -> bool:
    return isinstance(command, ast.Retrieve) and command.into is None


class RuleService:
    """Serve one database to many concurrent sessions.

    Parameters
    ----------
    db:
        The database to serve.  When None, one is created from
        ``database_kwargs``.  The service takes ownership either way:
        :meth:`shutdown` with ``close_db=True`` closes it.
    timeout:
        Default seconds a submitting thread waits for the write queue
        before raising :class:`~repro.errors.ServiceError` (a write
        stuck behind a long transaction is surfaced, not hung).
    """

    def __init__(self, db: Database | None = None,
                 timeout: float = DEFAULT_TIMEOUT,
                 **database_kwargs):
        self.db = db if db is not None else Database(**database_kwargs)
        self.timeout = timeout
        self.gate = SnapshotGate()
        self._queue: SimpleQueue = SimpleQueue()
        self._sessions: dict[int, Session] = {}
        self._session_lock = threading.Lock()
        self._session_ids = itertools.count(1)
        self._read_lock = threading.Lock()
        self._txn_owner: Session | None = None
        self._stopped = False
        #: the committed serial order of every write operation, as
        #: replayable entries — ``("execute", text)``,
        #: ``("exec", text, params)``, ``("begin",)``, ``("commit",)``,
        #: ``("abort",)``.  Replaying these serially on a fresh
        #: database reproduces P-nodes, firing order and WAL bytes.
        self.serial_log: list[tuple] = []
        self._writer = threading.Thread(
            target=self._drain, name="repro-serve-writer", daemon=True)
        self._writer.start()

    # ------------------------------------------------------------------
    # session lifecycle
    # ------------------------------------------------------------------

    def open_session(self) -> Session:
        """Open a new session (cheap; one dict entry)."""
        self._require_running()
        with self._session_lock:
            session = Session(self, next(self._session_ids))
            self._sessions[session.id] = session
        self.db.stats.bump("serve.sessions_opened")
        return session

    def close_session(self, session: Session) -> None:
        """Close a session, aborting its open transaction if any."""
        if session.closed:
            return
        if session.in_transaction and not self._stopped:
            try:
                self.abort(session)
            except (TransactionError, ServiceError):
                pass
        session.closed = True
        with self._session_lock:
            self._sessions.pop(session.id, None)
        self.db.stats.bump("serve.sessions_closed")

    def session(self, session_id: int) -> Session:
        """Look a session up by id (the socket front end's handle)."""
        with self._session_lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise SessionError(f"no open session {session_id}")
        return session

    def session_count(self) -> int:
        with self._session_lock:
            return len(self._sessions)

    # ------------------------------------------------------------------
    # dispatch: read path vs write queue
    # ------------------------------------------------------------------

    def execute(self, session: Session, text: str):
        """Execute one command for ``session``.

        A plain retrieve outside a transaction takes the concurrent
        read path; everything else — and *all* commands of the
        transaction owner, whose uncommitted state only the writer
        thread may see — is serialized through the write queue.
        """
        session._require_open()
        command = parse_command(text)
        if _is_plain_retrieve(command) and not session.in_transaction:
            return self._read(session,
                              lambda: self.db.execute_readonly(text))
        return self._submit(_WriteOp("execute", session, text))

    def query(self, session: Session, text: str):
        """Execute a retrieve on the snapshot-isolated read path."""
        session._require_open()
        if session.in_transaction:
            return self._submit(_WriteOp("execute", session, text))
        return self._read(session,
                          lambda: self.db.execute_readonly(text))

    def prepare(self, session: Session, name: str,
                text: str) -> tuple[str, ...]:
        """Prepare ``text`` under ``name`` in the session's namespace.

        Planning reads the catalog, so it is serialized through the
        write queue (racing a concurrent DDL would plan against a
        half-updated catalog); returns the parameter signature.
        """
        session._require_open()
        prepared = self._submit(_WriteOp("prepare", session,
                                         (name, text)))
        return prepared.signature

    def execute_prepared(self, session: Session, name: str,
                         params: dict | None = None):
        """Execute the session's prepared statement ``name``.

        Read-only statements run concurrently under the snapshot gate;
        mutating ones are serialized through the write queue.
        """
        session._require_open()
        prepared = session.prepared_statement(name)
        if prepared.read_only and not session.in_transaction:
            return self._read(
                session, lambda: prepared.execute_readonly(params))
        return self._submit(_WriteOp("exec", session, (name, params)))

    def begin(self, session: Session) -> None:
        session._require_open()
        self._submit(_WriteOp("begin", session, None))

    def commit(self, session: Session) -> None:
        session._require_open()
        self._submit(_WriteOp("commit", session, None))

    def abort(self, session: Session) -> None:
        session._require_open()
        self._submit(_WriteOp("abort", session, None))

    # ------------------------------------------------------------------

    def _read(self, session: Session, thunk):
        self._require_running()
        with self.gate.read():
            result = thunk()
        # EngineStats bumps are read-modify-write; reader threads must
        # not interleave them (the writer thread's bumps happen under
        # the exclusive gate, so they cannot race this lock's holders).
        with self._read_lock:
            session.reads += 1
            self.db.stats.bump("serve.reads")
        return result

    def _submit(self, op: _WriteOp):
        self._require_running()
        self._queue.put(op)
        try:
            return op.future.result(timeout=self.timeout)
        except TimeoutError:
            op.future.cancel()
            raise ServiceError(
                f"write queue did not serve the {op.kind!r} operation "
                f"within {self.timeout:.0f}s (a long-running "
                f"transaction may be holding the gate)") from None

    def _require_running(self) -> None:
        if self._stopped:
            raise ServiceError("service is shut down")

    # ------------------------------------------------------------------
    # the single consumer
    # ------------------------------------------------------------------

    def _drain(self) -> None:
        """The writer thread: one op at a time, in queue order, each
        under the exclusive side of the snapshot gate.

        While a transaction is open, ops from other sessions are
        deferred (in arrival order) rather than interleaved — the gate
        stays with the owner from ``begin`` to ``commit``/``abort``.
        """
        deferred: deque[_WriteOp] = deque()
        while True:
            if deferred and self._txn_owner is None:
                op = deferred.popleft()
            else:
                op = self._queue.get()
            if op is _STOP:
                break
            if self._txn_owner is not None \
                    and op.session is not self._txn_owner \
                    and op.kind != "begin":
                deferred.append(op)
                self.db.stats.bump("serve.deferred_ops")
                continue
            self._run_op(op)
        for op in deferred:
            self._fail(op, ServiceError("service is shut down"))
        while True:
            try:
                op = self._queue.get_nowait()
            except Empty:
                break
            if op is not _STOP:
                self._fail(op, ServiceError("service is shut down"))

    @staticmethod
    def _fail(op: _WriteOp, exc: Exception) -> None:
        if op.future.set_running_or_notify_cancel():
            op.future.set_exception(exc)

    def _run_op(self, op: _WriteOp) -> None:
        # Moving the future to RUNNING first means a timed-out caller's
        # cancel() can no longer race the result delivery below; a
        # False return means the caller already gave up — the op is
        # skipped entirely, never half-applied.
        if not op.future.set_running_or_notify_cancel():
            return
        try:
            result = self._apply(op)
        except BaseException as exc:
            op.future.set_exception(exc)
        else:
            op.future.set_result(result)

    def _apply(self, op: _WriteOp):
        """Run one write op against the engine, managing gate tenure.

        Outside a transaction the gate is held for exactly this op;
        ``begin`` keeps it until the matching ``commit``/``abort``.
        """
        owner = self._txn_owner
        if op.kind == "begin":
            if owner is not None:
                self.db.stats.bump("serve.txn_denied")
                whose = ("this session" if owner is op.session
                         else f"session {owner.id}")
                raise TransactionError(
                    f"transaction already open by {whose}")
            self.gate.acquire_write()
            try:
                self.db.begin()
            except BaseException:
                self.gate.release_write()
                raise
            self.serial_log.append(("begin",))
            self._txn_owner = op.session
            op.session.in_transaction = True
            return None
        holding = owner is op.session
        if not holding:
            self.gate.acquire_write()
        try:
            return self._apply_command(op)
        finally:
            still_open = self.db._in_transaction
            if self._txn_owner is op.session and not still_open:
                self._txn_owner = None
                op.session.in_transaction = False
                self.gate.release_write()
            elif not holding and self._txn_owner is not op.session:
                self.gate.release_write()

    def _apply_command(self, op: _WriteOp):
        db = self.db
        with self._read_lock:
            op.session.writes += 1
        db.stats.bump("serve.writes")
        if op.kind == "execute":
            self.serial_log.append(("execute", op.payload))
            return db.execute(op.payload)
        if op.kind == "exec":
            name, params = op.payload
            prepared = op.session.prepared_statement(name)
            self.serial_log.append(("exec", prepared.text,
                                    dict(params or {})))
            return prepared.execute_with(params)
        if op.kind == "prepare":
            name, text = op.payload
            prepared = db.prepare(text)
            op.session.prepared[name] = prepared
            return prepared
        if op.kind == "commit":
            self.serial_log.append(("commit",))
            db.commit()
            return None
        if op.kind == "abort":
            self.serial_log.append(("abort",))
            db.abort()
            return None
        raise ServiceError(f"unknown write operation {op.kind!r}")

    # ------------------------------------------------------------------
    # status and lifecycle
    # ------------------------------------------------------------------

    def status(self) -> dict:
        """A JSON-safe snapshot for the front end's status endpoint."""
        db = self.db
        with self._session_lock:
            sessions = len(self._sessions)
        owner = self._txn_owner
        return {
            "sessions": sessions,
            "transaction_owner": owner.id if owner else None,
            "queue_depth": self._queue.qsize(),
            "serial_log_entries": len(self.serial_log),
            "gate": self.gate.snapshot(),
            "firings": db.firings,
            "degraded": db.degraded,
            "wal": db.wal_info(),
            "stopped": self._stopped,
        }

    def serial_history(self) -> list[tuple]:
        """A copy of the committed write order (see
        :func:`replay_serial`)."""
        return list(self.serial_log)

    def shutdown(self, close_db: bool = False,
                 timeout: float = 10.0) -> None:
        """Stop accepting work, drain the writer thread, and fail any
        still-queued operations; idempotent."""
        if self._stopped:
            return
        self._stopped = True
        self._queue.put(_STOP)
        self._writer.join(timeout=timeout)
        if close_db and not self.db.closed:
            self.db.close()

    def __enter__(self) -> RuleService:
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def replay_serial(db: Database, history: list[tuple]) -> None:
    """Replay a service's :attr:`~RuleService.serial_log` on ``db``.

    This is the serial half of the concurrent-vs-serial equivalence
    property: a fresh database that replays the history must end with
    identical P-node contents, firing order and WAL bytes.  Errors of
    individual commands are swallowed exactly as the service surfaced
    them to one client without stopping the others.
    """
    from repro.errors import ArielError

    prepared_cache: dict[str, object] = {}
    for entry in history:
        try:
            if entry[0] == "execute":
                db.execute(entry[1])
            elif entry[0] == "exec":
                prepared = prepared_cache.get(entry[1])
                if prepared is None:
                    prepared = db.prepare(entry[1])
                    prepared_cache[entry[1]] = prepared
                prepared.execute_with(entry[2] or None)
            elif entry[0] == "begin":
                db.begin()
            elif entry[0] == "commit":
                db.commit()
            elif entry[0] == "abort":
                db.abort()
            else:
                raise ExecutionError(
                    f"unknown serial-log entry {entry[0]!r}")
        except ArielError:
            # the live run surfaced this to one client and carried on
            continue
