"""The JSON-lines wire protocol of the rule-evaluation front end.

One request per line, one response per line, UTF-8 JSON.  Requests
carry an ``op`` and its fields plus an optional client-chosen ``id``
echoed back in the response, so a client can pipeline:

.. code-block:: text

    -> {"id": 1, "op": "execute", "text": "append emp(name = \\"a\\")"}
    <- {"id": 1, "ok": true, "result": {"type": "dml", "count": 1}}
    -> {"id": 2, "op": "exec", "name": "by_id", "params": {"id": 7}}
    <- {"id": 2, "ok": true, "result": {"type": "rows", ...}}

Errors come back as ``{"ok": false, "error": {"kind": <exception
class>, "message": <str>}}`` — the kind is the ``repro.errors`` class
name, so clients can re-raise a faithful
:class:`~repro.serve.client.RemoteError`.

Floats round-trip through Python's JSON dialect (``NaN`` /
``Infinity`` literals included), matching the engine's exact-float
persistence.
"""

from __future__ import annotations

import json

from repro.executor.executor import DmlResult, ResultSet

#: protocol operations the server understands
OPS = ("ping", "session", "execute", "query", "prepare", "exec",
       "begin", "commit", "abort", "status", "close")

#: maximum request-line length (a framing-error guard, not a quota)
MAX_LINE = 4 * 1024 * 1024


def encode_message(payload: dict) -> bytes:
    """One wire line for ``payload`` (compact JSON + newline)."""
    return json.dumps(payload, separators=(",", ":"),
                      default=_encode_fallback).encode("utf-8") + b"\n"


def _encode_fallback(value):
    """JSON fallback for engine values (tuples become arrays via the
    default encoder; anything else is stringified rather than killing
    the connection)."""
    return str(value)


def decode_message(line: bytes) -> dict:
    """Parse one wire line; raises ``ValueError`` on malformed input."""
    payload = json.loads(line.decode("utf-8"))
    if not isinstance(payload, dict):
        raise ValueError("protocol messages must be JSON objects")
    return payload


def read_message(reader) -> dict | None:
    """Read one message from a binary file-like ``reader``; None at
    EOF.  Raises ``ValueError`` on oversized or malformed lines."""
    line = reader.readline(MAX_LINE + 1)
    if not line:
        return None
    if len(line) > MAX_LINE:
        raise ValueError("request line exceeds protocol maximum")
    if not line.strip():
        return {}
    return decode_message(line)


def encode_result(result) -> dict:
    """A JSON-safe rendering of an engine result value."""
    if isinstance(result, ResultSet):
        return {"type": "rows",
                "columns": list(result.columns),
                "rows": [list(row) for row in result.rows]}
    if isinstance(result, DmlResult):
        return {"type": "dml", "count": result.count}
    if isinstance(result, str):
        return {"type": "text", "text": result}
    if result is None:
        return {"type": "ok"}
    return {"type": "text", "text": str(result)}


def error_payload(exc: BaseException) -> dict:
    """The wire form of an exception (class name + message)."""
    return {"kind": type(exc).__name__, "message": str(exc)}
