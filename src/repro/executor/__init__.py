"""Query plan execution and DML application."""

from repro.executor.executor import (
    DirectHooks, ExecutionContext, Executor, MutationHooks, ResultSet)

__all__ = ["DirectHooks", "ExecutionContext", "Executor", "MutationHooks",
           "ResultSet"]
