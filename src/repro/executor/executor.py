"""The query plan executor.

Executes :class:`~repro.planner.plans.Plan` trees and applies DML
semantics on top of them:

* **retrieve** — project result columns off the qualifying bindings;
* **append** — evaluate the target expressions per qualifying binding and
  insert;
* **delete / replace** — materialise the qualifying target TIDs *first*,
  then apply (avoiding the Halloween problem of an update rescanning its
  own output), locating targets either by scan (ordinary commands) or via
  the TIDs carried in P-node entries (``delete'`` / ``replace'`` after
  query modification, paper section 5.1).

Every mutation is routed through :class:`MutationHooks`.  The plain
:class:`DirectHooks` applies straight to the heap; the transition manager
in ``repro.txn`` substitutes hooks that also generate rule-network tokens,
which is how "the Ariel rule system is tightly coupled with query and
update processing" (paper abstract).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Schema
from repro.errors import ExecutionError
from repro.lang import ast_nodes as ast
from repro.lang.expr import Bindings, compile_expr
from repro.planner.optimizer import Optimizer, PlannedCommand
from repro.storage.tuples import TupleId


class MutationHooks:
    """Interface through which all data mutations flow."""

    def insert(self, relation_name: str, values: tuple) -> TupleId:
        raise NotImplementedError

    def delete(self, relation_name: str, tid: TupleId) -> tuple:
        raise NotImplementedError

    def replace(self, relation_name: str, tid: TupleId,
                new_values: tuple) -> tuple:
        raise NotImplementedError


class DirectHooks(MutationHooks):
    """Mutations applied directly to heap relations (no rule system)."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    def insert(self, relation_name: str, values: tuple) -> TupleId:
        return self.catalog.relation(relation_name).insert(values)

    def delete(self, relation_name: str, tid: TupleId) -> tuple:
        return self.catalog.relation(relation_name).delete(tid)

    def replace(self, relation_name: str, tid: TupleId,
                new_values: tuple) -> tuple:
        return self.catalog.relation(relation_name).replace(tid,
                                                            new_values)


class ExecutionContext:
    """Runtime state a plan sees: the catalog plus mutation hooks."""

    def __init__(self, catalog: Catalog,
                 hooks: MutationHooks | None = None):
        self.catalog = catalog
        self.hooks = hooks or DirectHooks(catalog)


@dataclass
class ResultSet:
    """The outcome of a retrieve: column names and rows."""

    columns: tuple[str, ...]
    rows: list[tuple]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def column(self, name: str) -> list:
        """All values of one result column."""
        try:
            i = self.columns.index(name)
        except ValueError:
            raise ExecutionError(f"no result column {name!r}") from None
        return [row[i] for row in self.rows]

    def as_dicts(self) -> list[dict]:
        """Rows as name -> value dicts."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __str__(self) -> str:
        header = " | ".join(self.columns)
        lines = [header, "-" * len(header)]
        lines += [" | ".join(str(v) for v in row) for row in self.rows]
        return "\n".join(lines)


@dataclass
class DmlResult:
    """The outcome of an append/delete/replace: affected tuple count."""

    count: int


class Executor:
    """Runs planned DML commands against an execution context."""

    def __init__(self, context: ExecutionContext,
                 optimizer: Optimizer | None = None):
        self.context = context
        self.optimizer = optimizer or Optimizer(context.catalog)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def run(self, planned: PlannedCommand,
            params: dict[str, object] | None = None):
        command = planned.command
        if isinstance(command, ast.Retrieve):
            return self.run_retrieve(planned, params)
        if isinstance(command, ast.Append):
            return self.run_append(planned, params)
        if isinstance(command, ast.Delete):
            return self.run_delete(planned, params)
        if isinstance(command, ast.Replace):
            return self.run_replace(planned, params)
        raise ExecutionError(
            f"executor cannot run {type(command).__name__}")

    @staticmethod
    def _root(params: dict[str, object] | None) -> Bindings:
        """The root bindings of one execution: empty except for the
        prepared-statement parameter vector."""
        return Bindings(params=params) if params else Bindings()

    # ------------------------------------------------------------------
    # retrieve
    # ------------------------------------------------------------------

    def run_retrieve(self, planned: PlannedCommand,
                     params: dict[str, object] | None = None) -> ResultSet:
        command: ast.Retrieve = planned.command
        if any(_contains_aggregate(col.expr) for col in command.targets):
            return self._run_retrieve_aggregated(planned, command, params)
        columns = []
        evaluators = []
        for i, col in enumerate(command.targets):
            columns.append(self._result_name(col, i))
            evaluators.append(compile_expr(col.expr))
        sort_evaluators = [(compile_expr(k.expr), k.ascending)
                           for k in command.sort_keys]
        rows = []
        keyed = []
        for bound in planned.plan.rows(self.context, self._root(params),
                                       reuse=True):
            row = tuple(ev(bound) for ev in evaluators)
            if sort_evaluators:
                keyed.append((row, [ev(bound)
                                    for ev, _ in sort_evaluators]))
            else:
                rows.append(row)
        if sort_evaluators:
            # Stable multi-key sort: apply keys from least to most
            # significant; nulls sort last in either direction.
            for index in range(len(sort_evaluators) - 1, -1, -1):
                ascending = sort_evaluators[index][1]
                if ascending:
                    keyed.sort(key=lambda pair, i=index: (
                        pair[1][i] is None, pair[1][i]
                        if pair[1][i] is not None else 0))
                else:
                    keyed.sort(key=lambda pair, i=index: (
                        pair[1][i] is not None, pair[1][i]
                        if pair[1][i] is not None else 0), reverse=True)
            rows = [row for row, _ in keyed]
        if command.unique:
            seen = set()
            deduped = []
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    deduped.append(row)
            rows = deduped
        result = ResultSet(tuple(columns), rows)
        if command.into is not None:
            self._materialize_into(command.into, result)
        return result

    def _run_retrieve_aggregated(
            self, planned: PlannedCommand, command: ast.Retrieve,
            params: dict[str, object] | None = None) -> ResultSet:
        """Aggregated retrieve with POSTQUEL implicit grouping: the
        aggregate-free targets are the group keys."""
        columns = [self._result_name(col, i)
                   for i, col in enumerate(command.targets)]
        key_targets: list[tuple[int, object]] = []     # (pos, evaluator)
        agg_targets: list[tuple[int, object]] = []     # (pos, post-eval)
        aggregates: list[_Accumulator] = []
        for i, col in enumerate(command.targets):
            if _contains_aggregate(col.expr):
                agg_targets.append(
                    (i, _build_post_evaluator(col.expr, aggregates)))
            else:
                key_targets.append((i, compile_expr(col.expr)))

        groups: dict[tuple, list] = {}
        for bound in planned.plan.rows(self.context, self._root(params),
                                       reuse=True):
            key = tuple(ev(bound) for _, ev in key_targets)
            states = groups.get(key)
            if states is None:
                states = [acc.fresh() for acc in aggregates]
                groups[key] = states
            for acc, state in zip(aggregates, states):
                acc.update(state, bound)
        if not groups and not key_targets:
            # a global aggregate over no rows still yields one row
            groups[()] = [acc.fresh() for acc in aggregates]

        rows = []
        for key, states in groups.items():
            values = [acc.result(state)
                      for acc, state in zip(aggregates, states)]
            row = [None] * len(command.targets)
            for (pos, _), value in zip(key_targets, key):
                row[pos] = value
            for pos, post in agg_targets:
                row[pos] = post(values)
            rows.append(tuple(row))
        if command.unique:
            seen = set()
            rows = [r for r in rows
                    if r not in seen and not seen.add(r)]
        result = ResultSet(tuple(columns), rows)
        if command.into is not None:
            self._materialize_into(command.into, result)
        return result

    def _materialize_into(self, relation_name: str,
                          result: ResultSet) -> None:
        """Create the target relation of ``retrieve into`` and fill it."""
        columns = {}
        for i, name in enumerate(result.columns):
            sample = next((row[i] for row in result.rows
                           if row[i] is not None), None)
            columns[name] = _type_name_for(sample)
        schema = Schema.of(**columns)
        self.context.catalog.create_relation(relation_name, schema)
        notify = getattr(self.context.hooks, "relation_created", None)
        if notify is not None:
            notify(relation_name, schema)
        for row in result.rows:
            self.context.hooks.insert(relation_name, row)

    # ------------------------------------------------------------------
    # append
    # ------------------------------------------------------------------

    def run_append(self, planned: PlannedCommand,
                   params: dict[str, object] | None = None) -> DmlResult:
        command: ast.Append = planned.command
        relation = self.context.catalog.relation(command.relation)
        schema = relation.schema
        named = command.targets and command.targets[0].name is not None
        evaluators = [(col.name, compile_expr(col.expr))
                      for col in command.targets]
        new_tuples = []
        for bound in planned.plan.rows(self.context, self._root(params),
                                       reuse=True):
            if named:
                by_name = {name: ev(bound) for name, ev in evaluators}
                values = tuple(by_name.get(attr.name) for attr in schema)
            else:
                values = tuple(ev(bound) for _, ev in evaluators)
            new_tuples.append(values)
        for values in new_tuples:
            self.context.hooks.insert(command.relation, values)
        return DmlResult(len(new_tuples))

    # ------------------------------------------------------------------
    # delete / replace
    # ------------------------------------------------------------------

    def run_delete(self, planned: PlannedCommand,
                   params: dict[str, object] | None = None) -> DmlResult:
        command: ast.Delete = planned.command
        relation_name = self._target_relation(planned)
        tids = self._collect_target_tids(planned, command.target_var,
                                         params)
        relation = self.context.catalog.relation(relation_name)
        applied = 0
        for tid in tids:
            # A tuple may have vanished between qualification and apply
            # (another qualifying row deleted it, or a P-node entry went
            # stale); skip it silently, as the paper's delete' does.
            if relation.contains(tid):
                self.context.hooks.delete(relation_name, tid)
                applied += 1
        return DmlResult(applied)

    def run_replace(self, planned: PlannedCommand,
                    params: dict[str, object] | None = None) -> DmlResult:
        command: ast.Replace = planned.command
        relation_name = self._target_relation(planned)
        relation = self.context.catalog.relation(relation_name)
        schema = relation.schema
        evaluators = [(schema.position(col.name), compile_expr(col.expr))
                      for col in command.assignments]
        updates: list[tuple[TupleId, list[tuple[int, object]]]] = []
        seen: set[TupleId] = set()
        for bound in planned.plan.rows(self.context, self._root(params),
                                       reuse=True):
            tid = bound.tids.get(command.target_var)
            if tid is None:
                raise ExecutionError(
                    f"no TID bound for replace target "
                    f"{command.target_var!r}")
            if tid in seen:
                continue
            seen.add(tid)
            updates.append(
                (tid, [(pos, ev(bound)) for pos, ev in evaluators]))
        applied = 0
        for tid, assignments in updates:
            if not relation.contains(tid):
                continue
            old = list(relation.get(tid))
            for pos, value in assignments:
                old[pos] = value
            self.context.hooks.replace(relation_name, tid, tuple(old))
            applied += 1
        return DmlResult(applied)

    def _collect_target_tids(
            self, planned: PlannedCommand, target_var: str,
            params: dict[str, object] | None = None) -> list[TupleId]:
        tids: list[TupleId] = []
        seen: set[TupleId] = set()
        for bound in planned.plan.rows(self.context, self._root(params),
                                       reuse=True):
            tid = bound.tids.get(target_var)
            if tid is None:
                raise ExecutionError(
                    f"no TID bound for target variable {target_var!r}")
            if tid not in seen:
                seen.add(tid)
                tids.append(tid)
        return tids

    def _target_relation(self, planned: PlannedCommand) -> str:
        command = planned.command
        relation = planned.scope.get(command.target_var)
        if relation is None:
            raise ExecutionError(
                f"unresolved target variable {command.target_var!r}")
        return relation

    @staticmethod
    def _result_name(col: ast.ResultColumn, position: int) -> str:
        if col.name is not None:
            return col.name
        if isinstance(col.expr, ast.AttrRef):
            return col.expr.attr
        if isinstance(col.expr, ast.AggregateCall):
            return col.expr.func
        return f"column{position + 1}"


# ----------------------------------------------------------------------
# aggregation machinery
# ----------------------------------------------------------------------

def _contains_aggregate(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.AggregateCall):
        return True
    if isinstance(expr, ast.BinOp):
        return (_contains_aggregate(expr.left)
                or _contains_aggregate(expr.right))
    if isinstance(expr, ast.UnaryOp):
        return _contains_aggregate(expr.operand)
    return False


class _Accumulator:
    """State machine for one aggregate call.

    ``fresh()`` makes a per-group state list; ``update`` folds one input
    row in; ``result`` finalises.  Null inputs are skipped (SQL
    semantics); empty inputs yield None except for count, which yields 0.
    """

    def __init__(self, func: str, argument):
        self.func = func
        # count(var.all) counts rows; evaluator None marks that case
        self._evaluate = (None if isinstance(argument, ast.AllRef)
                          else compile_expr(argument))

    def fresh(self) -> list:
        return [0, None]          # [count, value]

    def update(self, state: list, bound: Bindings) -> None:
        if self._evaluate is None:
            state[0] += 1
            return
        value = self._evaluate(bound)
        if value is None:
            return
        state[0] += 1
        if self.func == "count":
            return
        if self.func in ("sum", "avg"):
            state[1] = value if state[1] is None else state[1] + value
        elif self.func == "min":
            if state[1] is None or value < state[1]:
                state[1] = value
        elif self.func == "max":
            if state[1] is None or value > state[1]:
                state[1] = value

    def result(self, state: list):
        if self.func == "count":
            return state[0]
        if self.func == "avg":
            if state[0] == 0:
                return None
            return state[1] / state[0]
        return state[1]


def _build_post_evaluator(expr: ast.Expr, aggregates: list[_Accumulator]):
    """Compile an aggregate-containing target into a closure over the
    list of finalised aggregate values (bare attribute references were
    rejected by semantic analysis)."""
    from repro.lang.expr import _ARITHMETIC, _COMPARATORS

    if isinstance(expr, ast.AggregateCall):
        index = len(aggregates)
        aggregates.append(_Accumulator(expr.func, expr.argument))
        return lambda values: values[index]
    if isinstance(expr, ast.Const):
        constant = expr.value
        return lambda values: constant
    if isinstance(expr, ast.UnaryOp):
        inner = _build_post_evaluator(expr.operand, aggregates)
        if expr.op == "-":
            return lambda values: (None if inner(values) is None
                                   else -inner(values))
        return lambda values: (None if inner(values) is None
                               else not inner(values))
    if isinstance(expr, ast.BinOp):
        left = _build_post_evaluator(expr.left, aggregates)
        right = _build_post_evaluator(expr.right, aggregates)
        op = _ARITHMETIC.get(expr.op) or _COMPARATORS.get(expr.op)
        if op is None:
            raise ExecutionError(
                f"operator {expr.op!r} not supported over aggregates")

        def combine(values):
            lhs = left(values)
            if lhs is None:
                return None
            rhs = right(values)
            if rhs is None:
                return None
            return op(lhs, rhs)
        return combine
    raise ExecutionError(
        f"cannot evaluate {type(expr).__name__} over aggregates")


def _type_name_for(sample) -> str:
    if isinstance(sample, bool):
        return "bool"
    if isinstance(sample, int):
        return "int4"
    if isinstance(sample, float):
        return "float8"
    return "text"
