"""Deterministic fault injection for durability testing.

A :class:`FaultRegistry` holds named *fault points* — places in the
engine that call :meth:`FaultRegistry.hit` before performing a fragile
operation.  Tests arm a point to make that operation fail in a chosen,
reproducible way:

* raise an :class:`OSError` a bounded number of times (exercises the
  WAL's retry-with-backoff path),
* raise :class:`SimulatedCrash` (models the process dying at exactly
  that instruction — recovery tests then reopen the durable files),
* write only a fraction of a WAL record before crashing (a *torn
  write*, exercises torn-tail truncation on reopen).

The registered points are:

===================  ====================================================
``wal.append``       before a WAL record's bytes are written
``wal.fsync``        before ``os.fsync`` on the WAL file
``checkpoint.rename``  before the atomic checkpoint rename
``txn.commit``       inside ``Database.commit`` before the durable flush
``rule.fire``        before a selected rule instantiation executes
===================  ====================================================

Every injected fault bumps the ``faults.injected`` counter on the
owning database's :class:`~repro.observe.EngineStats`, so ``\\stats``
shows how much havoc a test run wrought.

:class:`SimulatedCrash` deliberately subclasses :class:`BaseException`,
not :class:`Exception`: a crash must not be swallowed by the WAL's
``except OSError`` retry loop nor by any general error-recovery
``except Exception`` — it should unwind to the test harness exactly as
``kill -9`` would end the process.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: the fault points the engine exposes; arming any other name is an error
POINTS = frozenset({
    "wal.append", "wal.fsync", "checkpoint.rename", "txn.commit",
    "rule.fire",
})


class SimulatedCrash(BaseException):
    """The process "dies" here.

    BaseException so that no recovery path in the engine can catch it;
    the test harness catches it at top level and then exercises
    recovery against the on-disk state left behind.
    """


@dataclass
class _Arming:
    error: BaseException | None = None
    times: int = 1
    after: int = 0
    crash: bool = False
    torn: float | None = None
    hits: int = 0          # times this point was reached while armed
    injected: int = 0      # times a fault actually fired


@dataclass
class FaultRegistry:
    """Armed fault points for one database instance."""

    stats: object = None
    _armed: dict[str, _Arming] = field(default_factory=dict)

    def arm(self, point: str, *, error: BaseException | None = None,
            times: int = 1, after: int = 0, crash: bool = False,
            torn: float | None = None) -> None:
        """Arm ``point`` to misbehave.

        ``after`` hits pass through cleanly first; then either ``crash``
        (raise :class:`SimulatedCrash`; with ``torn`` set on
        ``wal.append``, write that fraction of the record first) or
        raise ``error`` (default ``OSError``) on the next ``times``
        hits, after which the point behaves normally again.
        """
        if point not in POINTS:
            raise ValueError(f"unknown fault point {point!r}; "
                             f"known: {sorted(POINTS)}")
        if torn is not None and point != "wal.append":
            raise ValueError("torn writes only apply to 'wal.append'")
        if torn is not None and not crash:
            raise ValueError("torn writes require crash=True")
        self._armed[point] = _Arming(error=error, times=times, after=after,
                                     crash=crash, torn=torn)

    def disarm(self, point: str | None = None) -> None:
        """Disarm ``point``, or every point when ``point`` is None."""
        if point is None:
            self._armed.clear()
        else:
            self._armed.pop(point, None)

    def armed(self, point: str) -> bool:
        return point in self._armed

    # ------------------------------------------------------------------
    # engine-side API

    def hit(self, point: str) -> None:
        """Called by the engine as it reaches ``point``; may raise."""
        arming = self._armed.get(point)
        if arming is None:
            return
        arming.hits += 1
        if arming.hits <= arming.after:
            return
        if not arming.crash and arming.injected >= arming.times:
            return
        arming.injected += 1
        self._bump()
        if arming.crash:
            raise SimulatedCrash(f"simulated crash at {point}")
        if arming.error is not None:
            raise arming.error
        raise OSError(f"injected fault at {point}")

    def torn_fraction(self, point: str = "wal.append") -> float | None:
        """The partial-write fraction if ``point`` is armed for a torn
        write whose trigger is due on the *next* hit, else None.

        The WAL calls this just before writing a record; a non-None
        answer means "write this fraction of the bytes, flush, then
        call :meth:`hit` to crash".
        """
        arming = self._armed.get(point)
        if arming is None or arming.torn is None:
            return None
        if arming.hits < arming.after:
            return None
        return arming.torn

    def injected_count(self, point: str | None = None) -> int:
        """Faults actually injected (at ``point``, or overall)."""
        if point is not None:
            arming = self._armed.get(point)
            return arming.injected if arming else 0
        return sum(a.injected for a in self._armed.values())

    def _bump(self) -> None:
        stats = self.stats
        if stats is not None:
            stats.bump("faults.injected")
