"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` requires wheel for PEP 517 editable builds; offline
environments can instead run ``python setup.py develop``.  All project
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
