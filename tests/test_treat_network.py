"""Network-level tests: virtual α-memories, storage accounting, the
selection-index routing, and dynamic flushing."""

from repro import Database
from repro.core.alpha import VirtualAlphaMemory


def make_db(policy="always", network="a-treat"):
    db = Database(network=network, virtual_policy=policy)
    db.execute_script("""
        create emp (name = text, sal = float8, dno = int4)
        create dept (dno = int4, name = text)
        create log (name = text)
    """)
    for i in range(30):
        db.execute(f'append emp(name="e{i}", sal={1000.0 * i}, '
                   f'dno={i % 3})')
    for d in range(3):
        db.execute(f'append dept(dno={d}, name="d{d}")')
    return db


JOIN_RULE = ('define rule big if emp.sal > 5000 and emp.dno = dept.dno '
             'and dept.name = "d1" then append to log(emp.name)')


class TestVirtualMemories:
    def test_always_policy_uses_virtual(self):
        db = make_db("always")
        db._rules_suspended = True
        db.execute(JOIN_RULE)
        assert db.network.memory("big", "emp").is_virtual
        assert db.network.memory("big", "dept").is_virtual

    def test_never_policy_uses_stored(self):
        db = make_db("never")
        db._rules_suspended = True
        db.execute(JOIN_RULE)
        assert not db.network.memory("big", "emp").is_virtual

    def test_auto_policy_picks_by_selectivity(self):
        db = make_db("auto")
        db._rules_suspended = True
        # emp.sal > 5000 keeps 24/30 = 80% -> virtual;
        # dept.name = "d1" keeps 1/3 but dept has < 10 rows -> stored
        db.execute(JOIN_RULE)
        assert db.network.memory("big", "emp").is_virtual
        assert not db.network.memory("big", "dept").is_virtual

    def test_virtual_saves_storage(self):
        stored = make_db("never")
        stored._rules_suspended = True
        stored.execute(JOIN_RULE)
        virtual = make_db("always")
        virtual._rules_suspended = True
        virtual.execute(JOIN_RULE)
        assert stored.network.memory_entry_count("big") > 0
        assert virtual.network.memory_entry_count("big") == 0

    def test_same_matches_either_way(self):
        results = []
        for policy in ("always", "never"):
            db = make_db(policy)
            db._rules_suspended = True
            db.execute(JOIN_RULE)
            pnode = db.network.pnode("big")
            results.append(sorted(
                m.entry("emp").values[0] for m in pnode.matches()))
        assert results[0] == results[1]
        assert results[0]       # non-empty: e7, e10, ... with dno 1

    def test_virtual_join_uses_index_when_available(self):
        db = make_db("always")
        db.execute("define index empdno on emp (dno) using hash")
        db._rules_suspended = True
        db.execute(JOIN_RULE)
        # trigger a token that joins dept -> emp through the virtual node
        db.execute('append dept(dno=1, name="d1")')
        memory = db.network.memory("big", "emp")
        assert isinstance(memory, VirtualAlphaMemory)
        assert memory.scan_count >= 1

    def test_callable_policy(self):
        calls = []

        def policy(spec):
            calls.append(spec.var)
            return spec.var == "emp"

        db = make_db(policy)
        db._rules_suspended = True
        db.execute(JOIN_RULE)
        assert db.network.memory("big", "emp").is_virtual
        assert not db.network.memory("big", "dept").is_virtual
        assert set(calls) == {"emp", "dept"}


class TestTokenRouting:
    def test_tokens_counted(self):
        db = make_db()
        before = db.network.tokens_processed
        db.execute('append emp(name="x", sal=1.0, dno=0)')
        assert db.network.tokens_processed == before + 1

    def test_replace_generates_two_tokens(self):
        db = make_db()
        before = db.network.tokens_processed
        db.execute('replace emp (sal = 99.0) where emp.name = "e0"')
        assert db.network.tokens_processed == before + 2   # − then Δ+

    def test_noop_replace_generates_no_tokens(self):
        db = make_db()
        db.execute('replace emp (sal = 123.0) where emp.name = "e0"')
        before = db.network.tokens_processed
        db.execute('replace emp (sal = 123.0) where emp.name = "e0"')
        assert db.network.tokens_processed == before

    def test_rules_on_other_relations_not_probed(self):
        db = make_db()
        db._rules_suspended = True
        db.execute(JOIN_RULE)
        # selection index: dept tokens only probe dept predicates
        probe = db.manager.network.selection_index.probe
        assert probe("log", ("x",)) == []


class TestDynamicFlush:
    def test_event_memory_flushed_after_transition(self):
        db = make_db()
        db.execute("define rule ev on append emp if emp.sal >= 0 "
                   "then append to log(emp.name)")
        db.execute('append emp(name="x", sal=1.0, dno=0)')
        memory = db.network.memory("ev", "emp")
        assert len(memory) == 0      # flushed after the cycle
        assert len(db.network.pnode("ev")) == 0

    def test_pattern_memory_not_flushed(self):
        db = make_db("never")
        db._rules_suspended = True
        db.execute(JOIN_RULE)
        before = db.network.memory_entry_count("big")
        db.network.flush_dynamic()
        assert db.network.memory_entry_count("big") == before


class TestReteSpecifics:
    def test_beta_entries_exist(self):
        db = make_db(network="rete", policy="never")
        db._rules_suspended = True
        db.execute(JOIN_RULE)
        assert db.network.beta_entry_count("big") > 0

    def test_beta_cleaned_on_delete(self):
        db = make_db(network="rete", policy="never")
        db._rules_suspended = True
        db.execute(JOIN_RULE)
        before = db.network.beta_entry_count("big")
        db.execute("delete emp where emp.sal > 5000")
        assert db.network.beta_entry_count("big") < before

    def test_rete_default_is_stored(self):
        db = make_db(network="rete", policy="never")
        db._rules_suspended = True
        db.execute(JOIN_RULE)
        assert not db.network.memory("big", "emp").is_virtual

    def test_rete_supports_virtual_alphas(self):
        """The paper: the virtual-memory technique 'could also be used in
        the Rete algorithm'."""
        db = make_db(network="rete", policy="always")
        db._rules_suspended = True
        db.execute(JOIN_RULE)
        assert db.network.memory("big", "emp").is_virtual
        # the β chain is still materialised from the virtual α contents
        assert db.network.beta_entry_count("big") > 0
        assert db.network.memory_entry_count("big") == 0

    def test_rete_virtual_matches_stored(self):
        results = []
        for policy in ("always", "never"):
            db = make_db(policy, network="rete")
            db._rules_suspended = True
            db.execute(JOIN_RULE)
            pnode = db.network.pnode("big")
            results.append(sorted(
                m.entry("emp").values[0] for m in pnode.matches()))
        assert results[0] == results[1] and results[0]
