"""Scale stress: many rules, larger relations, mixed workload — the
incremental network must agree with naive recomputation throughout."""

import random

import pytest

from repro import Database
from repro.lang.expr import Bindings, compile_expr, is_true


def naive_matches(db, rule_name):
    """Recompute a pattern rule's matches from scratch, directly."""
    rule = db.network.rules[rule_name]
    relations = {var: list(db.catalog.relation(rel).scan())
                 for var, rel in rule.var_relations.items()}
    variables = rule.variables
    condition = compile_expr(rule.condition) if rule.condition else None

    def recurse(i, bound):
        if i == len(variables):
            yield tuple((bound[v].tid.relation, bound[v].tid.slot)
                        for v in variables)
            return
        var = variables[i]
        for stored in relations[var]:
            bound[var] = stored
            bindings = Bindings({v: s.values for v, s in bound.items()})
            # evaluate only when fully bound (cheap enough at this size)
            if i + 1 == len(variables):
                if condition is None or is_true(condition(bindings)):
                    yield tuple(
                        (bound[v].tid.relation, bound[v].tid.slot)
                        for v in variables)
            else:
                yield from recurse(i + 1, bound)
        bound.pop(var, None)

    return sorted(recurse(0, {}))


def network_matches(db, rule_name):
    rule = db.network.rules[rule_name]
    return sorted(
        tuple((match.entry(v).tid.relation, match.entry(v).tid.slot)
              for v in rule.variables)
        for match in db.network.pnode(rule_name).matches())


@pytest.mark.parametrize("network,policy", [
    ("a-treat", "auto"), ("a-treat", "always"), ("rete", "never")])
def test_incremental_equals_naive_at_scale(network, policy):
    rng = random.Random(1992)
    db = Database(network=network, virtual_policy=policy)
    db._rules_suspended = True     # accumulate matches, don't fire
    db.execute("create emp (sal = float8, dno = int4, k = int4)")
    db.execute("create dept (dno = int4, size = int4)")
    db.execute("define index empdno on emp (dno) using hash")

    # 40 single-variable rules with shifted ranges + 10 join rules
    for i in range(40):
        low, high = i * 50, i * 50 + 120
        db.execute(f"define rule s{i} if {low} < emp.sal "
                   f"and emp.sal <= {high} "
                   f"then append to dept(dno = 0, size = 0)")
    for i in range(10):
        db.execute(f"define rule j{i} if emp.sal > {i * 200} "
                   f"and emp.dno = dept.dno and dept.size > {i % 4} "
                   f"then append to dept(dno = 0, size = 0)")

    live = []
    for step in range(600):
        action = rng.random()
        if action < 0.5 or not live:
            sal = rng.uniform(0, 2100)
            dno = rng.randrange(12)
            tid = db.hooks.insert("emp", (sal, dno, step))
            live.append(tid)
        elif action < 0.8:
            tid = live[rng.randrange(len(live))]
            sal = rng.uniform(0, 2100)
            dno = rng.randrange(12)
            db.hooks.replace("emp", tid, (sal, dno, step))
        else:
            tid = live.pop(rng.randrange(len(live)))
            db.hooks.delete("emp", tid)
        if step % 100 == 0:
            db.hooks.insert("dept", (rng.randrange(12),
                                     rng.randrange(6)))
        db.deltasets.clear()

    checked = 0
    for name in list(db.network.rules):
        assert network_matches(db, name) == naive_matches(db, name), name
        checked += 1
    assert checked == 50


def test_large_single_transition_block():
    """One giant do…end block: Δ-sets must net out correctly."""
    db = Database()
    db.execute("create t (a = int4, k = int4)")
    db.execute("create log (k = int4)")
    db.execute("define rule watch on replace t(a) "
               "then append to log(k = t.k)")
    for k in range(50):
        db.execute(f"append t(a = 0, k = {k})")
    # modify every tuple 3 times inside one block; half net out to the
    # original value (no event), half don't
    body = []
    for k in range(50):
        body.append(f"replace t (a = 1) where t.k = {k}")
        body.append(f"replace t (a = 2) where t.k = {k}")
        final = 0 if k % 2 == 0 else 3
        body.append(f"replace t (a = {final}) where t.k = {k}")
    db.execute("do " + " ".join(body) + " end")
    logged = sorted(v[0] for v in db.relation_rows("log"))
    assert logged == [k for k in range(50) if k % 2 == 1]
