"""Tests for the top-level selection predicate index."""

import pytest

from repro.core.selection_index import LinearIntervalIndex, SelectionIndex
from repro.intervals.ibstree import IBSTree
from repro.intervals.interval import Interval
from repro.intervals.skiplist import IntervalSkipList
from repro.lang.predicates import AttrInterval


class _FakeMemory:
    """Stand-in target with the attributes probe() sorting needs."""

    def __init__(self, name):
        self.rule_name = name

    def __repr__(self):
        return f"<mem {self.rule_name}>"


def anchor(attr, position, interval):
    return AttrInterval(attr, position, interval)


class TestSelectionIndex:
    def test_anchored_probe(self):
        index = SelectionIndex()
        low = _FakeMemory("low")
        high = _FakeMemory("high")
        index.add("emp", anchor("sal", 2, Interval.at_most(1000)), low)
        index.add("emp", anchor("sal", 2,
                                Interval.at_least(5000, closed=False)),
                  high)
        assert index.probe("emp", ("Ann", 30, 500)) == [low]
        assert index.probe("emp", ("Ann", 30, 9000)) == [high]
        assert index.probe("emp", ("Ann", 30, 3000)) == []

    def test_multiple_attributes(self):
        index = SelectionIndex()
        by_sal = _FakeMemory("sal")
        by_age = _FakeMemory("age")
        index.add("emp", anchor("sal", 2, Interval.at_least(1000)), by_sal)
        index.add("emp", anchor("age", 1, Interval.point(30)), by_age)
        got = index.probe("emp", ("Ann", 30, 2000))
        assert set(got) == {by_sal, by_age}

    def test_unanchored_always_candidates(self):
        index = SelectionIndex()
        residual = _FakeMemory("resid")
        index.add("emp", None, residual)
        assert index.probe("emp", ("Ann", 30, 0)) == [residual]

    def test_relations_are_separate(self):
        index = SelectionIndex()
        memory = _FakeMemory("m")
        index.add("emp", anchor("sal", 0, Interval.at_least(0)), memory)
        assert index.probe("dept", (100,)) == []

    def test_null_value_never_matches_anchor(self):
        index = SelectionIndex()
        memory = _FakeMemory("m")
        index.add("emp", anchor("sal", 0,
                                Interval.everything()), memory)
        assert index.probe("emp", (None,)) == []

    def test_null_still_reaches_unanchored(self):
        index = SelectionIndex()
        memory = _FakeMemory("m")
        index.add("emp", None, memory)
        assert index.probe("emp", (None,)) == [memory]

    def test_remove_anchored(self):
        index = SelectionIndex()
        memory = _FakeMemory("m")
        index.add("emp", anchor("sal", 0, Interval.at_least(0)), memory)
        index.remove(memory)
        assert index.probe("emp", (5,)) == []
        assert len(index) == 0

    def test_remove_unanchored(self):
        index = SelectionIndex()
        memory = _FakeMemory("m")
        index.add("emp", None, memory)
        index.remove(memory)
        assert index.probe("emp", (5,)) == []

    def test_remove_unregistered(self):
        with pytest.raises(ValueError):
            SelectionIndex().remove(_FakeMemory("m"))

    def test_double_add_rejected(self):
        index = SelectionIndex()
        memory = _FakeMemory("m")
        index.add("emp", None, memory)
        with pytest.raises(ValueError):
            index.add("emp", None, memory)

    def test_identical_intervals_different_targets(self):
        index = SelectionIndex()
        a, b = _FakeMemory("a"), _FakeMemory("b")
        iv = Interval(10, 20)
        index.add("emp", anchor("sal", 0, iv), a)
        index.add("emp", anchor("sal", 0, iv), b)
        assert set(index.probe("emp", (15,))) == {a, b}
        index.remove(a)
        assert index.probe("emp", (15,)) == [b]

    def test_counts(self):
        index = SelectionIndex()
        index.add("emp", anchor("sal", 0, Interval.at_least(0)),
                  _FakeMemory("a"))
        index.add("emp", None, _FakeMemory("b"))
        assert index.anchored_count() == 1
        assert index.unanchored_count() == 1
        assert len(index) == 2

    @pytest.mark.parametrize("factory", [
        IntervalSkipList, IBSTree, LinearIntervalIndex])
    def test_pluggable_interval_index(self, factory):
        index = SelectionIndex(index_factory=factory)
        memories = [_FakeMemory(f"r{i}") for i in range(20)]
        for i, memory in enumerate(memories):
            index.add("emp",
                      anchor("sal", 0, Interval(i * 10, i * 10 + 15)),
                      memory)
        got = set(index.probe("emp", (12,)))
        assert got == {memories[0], memories[1]}

    def test_paper_benchmark_shape(self):
        """Shifted C1 < sal <= C2 predicates: each probe hits one rule."""
        index = SelectionIndex()
        memories = []
        for i in range(200):
            memory = _FakeMemory(f"rule{i}")
            memories.append(memory)
            index.add("emp", anchor(
                "sal", 0,
                Interval(1000 * i, 1000 * i + 500,
                         low_closed=False, high_closed=True)), memory)
        assert index.probe("emp", (250.0,)) == [memories[0]]
        assert index.probe("emp", (150250.0,)) == [memories[150]]
        assert index.probe("emp", (150750.0,)) == []


class TestLinearIntervalIndex:
    def test_matches_skiplist(self):
        linear = LinearIntervalIndex()
        skip = IntervalSkipList(seed=5)
        ivs = [Interval(i % 7, i % 7 + i % 5 + 1, payload=i)
               for i in range(30)]
        for iv in ivs:
            linear.insert(iv)
            skip.insert(iv)
        for probe in range(0, 13):
            assert linear.stab(probe) == skip.stab(probe)

    def test_duplicate_rejected(self):
        linear = LinearIntervalIndex()
        linear.insert(Interval(0, 1))
        with pytest.raises(ValueError):
            linear.insert(Interval(0, 1))

    def test_remove(self):
        linear = LinearIntervalIndex()
        iv = Interval(0, 10, payload="x")
        linear.insert(iv)
        linear.remove(iv)
        assert linear.stab(5) == set()
        assert len(linear) == 0
