"""End-to-end Figure 5: every token kind against every α-memory kind.

The unit tests in test_alpha.py cover the dispatch function; these tests
drive each combination through the *whole* stack — real commands
generating real tokens against rules whose variables have each gating —
and assert the resulting memory and P-node state.  Scenarios marked
"don't care" in the paper's table assert that nothing happens.
"""

import pytest

from repro import Database


def db_with_rule(condition_clause, multi_var=False):
    """A database with one rule whose t-variable has the given gating.

    With ``multi_var`` the rule joins a second relation so the t memory
    is a real (non-simple) α-memory; the u relation holds one matching
    row so joins succeed.
    """
    db = Database(virtual_policy="never")
    db.execute("create t (a = int4, k = int4)")
    db.execute("create u (k = int4)")
    db.execute("create log (a = int4)")
    db.execute("append u(k = 1)")
    join = " and t.k = u.k" if multi_var else ""
    db.execute(f"define rule r {condition_clause}{join} "
               f"then append to log(a = t.a)")
    db._rules_suspended = True
    return db


def memory_len(db):
    return len(db.network.memory("r", "t"))


def pnode_len(db):
    return len(db.network.pnode("r"))


# token generators: each returns the db after one physical operation of
# the right shape (all in one transition where it matters)

def send_plus(db):                  # + (append)
    db.execute("append t(a = 10, k = 1)")


def send_minus_plain_and_delta_plus(db):
    """modify of a pre-existing tuple: −(no event) then Δ+(replace)."""
    db._rules_suspended = False
    db.execute("deactivate rule r")
    db.execute("append t(a = 10, k = 1)")
    db.execute("activate rule r")
    db._rules_suspended = True
    db.execute("replace t (a = 20)")


def send_delta_minus(db):
    """two modifies in ONE transition: −, Δ+, then Δ−, Δ+."""
    db._rules_suspended = False
    db.execute("deactivate rule r")
    db.execute("append t(a = 10, k = 1)")
    db.execute("activate rule r")
    db._rules_suspended = True
    db.execute("do replace t (a = 20) replace t (a = 30) end")


def send_minus_delete(db):          # − (delete)
    db._rules_suspended = False
    db.execute("deactivate rule r")
    db.execute("append t(a = 10, k = 1)")
    db.execute("activate rule r")
    db._rules_suspended = True
    db.execute("delete t")


class TestPatternMemory:
    """stored-α row: + insert, − delete, Δ+ insert newt, Δ− delete."""

    COND = "if t.a > 5"

    def test_plus_inserts(self):
        db = db_with_rule(self.COND, multi_var=True)
        send_plus(db)
        assert memory_len(db) == 1
        assert pnode_len(db) == 1

    def test_delta_plus_inserts_new_value(self):
        db = db_with_rule(self.COND, multi_var=True)
        send_minus_plain_and_delta_plus(db)
        memory = db.network.memory("r", "t")
        [entry] = list(memory.entries())
        assert entry.values[0] == 20
        assert entry.old_values is None        # pattern stores no pair

    def test_delta_minus_then_plus_swaps(self):
        db = db_with_rule(self.COND, multi_var=True)
        send_delta_minus(db)
        [entry] = list(db.network.memory("r", "t").entries())
        assert entry.values[0] == 30
        assert pnode_len(db) == 1

    def test_minus_delete_removes(self):
        db = db_with_rule(self.COND, multi_var=True)
        send_minus_delete(db)
        assert memory_len(db) == 0
        assert pnode_len(db) == 0


class TestTransitionMemory:
    """dynamic-trans-α row: only Δ tokens matter."""

    COND = "if t.a > previous t.a"

    def test_plus_is_dont_care(self):
        db = db_with_rule(self.COND, multi_var=True)
        send_plus(db)
        assert memory_len(db) == 0
        assert pnode_len(db) == 0

    def test_delta_plus_inserts_pair(self):
        db = db_with_rule(self.COND, multi_var=True)
        send_minus_plain_and_delta_plus(db)
        [entry] = list(db.network.memory("r", "t").entries())
        assert entry.values[0] == 20
        assert entry.old_values[0] == 10
        assert pnode_len(db) == 1

    def test_delta_minus_retracts_then_delta_plus_rebinds(self):
        db = db_with_rule(self.COND, multi_var=True)
        send_delta_minus(db)
        [entry] = list(db.network.memory("r", "t").entries())
        assert entry.values[0] == 30
        assert entry.old_values[0] == 10      # old half = transition start

    def test_case4_modify_then_delete_retracts(self):
        """modify + delete in one transition: Δ+ binds, then the case-4
        Δ− retracts — no flush involved."""
        db = db_with_rule(self.COND, multi_var=True)
        db._rules_suspended = False
        db.execute("deactivate rule r")
        db.execute("append t(a = 10, k = 1)")
        db.execute("activate rule r")
        db._rules_suspended = True
        db.execute("do replace t (a = 20) delete t end")
        assert memory_len(db) == 0
        assert pnode_len(db) == 0

    def test_binding_broken_by_end_of_transition_flush(self):
        """Across transitions the binding is broken by the dynamic
        flush ('they only retain their contents during the current
        transition', paper §4.3.2)."""
        db = db_with_rule(self.COND, multi_var=True)
        send_minus_plain_and_delta_plus(db)
        assert pnode_len(db) == 1
        # firing is suspended in this fixture, so emulate the end of
        # rule processing the cycle would have performed
        db.manager.end_of_rule_processing()
        assert memory_len(db) == 0
        assert pnode_len(db) == 0


class TestOnAppendMemory:
    COND = "on append t if t.a > 5"

    def test_plus_append_inserts(self):
        db = db_with_rule(self.COND, multi_var=True)
        send_plus(db)
        assert memory_len(db) == 1
        assert pnode_len(db) == 1

    def test_delta_tokens_ignored(self):
        db = db_with_rule(self.COND, multi_var=True)
        send_minus_plain_and_delta_plus(db)
        assert memory_len(db) == 0
        assert pnode_len(db) == 0

    def test_case2_retraction(self):
        """append then delete in one block: the insert − retracts."""
        db = db_with_rule(self.COND, multi_var=True)
        db.execute("do append t(a = 10, k = 1) "
                   "delete t where t.a = 10 end")
        assert memory_len(db) == 0
        assert pnode_len(db) == 0


class TestOnDeleteMemory:
    COND = "on delete t if t.a > 5"

    def test_minus_delete_asserts(self):
        db = db_with_rule(self.COND, multi_var=True)
        send_minus_delete(db)
        assert memory_len(db) == 1
        assert pnode_len(db) == 1

    def test_plus_ignored(self):
        db = db_with_rule(self.COND, multi_var=True)
        send_plus(db)
        assert memory_len(db) == 0

    def test_case2_insert_minus_does_not_assert(self):
        db = db_with_rule(self.COND, multi_var=True)
        db.execute("do append t(a = 10, k = 1) "
                   "delete t where t.a = 10 end")
        assert memory_len(db) == 0
        assert pnode_len(db) == 0


class TestOnReplaceMemory:
    COND = "on replace t(a) if t.a > 5"

    def test_delta_plus_matching_attr_inserts(self):
        db = db_with_rule(self.COND, multi_var=True)
        send_minus_plain_and_delta_plus(db)
        [entry] = list(db.network.memory("r", "t").entries())
        assert entry.values[0] == 20
        assert entry.old_values[0] == 10       # pair kept for previous
        assert pnode_len(db) == 1

    def test_delta_plus_other_attr_ignored(self):
        db = db_with_rule("on replace t(k) if t.a > 5", multi_var=True)
        send_minus_plain_and_delta_plus(db)    # modifies attribute a
        assert memory_len(db) == 0

    def test_plus_ignored(self):
        db = db_with_rule(self.COND, multi_var=True)
        send_plus(db)
        assert memory_len(db) == 0

    def test_case4_retracts(self):
        db = db_with_rule(self.COND, multi_var=True)
        send_minus_plain_and_delta_plus(db)
        assert pnode_len(db) == 1
        db.execute("delete t")
        assert memory_len(db) == 0
        assert pnode_len(db) == 0


class TestSimpleMemories:
    """simple / simple-on / simple-trans rows: memory stays empty and
    matches pass straight to the P-node."""

    @pytest.mark.parametrize("condition,trigger,expect", [
        ("if t.a > 5", send_plus, 1),
        ("on append t if t.a > 5", send_plus, 1),
        ("if t.a > previous t.a", send_minus_plain_and_delta_plus, 1),
        ("on delete t if t.a > 5", send_minus_delete, 1),
    ])
    def test_simple_memory_stays_empty(self, condition, trigger, expect):
        db = db_with_rule(condition, multi_var=False)
        trigger(db)
        assert memory_len(db) == 0       # simple-α stores nothing
        assert pnode_len(db) == expect

    def test_simple_retraction_clears_pnode(self):
        db = db_with_rule("if t.a > 5", multi_var=False)
        send_plus(db)
        assert pnode_len(db) == 1
        db.execute("delete t")
        assert pnode_len(db) == 0
