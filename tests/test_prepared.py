"""Prepared statements: parameter signatures, parameterized access
paths, catalog-version invalidation, the transparent statement cache,
and ad-hoc/prepared equivalence (including rule firings)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database
from repro.errors import ExecutionError, SemanticError
from repro.prepared import StatementCache


def small_db(cache_size: int = 128) -> Database:
    db = Database(statement_cache_size=cache_size)
    db.execute("create emp (id = int4, name = text, sal = float8)")
    for i in range(10):
        db.execute(f'append emp(id = {i}, name = "e{i}", '
                   f'sal = {1000.0 * i})')
    return db


class TestSignatures:
    def test_named_signature_in_first_appearance_order(self):
        db = small_db()
        p = db.prepare("retrieve (emp.name) "
                       "where emp.sal > $lo and emp.sal < $hi "
                       "and emp.id != $lo")
        assert p.signature == ("lo", "hi")

    def test_positional_signature(self):
        db = small_db()
        p = db.prepare("retrieve (emp.name) where emp.id = $1")
        assert p.signature == ("1",)
        assert [r for r in p.execute_with({"1": 3}).rows] == [("e3",)]

    def test_no_parameters(self):
        db = small_db()
        p = db.prepare("retrieve (emp.name) where emp.id = 2")
        assert p.signature == ()
        assert p.execute().rows == [("e2",)]

    def test_missing_parameter_rejected(self):
        db = small_db()
        p = db.prepare("retrieve (emp.name) where emp.id = $id")
        with pytest.raises(ExecutionError, match=r"missing value.*\$id"):
            p.execute()

    def test_unknown_parameter_rejected(self):
        db = small_db()
        p = db.prepare("retrieve (emp.name) where emp.id = $id")
        with pytest.raises(ExecutionError,
                           match=r"unknown parameter.*\$bogus"):
            p.execute(id=1, bogus=2)

    def test_ddl_not_preparable(self):
        db = small_db()
        with pytest.raises(ExecutionError, match="cannot prepare"):
            db.prepare("create t (a = int4)")

    def test_retrieve_into_not_preparable(self):
        db = small_db()
        with pytest.raises(ExecutionError, match="cannot prepare"):
            db.prepare("retrieve into t (emp.name)")

    def test_rule_definitions_reject_parameters(self):
        db = small_db()
        with pytest.raises(SemanticError,
                           match=r"\$floor is not allowed in a rule"):
            db.execute("define rule r if emp.sal > $floor "
                       "then delete emp")

    def test_repr_shows_signature(self):
        db = small_db()
        p = db.prepare("retrieve (emp.name) where emp.id = $id")
        assert "$id" in repr(p)


class TestParameterizedPlans:
    def test_equality_param_uses_hash_index(self):
        db = small_db()
        db.execute("define index emp_id on emp (id) using hash")
        p = db.prepare("retrieve (emp.name) where emp.id = $id")
        assert "IndexProbe" in p.explain()
        assert "$id" in p.explain()
        assert p.execute(id=4).rows == [("e4",)]
        assert p.execute(id=7).rows == [("e7",)]
        assert p.execute(id=99).rows == []

    def test_range_params_use_btree_index(self):
        db = small_db()
        db.execute("define index emp_sal on emp (sal)")
        p = db.prepare("retrieve (emp.name) "
                       "where emp.sal >= $lo and emp.sal < $hi")
        plan = p.explain()
        assert "IndexScan" in plan and "$lo" in plan and "$hi" in plan
        rows = sorted(p.execute(lo=2000.0, hi=4001.0).rows)
        assert rows == [("e2",), ("e3",), ("e4",)]
        # bounds re-resolve per execution, same plan object
        assert sorted(p.execute(lo=8000.0, hi=8500.0).rows) == [("e8",)]
        assert p.replans == 1

    def test_null_range_bound_yields_no_rows(self):
        db = small_db()
        db.execute("define index emp_sal on emp (sal)")
        p = db.prepare("retrieve (emp.name) where emp.sal >= $lo")
        assert p.execute(lo=None).rows == []

    def test_param_without_index_filters_at_runtime(self):
        db = small_db()
        p = db.prepare("retrieve (emp.name) where emp.id = $id")
        assert "SeqScan" in p.explain()
        assert p.execute(id=5).rows == [("e5",)]

    def test_param_in_append_values(self):
        db = small_db()
        p = db.prepare("append emp(id = $id, name = $name, sal = $sal)")
        result = p.execute(id=50, name="fresh", sal=123.0)
        assert result.count == 1
        assert (50, "fresh", 123.0) in db.relation_rows("emp")

    def test_param_shared_across_conjuncts(self):
        db = small_db()
        p = db.prepare("retrieve (emp.name) "
                       "where emp.id = $n and emp.sal = $n * 1000.0")
        assert p.execute(n=6).rows == [("e6",)]
        assert p.execute(n=3).rows == [("e3",)]


class TestInvalidation:
    def test_new_index_is_picked_up(self):
        db = small_db()
        p = db.prepare("retrieve (emp.name) where emp.id = $id")
        assert "SeqScan" in p.explain()
        before = p.execute(id=3).rows
        db.execute("define index emp_id on emp (id) using hash")
        assert p.execute(id=3).rows == before
        assert "IndexProbe" in p.explain()
        assert p.replans == 2

    def test_dropped_index_never_probed(self):
        db = small_db()
        db.execute("define index emp_id on emp (id) using hash")
        p = db.prepare("retrieve (emp.name) where emp.id = $id")
        assert "IndexProbe" in p.explain()
        before = p.execute(id=3).rows
        db.execute("remove index emp_id")
        assert p.execute(id=3).rows == before
        assert "SeqScan" in p.explain()

    def test_rule_lifecycle_bumps_catalog_version(self):
        db = small_db()
        v0 = db.catalog.version
        db.execute("define rule r if emp.sal > 1e9 then delete emp")
        v1 = db.catalog.version
        assert v1 > v0
        db.execute("deactivate rule r")
        v2 = db.catalog.version
        assert v2 > v1
        db.execute("remove rule r")
        assert db.catalog.version > v2

    def test_replan_is_lazy_and_counted(self):
        db = small_db()
        p = db.prepare("retrieve (emp.name) where emp.id = $id")
        p.execute(id=1)
        p.execute(id=2)
        assert (p.replans, p.executions) == (1, 2)
        db.execute("create other (a = int4)")
        db.execute("destroy other")
        # two DDL bumps, one replan at next use
        p.execute(id=3)
        assert (p.replans, p.executions) == (2, 3)

    def test_relation_recreate_resolves_fresh_schema(self):
        db = small_db()
        p = db.prepare("retrieve (emp.name) where emp.id = $id")
        assert p.execute(id=1).rows == [("e1",)]
        db.execute("destroy emp")
        db.execute("create emp (id = int4, name = text, sal = float8)")
        db.execute('append emp(id = 1, name = "reborn", sal = 0.0)')
        assert p.execute(id=1).rows == [("reborn",)]


class TestExplainStaleness:
    def test_explain_reflects_index_created_after_first_explain(self):
        # regression: explain used to re-plan from scratch each call
        # while execute served a cached plan — after DDL the two could
        # disagree.  Both now route through the statement cache.
        db = small_db()
        text = "retrieve (emp.name) where emp.id = 3"
        assert "SeqScan" in db.explain(text)
        db.execute("define index emp_id on emp (id) using hash")
        after = db.explain(text)
        assert "emp_id" in after and "SeqScan" not in after
        assert db.execute(text).rows == [("e3",)]

    def test_explain_matches_what_execute_runs(self):
        db = small_db()
        text = "retrieve (emp.name) where emp.id = 3"
        db.execute(text)                      # populates the cache
        db.execute("define index emp_id on emp (id) using hash")
        assert "emp_id" in db.explain(text)
        entry = db.statement_cache.lookup(text)
        assert entry is not None and entry.replans == 2


class TestStatementCache:
    def test_repeated_text_hits_cache(self):
        db = small_db()
        text = "retrieve (emp.name) where emp.id = 3"
        for _ in range(3):
            assert db.execute(text).rows == [("e3",)]
        assert text in db.statement_cache
        assert db.statement_cache.hits == 2
        assert db.statement_cache.lookup(text).replans == 1

    def test_cached_entry_replans_after_ddl(self):
        db = small_db()
        text = "retrieve (emp.name) where emp.id = 3"
        db.execute(text)
        db.execute("define index emp_id on emp (id) using hash")
        assert db.execute(text).rows == [("e3",)]
        assert db.statement_cache.lookup(text).replans == 2

    def test_lru_eviction(self):
        cache = StatementCache(capacity=2)
        sentinel = object()
        cache.store("a", sentinel)
        cache.store("b", sentinel)
        cache.lookup("a")                     # refresh a
        cache.store("c", sentinel)            # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache
        assert len(cache) == 2

    def test_zero_capacity_disables_caching(self):
        db = small_db(cache_size=0)
        text = "retrieve (emp.name) where emp.id = 3"
        assert db.execute(text).rows == [("e3",)]
        assert len(db.statement_cache) == 0

    def test_ddl_never_cached(self):
        db = small_db()
        db.execute("create t (a = int4)")
        assert "create t (a = int4)" not in db.statement_cache


class TestExecuteMany:
    def test_bulk_parameterized_append(self):
        db = small_db()
        results = db.execute_many(
            "append emp(id = $id, name = $name, sal = $sal)",
            [{"id": 100 + i, "name": f"bulk{i}", "sal": float(i)}
             for i in range(5)])
        assert [r.count for r in results] == [1] * 5
        rows = db.relation_rows("emp")
        assert (104, "bulk4", 4.0) in rows and len(rows) == 15

    def test_results_in_input_order(self):
        db = small_db()
        results = db.execute_many(
            "retrieve (emp.name) where emp.id = $id",
            [{"id": 2}, {"id": 0}, {"id": 42}])
        assert [r.rows for r in results] == [[("e2",)], [("e0",)], []]


# ----------------------------------------------------------------------
# equivalence property: prepared-with-params behaves byte-identically to
# ad-hoc text, across all four DML kinds, with and without active rules
# ----------------------------------------------------------------------

IDS = st.integers(min_value=0, max_value=30)
SALS = st.integers(min_value=0, max_value=10_000).map(float)
NAMES = st.text(alphabet="abcdefgh", max_size=6)

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("retrieve"), IDS),
        st.tuples(st.just("append"), IDS, NAMES, SALS),
        st.tuples(st.just("delete"), SALS),
        st.tuples(st.just("replace"), IDS, SALS),
    ),
    min_size=1, max_size=10)


def equivalence_db(rules: bool) -> Database:
    # the ad-hoc side gets no statement cache so it exercises the plain
    # parse → analyze → plan → execute pipeline for every command
    db = Database(statement_cache_size=0)
    db.execute_script("""
        create emp (id = int4, name = text, sal = float8)
        create log (id = int4, sal = float8)
    """)
    db.execute("define index emp_id on emp (id) using hash")
    if rules:
        db.execute("define rule high_sal if emp.sal > 5000 "
                   "then append to log(id = emp.id, sal = emp.sal)")
        db.execute("define rule low_sal if emp.sal < 100 "
                   "then append to log(id = emp.id, sal = 0.0)")
    for i in range(8):
        db.execute(f'append emp(id = {i}, name = "seed{i}", '
                   f'sal = {i * 900.0})')
    return db


def observable_state(db: Database):
    return (sorted(db.relation_rows("emp")),
            sorted(db.relation_rows("log")),
            db.firings)


@pytest.mark.parametrize("rules", [False, True])
@settings(max_examples=20, deadline=None)
@given(ops=OPS)
def test_prepared_equivalent_to_adhoc(rules, ops):
    adhoc = equivalence_db(rules)
    other = equivalence_db(rules)
    prepared = {
        "retrieve": other.prepare(
            "retrieve (emp.name, emp.sal) where emp.id = $id"),
        "append": other.prepare(
            "append emp(id = $id, name = $name, sal = $sal)"),
        "delete": other.prepare("delete emp where emp.sal > $floor"),
        "replace": other.prepare(
            "replace emp (sal = emp.sal + $delta) where emp.id = $id"),
    }
    for op in ops:
        kind = op[0]
        if kind == "retrieve":
            a = adhoc.execute(f"retrieve (emp.name, emp.sal) "
                              f"where emp.id = {op[1]}")
            p = prepared[kind].execute(id=op[1])
            assert sorted(map(str, a.rows)) == sorted(map(str, p.rows))
        elif kind == "append":
            _, ident, name, sal = op
            a = adhoc.execute(f'append emp(id = {ident}, '
                              f'name = "{name}", sal = {sal})')
            p = prepared[kind].execute(id=ident, name=name, sal=sal)
            assert a.count == p.count
        elif kind == "delete":
            a = adhoc.execute(f"delete emp where emp.sal > {op[1]}")
            p = prepared[kind].execute(floor=op[1])
            assert a.count == p.count
        else:
            _, ident, delta = op
            a = adhoc.execute(f"replace emp (sal = emp.sal + {delta}) "
                              f"where emp.id = {ident}")
            p = prepared[kind].execute(id=ident, delta=delta)
            assert a.count == p.count
        assert observable_state(adhoc) == observable_state(other)


class TestShellMetaCommands:
    @pytest.fixture
    def shell(self):
        import io
        from repro.cli import Shell
        out = io.StringIO()
        sh = Shell(small_db(), out=out)
        return sh, out

    def test_timing_toggle(self, shell):
        sh, out = shell
        sh.feed("\\timing on")
        sh.feed("retrieve (emp.name) where emp.id = 1;")
        assert "Time:" in out.getvalue() and "ms" in out.getvalue()
        sh.feed("\\timing off")
        assert "timing is off" in out.getvalue()

    def test_prepare_and_exec_named(self, shell):
        sh, out = shell
        sh.feed("\\prepare byid retrieve (emp.name) where emp.id = $id")
        assert "prepared byid($id)" in out.getvalue()
        sh.feed("\\exec byid id=4")
        assert "e4" in out.getvalue()

    def test_exec_positional_fills_signature(self, shell):
        sh, out = shell
        sh.feed("\\prepare ins append emp(id = $id, name = $name, "
                "sal = $sal)")
        sh.feed('\\exec ins 77 "kim" 5.5')
        assert "1 tuple(s) affected" in out.getvalue()
        assert (77, "kim", 5.5) in sh.db.relation_rows("emp")

    def test_exec_unknown_statement(self, shell):
        sh, out = shell
        sh.feed("\\exec nope id=1")
        assert "no prepared statement 'nope'" in out.getvalue()

    def test_exec_too_many_positionals(self, shell):
        sh, out = shell
        sh.feed("\\prepare one retrieve (emp.name) where emp.id = $id")
        sh.feed("\\exec one 1 2")
        assert "too many positional arguments" in out.getvalue()

    def test_prepare_rejects_ddl(self, shell):
        sh, out = shell
        sh.feed("\\prepare bad create t (a = int4)")
        assert "error: cannot prepare" in out.getvalue()
