"""Transaction tests: begin/commit/abort with the rule system engaged."""

import pytest

from repro import Database, TransactionError


@pytest.fixture
def db():
    database = Database()
    database.execute("create t (a = int4, tag = text)")
    database.execute("create log (tag = text)")
    return database


class TestBasics:
    def test_commit_keeps_changes(self, db):
        db.begin()
        db.execute('append t(a = 1, tag = "x")')
        db.commit()
        assert db.relation_rows("t") == [(1, "x")]

    def test_abort_undoes_insert(self, db):
        db.begin()
        db.execute('append t(a = 1, tag = "x")')
        db.abort()
        assert db.relation_rows("t") == []

    def test_abort_undoes_delete(self, db):
        db.execute('append t(a = 1, tag = "x")')
        db.begin()
        db.execute("delete t")
        db.abort()
        assert db.relation_rows("t") == [(1, "x")]

    def test_abort_undoes_replace(self, db):
        db.execute('append t(a = 1, tag = "x")')
        db.begin()
        db.execute('replace t (a = 99)')
        db.abort()
        assert db.relation_rows("t") == [(1, "x")]

    def test_abort_restores_tids(self, db):
        db.execute('append t(a = 1, tag = "x")')
        tid = next(db.catalog.relation("t").scan()).tid
        db.begin()
        db.execute("delete t")
        db.abort()
        assert next(db.catalog.relation("t").scan()).tid == tid

    def test_abort_mixed_sequence(self, db):
        db.execute('append t(a = 1, tag = "keep")')
        db.begin()
        db.execute('append t(a = 2, tag = "new")')
        db.execute('replace t (a = 10) where t.tag = "keep"')
        db.execute('delete t where t.tag = "new"')
        db.execute('append t(a = 3, tag = "other")')
        db.abort()
        assert db.relation_rows("t") == [(1, "keep")]

    def test_autocommit_outside_transaction(self, db):
        db.execute('append t(a = 1, tag = "x")')
        assert db.relation_rows("t") == [(1, "x")]
        with pytest.raises(TransactionError):
            db.abort()

    def test_nested_begin_rejected(self, db):
        db.begin()
        with pytest.raises(TransactionError):
            db.begin()
        db.commit()

    def test_commit_without_begin_rejected(self, db):
        with pytest.raises(TransactionError):
            db.commit()

    def test_transaction_after_abort_reusable(self, db):
        db.begin()
        db.execute('append t(a = 1, tag = "x")')
        db.abort()
        db.begin()
        db.execute('append t(a = 2, tag = "y")')
        db.commit()
        assert db.relation_rows("t") == [(2, "y")]


class TestRulesAndAbort:
    def test_rule_effects_also_undone(self, db):
        """A rule firing inside the transaction is rolled back too."""
        db.execute("define rule echo on append t "
                   "then append to log(t.tag)")
        db.begin()
        db.execute('append t(a = 1, tag = "x")')
        assert db.relation_rows("log") == [("x",)]
        db.abort()
        assert db.relation_rows("t") == []
        assert db.relation_rows("log") == []

    def test_network_consistent_after_abort(self, db):
        """The α-memories must reflect the restored state: the rule
        re-fires correctly after an abort."""
        db.execute('define rule nobigs if t.a > 100 then delete t')
        db.begin()
        db.execute('append t(a = 1, tag = "small")')
        db.abort()
        db.execute('append t(a = 200, tag = "big")')
        assert db.relation_rows("t") == []   # rule fired post-abort

    def test_undo_does_not_trigger_rules(self, db):
        db.execute("define rule ondel on delete t "
                   "then append to log(t.tag)")
        db.begin()
        db.execute('append t(a = 1, tag = "x")')
        db.abort()    # the undo deletes the tuple; the rule must not see
        assert db.relation_rows("log") == []

    def test_pattern_pnode_consistent_after_abort(self, db):
        db.execute('create pairs (x = int4, y = int4)')
        database = db
        database._rules_suspended = True
        database.execute("define rule join if a.a = b.a and a.tag != "
                         "b.tag from a in t, b in t "
                         "then append to pairs(x = a.a, y = b.a)")
        database.execute('append t(a = 1, tag = "p")')
        database.begin()
        database.execute('append t(a = 1, tag = "q")')
        assert len(database.network.pnode("join")) == 2
        database.abort()
        assert len(database.network.pnode("join")) == 0
