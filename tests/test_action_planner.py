"""Tests for query modification display and rule-action planning."""

import pytest

from repro import Database
from repro.core.action_planner import modified_action_text


@pytest.fixture
def db():
    database = Database()
    database.execute_script("""
        create emp (name = text, age = int4, sal = float8,
                    dno = int4, jno = int4)
        create dept (dno = int4, name = text)
        create job (jno = int4, title = text)
        create salarywatch (name = text, age = int4, sal = float8,
                            dno = int4, jno = int4)
        create log (name = text)
    """)
    return database


def compiled(db, name):
    return db.manager.rule(name).compiled


class TestQueryModificationText:
    def test_paper_figure7(self, db):
        """The SalesClerkRule2 example: the action after modification
        must read like the paper's Figure 7."""
        db.execute('define rule SalesClerkRule2 '
                   'if emp.sal > 30000 and emp.jno = job.jno '
                   'and job.title = "Clerk" '
                   'then do '
                   'append to salarywatch(emp.all) '
                   'replace emp (sal = 30000) where emp.dno = dept.dno '
                   'and dept.name = "Sales" '
                   'replace emp (sal = 25000) where emp.dno = dept.dno '
                   'and dept.name != "Sales" '
                   'end')
        text = modified_action_text(compiled(db, "SalesClerkRule2"))
        assert "append to salarywatch (P.emp.name" in text
        assert "replace' P.emp (sal = 30000) " \
               "where P.emp.dno = dept.dno" in text
        assert 'dept.name != "Sales"' in text
        # dept does not appear in the condition: it stays unqualified
        assert "P.dept" not in text

    def test_delete_prime(self, db):
        db.execute('define rule NoBobs on append emp '
                   'if emp.name = "Bob" then delete emp')
        text = modified_action_text(compiled(db, "NoBobs"))
        assert text == "delete' P.emp"

    def test_previous_kept(self, db):
        db.execute("define rule raiselimit "
                   "if emp.sal > 1.1 * previous emp.sal "
                   "then append to log(name = emp.name) "
                   "where previous emp.sal > 0")
        text = modified_action_text(compiled(db, "raiselimit"))
        assert "previous P.emp.sal > 0" in text

    def test_unshared_command_untouched(self, db):
        db.execute('define rule r if emp.sal > 5 '
                   'then append to log(name = "fixed")')
        text = modified_action_text(compiled(db, "r"))
        assert "P." not in text

    def test_halt_rendered(self, db):
        db.execute("define rule r if emp.sal > 5 then do "
                   "append to log(emp.name) halt end")
        text = modified_action_text(compiled(db, "r"))
        assert "halt" in text


class TestActionPlans:
    def test_pnodescan_in_action_plan(self, db):
        """Firing a rule whose action references shared vars plans a
        PnodeScan (paper Figure 8)."""
        db.execute('define rule watch if emp.sal > 100 '
                   'then append to log(emp.name)')
        db.execute('append emp(name="A", age=1, sal=200, dno=1, jno=1)')
        assert db.relation_rows("log") == [("A",)]
        assert db.action_planner.plans_built >= 1

    def test_unshared_action_runs_once_per_firing(self, db):
        db.execute('define rule once if new(emp) '
                   'then append to log(name = "tick")')
        db.execute("do "
                   'append emp(name="A", age=1, sal=1, dno=1, jno=1) '
                   'append emp(name="B", age=1, sal=1, dno=1, jno=1) '
                   "end")
        # one firing (set-oriented), one command execution, one row
        assert db.relation_rows("log") == [("tick",)]

    def test_shared_action_runs_per_match(self, db):
        db.execute('define rule each if new(emp) '
                   'then append to log(emp.name)')
        db.execute("do "
                   'append emp(name="A", age=1, sal=1, dno=1, jno=1) '
                   'append emp(name="B", age=1, sal=1, dno=1, jno=1) '
                   "end")
        assert sorted(db.relation_rows("log")) == [("A",), ("B",)]

    def test_action_join_against_base_relation(self, db):
        """Action joins the P-node with a relation not in the condition
        (the dept join of SalesClerkRule2)."""
        db.execute('append dept(dno=1, name="Sales")')
        db.execute('define rule cap if emp.sal > 1000 '
                   'then replace emp (sal = 1000) '
                   'where emp.dno = dept.dno and dept.name = "Sales"')
        db.execute('append emp(name="S", age=1, sal=9000, dno=1, jno=1)')
        assert db.query("retrieve (emp.sal)").rows == [(1000.0,)]

    def test_action_join_leaves_nonmatching(self, db):
        db.execute('append dept(dno=1, name="Sales")')
        db.execute('append dept(dno=2, name="Toy")')
        db.execute('define rule cap if emp.sal > 1000 '
                   'then replace emp (sal = 1000) '
                   'where emp.dno = dept.dno and dept.name = "Sales"')
        db.execute('append emp(name="T", age=1, sal=9000, dno=2, jno=1)')
        assert db.query("retrieve (emp.sal)").rows == [(9000.0,)]


class TestPlanCaching:
    def make(self, cache):
        db = Database(cache_action_plans=cache)
        db.execute("create t (a = int4)")
        db.execute("create log (a = int4)")
        db.execute("define rule r on append t "
                   "then append to log(a = t.a)")
        return db

    def test_always_reoptimize_builds_each_firing(self):
        db = self.make(cache=False)
        db.execute("append t(a = 1)")
        db.execute("append t(a = 2)")
        assert db.action_planner.plans_built == 2

    def test_cached_builds_once(self):
        db = self.make(cache=True)
        db.execute("append t(a = 1)")
        db.execute("append t(a = 2)")
        assert db.action_planner.plans_built == 1
        assert sorted(db.relation_rows("log")) == [(1,), (2,)]

    def test_cache_invalidated_on_index_change(self):
        db = self.make(cache=True)
        db.execute("append t(a = 1)")
        db.execute("define index ta on t (a)")
        db.execute("append t(a = 2)")
        assert db.action_planner.plans_built == 2
        assert sorted(db.relation_rows("log")) == [(1,), (2,)]
