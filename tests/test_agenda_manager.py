"""Unit tests for conflict resolution (Agenda) and the RuleManager."""

import pytest

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Schema
from repro.core.agenda import Agenda
from repro.core.alpha import MemoryEntry
from repro.core.manager import InstalledRule, RuleManager
from repro.core.pnode import Match, PNode
from repro.core.rules import CompiledRule
from repro.errors import CatalogError, RuleError
from repro.lang.parser import parse_command
from repro.lang.semantic import SemanticAnalyzer
from repro.storage.tuples import TupleId


class _FakeRule:
    def __init__(self, name, priority):
        self.name = name
        self.priority = priority


def pnode_with(stamp):
    pnode = PNode("r", ["t"])
    entry = MemoryEntry(TupleId("t", 0), (1,))
    pnode.insert(Match.of({"t": entry}), stamp)
    return pnode


class TestAgenda:
    def test_empty_selects_none(self):
        agenda = Agenda()
        assert agenda.select({}, lambda n: None) is None

    def test_priority_wins(self):
        agenda = Agenda()
        rules = {"low": _FakeRule("low", 1), "high": _FakeRule("high", 9)}
        pnodes = {"low": pnode_with(100), "high": pnode_with(1)}
        agenda.notify(rules["low"])
        agenda.notify(rules["high"])
        assert agenda.select(rules, pnodes.__getitem__).name == "high"

    def test_recency_breaks_priority_ties(self):
        agenda = Agenda()
        rules = {"old": _FakeRule("old", 5), "new": _FakeRule("new", 5)}
        pnodes = {"old": pnode_with(1), "new": pnode_with(2)}
        agenda.notify(rules["old"])
        agenda.notify(rules["new"])
        assert agenda.select(rules, pnodes.__getitem__).name == "new"

    def test_name_breaks_full_ties(self):
        agenda = Agenda()
        rules = {"a": _FakeRule("a", 5), "b": _FakeRule("b", 5)}
        pnodes = {"a": pnode_with(1), "b": pnode_with(1)}
        agenda.notify(rules["a"])
        agenda.notify(rules["b"])
        assert agenda.select(rules, pnodes.__getitem__).name == "b"

    def test_drained_pnode_dropped(self):
        agenda = Agenda()
        rules = {"r": _FakeRule("r", 5)}
        empty = PNode("r", ["t"])
        agenda.notify(rules["r"])
        assert agenda.select(rules, {"r": empty}.__getitem__) is None
        assert len(agenda) == 0

    def test_unknown_rule_dropped(self):
        agenda = Agenda()
        agenda.notify(_FakeRule("gone", 1))
        assert agenda.select({}, lambda n: None) is None
        assert len(agenda) == 0

    def test_discard_and_clear(self):
        agenda = Agenda()
        agenda.notify(_FakeRule("a", 1))
        agenda.notify(_FakeRule("b", 1))
        agenda.discard("a")
        assert len(agenda) == 1
        agenda.clear()
        assert len(agenda) == 0


@pytest.fixture
def manager():
    catalog = Catalog()
    catalog.create_relation("t", Schema.of(a="int"))
    catalog.create_relation("log", Schema.of(a="int"))
    analyzer = SemanticAnalyzer(catalog)
    mgr = RuleManager(catalog)
    return catalog, analyzer, mgr


def define(analyzer, text):
    return analyzer.analyze(parse_command(text))


RULE = "define rule r1 if t.a > 5 then append to log(t.a)"


class TestRuleManager:
    def test_install_without_activation(self, manager):
        catalog, analyzer, mgr = manager
        record = mgr.install(define(analyzer, RULE))
        assert isinstance(record, InstalledRule)
        assert not record.active
        assert catalog.has_rule("r1")
        assert "r1" not in mgr.active_rules()

    def test_activate(self, manager):
        catalog, analyzer, mgr = manager
        mgr.install(define(analyzer, RULE))
        compiled = mgr.activate("r1")
        assert isinstance(compiled, CompiledRule)
        assert mgr.rule("r1").active
        assert "r1" in mgr.active_rules()

    def test_define_activates_by_default(self, manager):
        catalog, analyzer, mgr = manager
        mgr.define(define(analyzer, RULE))
        assert mgr.rule("r1").active

    def test_define_without_activation(self, manager):
        catalog, analyzer, mgr = manager
        mgr.define(define(analyzer, RULE), activate=False)
        assert not mgr.rule("r1").active

    def test_double_activate_rejected(self, manager):
        catalog, analyzer, mgr = manager
        mgr.define(define(analyzer, RULE))
        with pytest.raises(RuleError):
            mgr.activate("r1")

    def test_deactivate_then_remove(self, manager):
        catalog, analyzer, mgr = manager
        mgr.define(define(analyzer, RULE))
        mgr.deactivate("r1")
        assert not mgr.rule("r1").active
        mgr.remove("r1")
        assert not catalog.has_rule("r1")

    def test_remove_active_rule_deactivates_first(self, manager):
        catalog, analyzer, mgr = manager
        mgr.define(define(analyzer, RULE))
        mgr.remove("r1")
        assert not catalog.has_rule("r1")
        assert len(mgr.network.selection_index) == 0

    def test_duplicate_install_rejected(self, manager):
        catalog, analyzer, mgr = manager
        first = define(analyzer, RULE)
        mgr.install(first)
        # caught at analysis time...
        from repro.errors import SemanticError
        with pytest.raises(SemanticError):
            define(analyzer, RULE)
        # ...and at the catalog for a pre-analyzed duplicate tree
        with pytest.raises(CatalogError):
            mgr.install(first)

    def test_missing_rule_operations(self, manager):
        catalog, analyzer, mgr = manager
        with pytest.raises(CatalogError):
            mgr.activate("nothere")
        with pytest.raises(CatalogError):
            mgr.remove("nothere")

    def test_non_rule_catalog_entry_rejected(self, manager):
        catalog, analyzer, mgr = manager
        catalog.store_rule("impostor", object())
        with pytest.raises(RuleError):
            mgr.activate("impostor")

    def test_consume_matches_clears_agenda(self, manager):
        catalog, analyzer, mgr = manager
        catalog.relation("t").insert((10,))
        mgr.define(define(analyzer, RULE))
        rule = mgr.select_rule()
        assert rule is not None and rule.name == "r1"
        matches = mgr.consume_matches(rule)
        assert len(matches) == 1
        assert mgr.select_rule() is None

    def test_halt_flag_reset_by_end_of_processing(self, manager):
        catalog, analyzer, mgr = manager
        mgr.halt()
        assert mgr.halted
        mgr.end_of_rule_processing()
        assert not mgr.halted

    def test_installed_rules_listing(self, manager):
        catalog, analyzer, mgr = manager
        mgr.define(define(analyzer, RULE))
        mgr.install(define(analyzer, RULE.replace("r1", "r2")))
        names = {r.name for r in mgr.installed_rules()}
        assert names == {"r1", "r2"}
