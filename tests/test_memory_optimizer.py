"""Tests for storage-budgeted α-memory materialization (paper §8)."""

import pytest

from repro import Database
from repro.core.memory_optimizer import (
    MemoryChoice, _density_key, apply_plan, optimize_memories,
    plan_memories)


@pytest.fixture
def db():
    database = Database(virtual_policy="never")   # start all-stored
    database.execute_script("""
        create big (a = int4, k = int4)
        create small (k = int4, tag = text)
        create log (a = int4)
    """)
    for i in range(200):
        database.execute(f"append big(a = {i}, k = {i % 10})")
    for k in range(10):
        database.execute(f'append small(k = {k}, tag = "t{k}")')
    database._rules_suspended = True
    # rule wide: keeps ~190/200 of big -> expensive to store
    database.execute("define rule wide if big.a >= 10 "
                     "and big.k = small.k "
                     "then append to log(a = big.a)")
    # rule narrow: keeps ~10/200 of big -> cheap to store
    database.execute("define rule narrow if big.a < 10 "
                     "and big.k = small.k "
                     "then append to log(a = big.a)")
    return database


class TestPlanning:
    def test_candidates_enumerated(self, db):
        plan = plan_memories(db, budget_entries=1000)
        pairs = {(c.rule_name, c.var) for c in plan.choices}
        assert ("wide", "big") in pairs
        assert ("narrow", "big") in pairs
        assert ("wide", "small") in pairs

    def test_generous_budget_materializes_everything(self, db):
        plan = plan_memories(db, budget_entries=10000)
        assert all(c.materialize for c in plan.choices
                   if c.benefit_per_probe > 0)

    def test_tight_budget_prefers_worthy_nodes(self, db):
        # room for the narrow big-memory (~10) and the small memories
        # (~10 each) but not for the wide big-memory (~190)
        plan = plan_memories(db, budget_entries=60)
        assert plan.decision("narrow", "big") is True
        assert plan.decision("wide", "big") is False
        assert plan.used_budget() <= 60

    def test_zero_budget_materializes_nothing(self, db):
        plan = plan_memories(db, budget_entries=0)
        assert plan.materialized() == []

    def test_weights_bias_choices(self, db):
        # make wide's probes count 100x: its big memory becomes the most
        # worthy, and with budget for only one big memory it wins
        plan = plan_memories(db, budget_entries=195,
                             weights={"wide": 100.0, "narrow": 0.001})
        assert plan.decision("wide", "big") is True

    def test_plan_str(self, db):
        text = str(plan_memories(db, budget_entries=60))
        assert "memory plan" in text
        assert "wide/big" in text

    def test_knapsack_never_exceeds_budget(self, db):
        for budget in (0, 5, 25, 60, 100, 195, 10000):
            plan = plan_memories(db, budget_entries=budget)
            assert plan.used_budget() <= budget

    def test_decision_unknown_memory_is_none(self, db):
        plan = plan_memories(db, budget_entries=60)
        assert plan.decision("wide", "nope") is None
        assert plan.decision("ghost", "big") is None

    def test_worth_tie_break_is_deterministic(self):
        # four candidates with identical benefit density: the knapsack
        # must order them by (rule, var), not dict/sort happenstance
        ties = [MemoryChoice(rule, var, "r", 10.0, 20.0, False)
                for rule in ("b_rule", "a_rule")
                for var in ("y", "x")]
        ordered = sorted(ties, key=_density_key)
        assert [(c.rule_name, c.var) for c in ordered] == [
            ("a_rule", "x"), ("a_rule", "y"),
            ("b_rule", "x"), ("b_rule", "y")]

    def test_observed_planning_falls_back_to_uniform(self, db):
        # nothing has been probed yet: observed mode must reproduce the
        # uniform-frequency plan rather than zeroing every benefit
        uniform = plan_memories(db, budget_entries=60)
        observed = plan_memories(db, budget_entries=60, observed=True)
        assert [(c.rule_name, c.var, c.materialize)
                for c in observed.choices] == \
               [(c.rule_name, c.var, c.materialize)
                for c in uniform.choices]

    def test_simple_and_dynamic_memories_excluded(self, db):
        db.execute("define rule ev on append big "
                   "then append to log(a = big.a)")
        db.execute("define rule solo if big.a > 195 "
                   "then append to log(a = big.a)")
        plan = plan_memories(db, budget_entries=1000)
        names = {c.rule_name for c in plan.choices}
        assert "ev" not in names
        assert "solo" not in names


class TestApplying:
    def test_apply_rebuilds_memories(self, db):
        plan = plan_memories(db, budget_entries=60)
        reactivated = apply_plan(db, plan)
        assert reactivated == 2
        assert db.network.memory("narrow", "big").is_virtual is False
        assert db.network.memory("wide", "big").is_virtual is True

    def test_storage_respects_budget(self, db):
        optimize_memories(db, budget_entries=60)
        assert db.network.memory_entry_count() <= 60

    def test_rules_still_work_after_optimization(self, db):
        optimize_memories(db, budget_entries=60)
        db._rules_suspended = False
        db.execute("append big(a = 5, k = 3)")     # narrow rule fires
        db.execute("append big(a = 150, k = 3)")   # wide rule fires
        logged = sorted(db.relation_rows("log"))
        assert (5,) in logged and (150,) in logged

    def test_equivalent_matching_before_and_after(self, db):
        before = {
            name: sorted(
                tuple(sorted((var, entry.values)
                             for var, entry in m.bindings))
                for m in db.network.pnode(name).matches())
            for name in ("wide", "narrow")}
        optimize_memories(db, budget_entries=60)
        after = {
            name: sorted(
                tuple(sorted((var, entry.values)
                             for var, entry in m.bindings))
                for m in db.network.pnode(name).matches())
            for name in ("wide", "narrow")}
        assert before == after

    def test_inactive_rules_skipped(self, db):
        db.execute("deactivate rule wide")
        plan = plan_memories(db, budget_entries=60)
        assert apply_plan(db, plan) == 1
        assert not db.manager.rule("wide").active

    def test_applied_plan_matches_heap_rebuild(self, db):
        """P-node contents after apply_plan must equal a from-scratch
        rebuild (deactivate + reactivate under the default policy maps
        every memory back to stored, re-priming from the heap)."""
        def pnode_sets():
            return {
                name: sorted(
                    tuple(sorted((var, entry.values)
                                 for var, entry in m.bindings))
                    for m in db.network.pnode(name).matches())
                for name in ("wide", "narrow")}

        optimize_memories(db, budget_entries=60)
        after_plan = pnode_sets()
        for name in ("wide", "narrow"):
            db.manager.deactivate(name)
            db.manager.activate(name)
        assert pnode_sets() == after_plan

    def test_only_changes_skips_agreeing_rules(self, db):
        plan = plan_memories(db, budget_entries=60)
        assert apply_plan(db, plan) == 2
        # same plan again: every memory already agrees, nothing rebuilt
        assert apply_plan(db, plan, only_changes=True) == 0
        assert apply_plan(db, plan) == 2   # default still rebuilds all
