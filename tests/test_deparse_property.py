"""Property test: deparse(parse(x)) round-trips for generated ASTs.

Rather than generating text, we generate random command trees, render
them with the deparser, and check that parsing the rendered text yields
an equal tree — covering operator precedence, parenthesisation, literals
(including strings needing escapes and null), events, from-lists, sort
keys and aggregates far beyond the hand-written cases.
"""

import string

from hypothesis import given, strategies as st

from repro.lang import ast_nodes as ast
from repro.lang.ast_nodes import deparse
from repro.lang.lexer import KEYWORDS
from repro.lang.parser import parse_command

# "all" is excluded: var.all is grammar (AllRef), not an attribute name
_names = st.text(alphabet=string.ascii_lowercase, min_size=1,
                 max_size=6).filter(
                     lambda s: s not in KEYWORDS and s != "all")

_literals = st.one_of(
    st.integers(-1000, 1000).map(ast.Const),
    st.floats(-100, 100, allow_nan=False).map(ast.Const),
    st.booleans().map(ast.Const),
    st.just(ast.Const(None)),
    st.text(alphabet=string.printable, max_size=8).map(ast.Const),
)


@st.composite
def exprs(draw, depth=0, allow_bool=True):
    choices = ["literal", "attr"]
    if depth < 3:
        choices += ["arith", "unary"]
        if allow_bool:
            choices += ["compare", "logic", "not"]
    kind = draw(st.sampled_from(choices))
    if kind == "literal":
        return draw(_literals)
    if kind == "attr":
        return ast.AttrRef(draw(_names), draw(_names),
                           previous=draw(st.booleans()))
    if kind == "arith":
        op = draw(st.sampled_from(ast.ARITHMETIC_OPS))
        return ast.BinOp(op, draw(exprs(depth=depth + 1,
                                        allow_bool=False)),
                         draw(exprs(depth=depth + 1, allow_bool=False)))
    if kind == "unary":
        return ast.UnaryOp("-", draw(exprs(depth=depth + 1,
                                           allow_bool=False)))
    if kind == "compare":
        op = draw(st.sampled_from(ast.COMPARISON_OPS))
        return ast.BinOp(op, draw(exprs(depth=depth + 1,
                                        allow_bool=False)),
                         draw(exprs(depth=depth + 1, allow_bool=False)))
    if kind == "logic":
        op = draw(st.sampled_from(ast.LOGICAL_OPS))
        return ast.BinOp(op, draw(exprs(depth=depth + 1)),
                         draw(exprs(depth=depth + 1)))
    return ast.UnaryOp("not", draw(exprs(depth=depth + 1)))


@st.composite
def retrieves(draw):
    targets = [ast.ResultColumn(draw(st.one_of(st.none(), _names)),
                                draw(exprs(allow_bool=False)))
               for _ in range(draw(st.integers(1, 4)))]
    from_items = [ast.FromItem(draw(_names), draw(_names))
                  for _ in range(draw(st.integers(0, 2)))]
    where = draw(st.one_of(st.none(), exprs()))
    sort_keys = [ast.SortKey(draw(exprs(allow_bool=False)),
                             draw(st.booleans()))
                 for _ in range(draw(st.integers(0, 2)))]
    return ast.Retrieve(targets, draw(st.one_of(st.none(), _names)),
                        from_items, where, sort_keys,
                        draw(st.booleans()))


@st.composite
def commands(draw):
    kind = draw(st.sampled_from(
        ["retrieve", "append", "delete", "replace", "rule"]))
    if kind == "retrieve":
        return draw(retrieves())
    if kind == "append":
        targets = [ast.ResultColumn(draw(_names),
                                    draw(exprs(allow_bool=False)))
                   for _ in range(draw(st.integers(1, 3)))]
        return ast.Append(draw(_names), targets, [],
                          draw(st.one_of(st.none(), exprs())))
    if kind == "delete":
        return ast.Delete(draw(_names), [],
                          draw(st.one_of(st.none(), exprs())))
    if kind == "replace":
        assignments = [ast.ResultColumn(draw(_names),
                                        draw(exprs(allow_bool=False)))
                       for _ in range(draw(st.integers(1, 2)))]
        return ast.Replace(draw(_names), assignments, [],
                           draw(st.one_of(st.none(), exprs())))
    event = draw(st.one_of(st.none(), st.builds(
        ast.EventSpec,
        st.sampled_from(list(ast.EventKind)),
        _names,
        st.just(()))))
    condition = draw(exprs()) if event is None else \
        draw(st.one_of(st.none(), exprs()))
    # the grammar attaches the from-list to the if clause, so a rule
    # without a condition cannot carry one
    from_items = ([ast.FromItem(draw(_names), draw(_names))
                   for _ in range(draw(st.integers(0, 2)))]
                  if condition is not None else [])
    return ast.DefineRule(
        name=draw(_names),
        action=ast.Delete(draw(_names), [], None),
        ruleset=draw(st.one_of(st.none(), _names)),
        priority=float(draw(st.integers(-5, 5))),
        event=event,
        condition=condition,
        from_items=from_items)


def normalize(node):
    """Clear analysis annotations and fold negated numeric literals
    (the parser normalises "-1" to Const(-1)) so trees compare
    structurally."""
    if isinstance(node, ast.AttrRef):
        node.position = None
    for field_name in getattr(node, "__dataclass_fields__", {}):
        value = getattr(node, field_name)
        if isinstance(value, (ast.Expr, ast.Command)):
            setattr(node, field_name, normalize(value))
        elif isinstance(value, (list, tuple)):
            for item in value:
                if hasattr(item, "__dataclass_fields__"):
                    normalize(item)
    if isinstance(node, ast.UnaryOp) and node.op == "-" \
            and isinstance(node.operand, ast.Const) \
            and isinstance(node.operand.value, (int, float)) \
            and not isinstance(node.operand.value, bool):
        return ast.Const(-node.operand.value)
    return node


@given(commands())
def test_deparse_parse_round_trip(tree):
    rendered = deparse(tree)
    reparsed = parse_command(rendered)
    assert normalize(reparsed) == normalize(tree), rendered


@given(exprs())
def test_expression_round_trip(expr):
    command = ast.Delete("t", [], expr)
    rendered = deparse(command)
    assert normalize(parse_command(rendered)) == normalize(command), \
        rendered
