"""Small coverage gaps: helper functions and secondary API surfaces."""

import pytest

from repro import Database
from repro.catalog.catalog import Catalog
from repro.catalog.schema import Schema
from repro.errors import ArielError, CatalogError
from repro.storage.heap import HeapRelation
from repro.storage.indexes import BTreeIndex, bulk_load
from repro.storage.tuples import TupleId


class TestBulkLoad:
    def test_bulk_load_matches_incremental(self):
        rows = [((i % 5, f"v{i}"), TupleId("t", i)) for i in range(20)]
        loaded = BTreeIndex("b", "t", "k", 0)
        bulk_load(loaded, rows)
        incremental = BTreeIndex("b2", "t", "k", 0)
        for values, tid in rows:
            incremental.insert(values[0], tid)
        for key in range(5):
            assert sorted(loaded.search(key), key=lambda t: t.slot) == \
                sorted(incremental.search(key), key=lambda t: t.slot)


class TestCatalogSecondary:
    def test_rulesets_iteration(self):
        catalog = Catalog()
        catalog.store_rule("a", object(), "watchers")
        catalog.store_rule("b", object())
        names = {rs.name for rs in catalog.rulesets()}
        assert names == {"default_rules", "watchers"}

    def test_drop_rule_removes_from_all_rulesets(self):
        catalog = Catalog()
        catalog.store_rule("a", object(), "watchers")
        catalog.drop_rule("a")
        assert catalog.ruleset("watchers").rule_names == set()

    def test_missing_ruleset(self):
        with pytest.raises(CatalogError):
            Catalog().ruleset("nope")

    def test_relations_iteration(self):
        catalog = Catalog()
        catalog.create_relation("a", Schema.of(x="int"))
        catalog.create_relation("b", Schema.of(x="int"))
        assert {r.name for r in catalog.relations()} == {"a", "b"}

    def test_index_info_and_destroy(self):
        catalog = Catalog()
        catalog.create_relation("t", Schema.of(x="int"))
        catalog.create_index("ix", "t", "x", "hash")
        assert catalog.index_info("ix").kind == "hash"
        catalog.destroy_index("ix")
        with pytest.raises(CatalogError):
            catalog.index_info("ix")

    def test_duplicate_index_rejected(self):
        catalog = Catalog()
        catalog.create_relation("t", Schema.of(x="int"))
        catalog.create_index("ix", "t", "x")
        with pytest.raises(CatalogError):
            catalog.create_index("ix", "t", "x")

    def test_destroy_relation_drops_its_indexes(self):
        catalog = Catalog()
        catalog.create_relation("t", Schema.of(x="int"))
        catalog.create_index("ix", "t", "x")
        catalog.destroy_relation("t")
        with pytest.raises(CatalogError):
            catalog.index_info("ix")


class TestDatabaseSurface:
    def test_unknown_network_rejected(self):
        with pytest.raises(ArielError):
            Database(network="bogus")

    def test_query_requires_retrieve(self):
        db = Database()
        db.execute("create t (a = int4)")
        from repro.errors import ExecutionError
        with pytest.raises(ExecutionError):
            db.query("append t(a = 1)")

    def test_execute_script_returns_results(self):
        db = Database()
        results = db.execute_script(
            "create t (a = int4)\nappend t(a = 1)\nretrieve (t.a)")
        assert results[0] is None
        assert results[1].count == 1
        assert results[2].rows == [(1,)]

    def test_explain_surface(self):
        db = Database()
        db.execute("create t (a = int4)")
        assert "SeqScan" in db.explain("retrieve (t.a) where t.a > 1")

    def test_relation_rows_helper(self):
        db = Database()
        db.execute("create t (a = int4)")
        db.execute("append t(a = 7)")
        assert db.relation_rows("t") == [(7,)]

    def test_firing_record_str(self):
        from repro.db import FiringRecord
        record = FiringRecord(3, "r", 2.0, 5)
        assert "#3" in str(record) and "5 match(es)" in str(record)


class TestHeapSecondary:
    def test_repr(self):
        rel = HeapRelation("t", Schema.of(x="int"))
        rel.insert((1,))
        assert "1 tuples" in repr(rel)

    def test_scan_where(self):
        rel = HeapRelation("t", Schema.of(x="int"))
        for i in range(6):
            rel.insert((i,))
        assert len(list(rel.scan_where(lambda v: v[0] % 2 == 0))) == 3

    def test_indexes_listing_order(self):
        rel = HeapRelation("t", Schema.of(x="int", y="int"))
        rel.attach_index(BTreeIndex("a", "t", "x", 0))
        rel.attach_index(BTreeIndex("b", "t", "y", 1))
        assert [i.name for i in rel.indexes()] == ["a", "b"]


class TestNetworkSurface:
    def test_network_repr(self):
        db = Database()
        db.execute("create t (a = int4)")
        db.execute("define rule r if t.a > 1 then delete t")
        assert "TreatNetwork" in repr(db.network)

    def test_add_duplicate_rule_rejected(self):
        from repro.errors import RuleError
        db = Database()
        db.execute("create t (a = int4)")
        db.execute("define rule r if t.a > 1 then delete t")
        compiled = db.network.rules["r"]
        with pytest.raises(RuleError):
            db.network.add_rule(compiled)

    def test_remove_unknown_rule_rejected(self):
        from repro.errors import RuleError
        db = Database()
        with pytest.raises(RuleError):
            db.network.remove_rule("ghost")

    def test_bad_virtual_policy_rejected(self):
        from repro.errors import RuleError
        db = Database(virtual_policy="sometimes")
        db.execute("create t (a = int4)")
        db.execute("create u (a = int4)")
        for i in range(20):
            db.execute(f"append t(a = {i})")
        with pytest.raises(RuleError):
            db.execute("define rule r if t.a >= 0 and t.a = u.a "
                       "then delete t")
