"""Unit tests for attribute types and relation schemas."""

import pytest

from repro.catalog.schema import Attribute, AttributeType, Schema
from repro.errors import CatalogError, SemanticError


class TestAttributeType:
    def test_from_name_canonical(self):
        assert AttributeType.from_name("int4") is AttributeType.INT
        assert AttributeType.from_name("float8") is AttributeType.FLOAT
        assert AttributeType.from_name("text") is AttributeType.TEXT
        assert AttributeType.from_name("bool") is AttributeType.BOOL

    def test_from_name_aliases(self):
        assert AttributeType.from_name("int") is AttributeType.INT
        assert AttributeType.from_name("INTEGER") is AttributeType.INT
        assert AttributeType.from_name("Float") is AttributeType.FLOAT
        assert AttributeType.from_name("string") is AttributeType.TEXT
        assert AttributeType.from_name("boolean") is AttributeType.BOOL

    def test_from_name_unknown(self):
        with pytest.raises(SemanticError):
            AttributeType.from_name("blob")

    def test_from_name_unknown_lists_accepted_names(self):
        with pytest.raises(SemanticError) as err:
            AttributeType.from_name("blob")
        message = str(err.value)
        assert "'blob'" in message
        # every canonical name and alias is offered as a correction
        for name in ("int4", "int", "integer", "float8", "float",
                     "real", "double", "text", "string", "varchar",
                     "char", "bool", "boolean"):
            assert name in message

    def test_int_accepts(self):
        assert AttributeType.INT.accepts(5)
        assert not AttributeType.INT.accepts(5.0)
        assert not AttributeType.INT.accepts("5")
        assert not AttributeType.INT.accepts(True)  # bool is not int here
        assert AttributeType.INT.accepts(None)

    def test_float_accepts_and_widens(self):
        assert AttributeType.FLOAT.accepts(5)
        assert AttributeType.FLOAT.accepts(5.5)
        assert not AttributeType.FLOAT.accepts(True)
        assert AttributeType.FLOAT.coerce(5) == 5.0
        assert isinstance(AttributeType.FLOAT.coerce(5), float)

    def test_text_accepts(self):
        assert AttributeType.TEXT.accepts("hi")
        assert not AttributeType.TEXT.accepts(5)

    def test_bool_accepts(self):
        assert AttributeType.BOOL.accepts(True)
        assert not AttributeType.BOOL.accepts(1)

    def test_coerce_none_passthrough(self):
        assert AttributeType.INT.coerce(None) is None

    def test_coerce_rejects_mismatch(self):
        with pytest.raises(SemanticError):
            AttributeType.INT.coerce("five")


class TestSchema:
    def make(self):
        return Schema.of(name="text", age="int", salary="float")

    def test_of_constructor(self):
        schema = self.make()
        assert schema.names() == ("name", "age", "salary")
        assert schema.type_of("age") is AttributeType.INT

    def test_len_and_iter(self):
        schema = self.make()
        assert len(schema) == 3
        assert [a.name for a in schema] == ["name", "age", "salary"]

    def test_position(self):
        schema = self.make()
        assert schema.position("name") == 0
        assert schema.position("salary") == 2

    def test_position_unknown(self):
        with pytest.raises(SemanticError):
            self.make().position("nope")

    def test_has(self):
        schema = self.make()
        assert schema.has("age")
        assert not schema.has("Age")   # case sensitive

    def test_duplicate_names_rejected(self):
        with pytest.raises(CatalogError):
            Schema([Attribute("x", AttributeType.INT),
                    Attribute("x", AttributeType.TEXT)])

    def test_equality_and_hash(self):
        assert self.make() == self.make()
        assert hash(self.make()) == hash(self.make())
        assert self.make() != Schema.of(name="text")

    def test_coerce_values(self):
        schema = self.make()
        values = schema.coerce_values(("Ann", 30, 100))
        assert values == ("Ann", 30, 100.0)
        assert isinstance(values[2], float)

    def test_coerce_values_arity(self):
        with pytest.raises(CatalogError):
            self.make().coerce_values(("Ann", 30))

    def test_coerce_values_type_error(self):
        with pytest.raises(SemanticError):
            self.make().coerce_values(("Ann", "thirty", 100.0))
