"""Tests for α-memory kinds and the Figure-5 dispatch table."""

import pytest

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Schema
from repro.core import tokens as tok
from repro.core.alpha import (
    AlphaMemory, MemoryEntry, VirtualAlphaMemory, dispatch)
from repro.core.rules import CompiledRule, VariableSpec
from repro.core.tokens import EventSpecifier
from repro.lang.ast_nodes import EventKind, EventSpec
from repro.lang.parser import parse_command
from repro.lang.semantic import SemanticAnalyzer
from repro.storage.tuples import TupleId

TID = TupleId("emp", 0)
APPEND = EventSpecifier(EventKind.APPEND)
DELETE = EventSpecifier(EventKind.DELETE)


def replace_event(*attrs):
    return EventSpecifier(EventKind.REPLACE, tuple(attrs))


def spec(event_kind=None, event_attrs=(), transition=False, new=False,
         simple=False):
    event = (EventSpec(event_kind, "emp", tuple(event_attrs))
             if event_kind else None)
    return VariableSpec(var="emp", relation="emp", event=event,
                        is_transition=transition, is_new=new,
                        is_simple=simple)


def t_plus(event=APPEND):
    return tok.plus("emp", TID, ("Ann", 1.0), event)


def t_minus(event=None):
    return tok.minus("emp", TID, ("Ann", 1.0), event)


def t_dplus(event=None, attrs=("sal",)):
    event = event or replace_event(*attrs)
    return tok.delta_plus("emp", TID, ("Ann", 2.0), ("Ann", 1.0), event)


def t_dminus():
    return tok.delta_minus("emp", TID, ("Ann", 2.0), ("Ann", 1.0),
                           replace_event("sal"))


class TestPatternDispatch:
    """Row 'stored/virtual/simple-α' of Figure 5."""

    def test_plus_inserts(self):
        op = dispatch(spec(), t_plus())
        assert op.op == "insert"
        assert op.entry.values == ("Ann", 1.0)
        assert op.entry.old_values is None

    def test_minus_deletes(self):
        op = dispatch(spec(), t_minus())
        assert op.op == "delete"
        assert op.tid == TID

    def test_delta_plus_inserts_new_half(self):
        op = dispatch(spec(), t_dplus())
        assert op.op == "insert"
        assert op.entry.values == ("Ann", 2.0)   # "insert newt"
        assert op.entry.old_values is None

    def test_delta_minus_deletes(self):
        assert dispatch(spec(), t_dminus()).op == "delete"

    def test_new_gate_uses_pattern_dispatch(self):
        assert dispatch(spec(new=True), t_plus()).op == "insert"
        assert dispatch(spec(new=True), t_dplus()).op == "insert"
        assert dispatch(spec(new=True), t_minus()).op == "delete"


class TestTransitionDispatch:
    """Row 'dynamic-trans-α': plain tokens are don't-care."""

    def test_plus_ignored(self):
        assert dispatch(spec(transition=True), t_plus()) is None

    def test_minus_ignored(self):
        assert dispatch(spec(transition=True), t_minus()) is None
        assert dispatch(spec(transition=True), t_minus(DELETE)) is None

    def test_delta_plus_inserts_pair(self):
        op = dispatch(spec(transition=True), t_dplus())
        assert op.op == "insert"
        assert op.entry.values == ("Ann", 2.0)
        assert op.entry.old_values == ("Ann", 1.0)

    def test_delta_minus_deletes(self):
        assert dispatch(spec(transition=True), t_dminus()).op == "delete"

    def test_transition_plus_event_gate(self):
        """Transition var also event-gated (finddemotions' emp): the Δ+
        must carry a matching replace specifier."""
        gated = spec(event_kind=EventKind.REPLACE, event_attrs=("jno",),
                     transition=True)
        assert dispatch(gated, t_dplus(attrs=("jno",))).op == "insert"
        assert dispatch(gated, t_dplus(attrs=("sal",))) is None


class TestOnAppendDispatch:
    def test_append_token_inserts(self):
        assert dispatch(spec(EventKind.APPEND), t_plus()).op == "insert"

    def test_minus_retracts(self):
        # case 1/2 retraction: − with append specifier removes the event
        assert dispatch(spec(EventKind.APPEND),
                        t_minus(APPEND)).op == "delete"

    def test_delta_tokens_ignored(self):
        assert dispatch(spec(EventKind.APPEND), t_dplus()) is None
        assert dispatch(spec(EventKind.APPEND), t_dminus()) is None


class TestOnDeleteDispatch:
    def test_delete_event_asserts(self):
        """The DESIGN.md clarification: a − with delete specifier binds
        the deleted tuple at an on-delete memory."""
        op = dispatch(spec(EventKind.DELETE), t_minus(DELETE))
        assert op.op == "insert"
        assert op.entry.values == ("Ann", 1.0)

    def test_insert_minus_does_not_trigger(self):
        """Case 2's final insert − (net effect nothing) must not look
        like a delete event — the logical-event guarantee."""
        assert dispatch(spec(EventKind.DELETE), t_minus(APPEND)) is None

    def test_plain_minus_does_not_trigger(self):
        assert dispatch(spec(EventKind.DELETE), t_minus(None)) is None

    def test_other_tokens_ignored(self):
        assert dispatch(spec(EventKind.DELETE), t_plus()) is None
        assert dispatch(spec(EventKind.DELETE), t_dplus()) is None


class TestOnReplaceDispatch:
    def test_delta_plus_matching_attrs(self):
        op = dispatch(spec(EventKind.REPLACE, ("sal",)),
                      t_dplus(attrs=("sal", "name")))
        assert op.op == "insert"
        assert op.entry.old_values == ("Ann", 1.0)

    def test_delta_plus_non_matching_attrs(self):
        assert dispatch(spec(EventKind.REPLACE, ("jno",)),
                        t_dplus(attrs=("sal",))) is None

    def test_empty_gate_matches_any_replace(self):
        assert dispatch(spec(EventKind.REPLACE),
                        t_dplus(attrs=("sal",))).op == "insert"

    def test_delta_minus_retracts(self):
        assert dispatch(spec(EventKind.REPLACE, ("sal",)),
                        t_dminus()).op == "delete"

    def test_plus_ignored(self):
        assert dispatch(spec(EventKind.REPLACE), t_plus()) is None


class TestAlphaMemory:
    def test_insert_remove(self):
        memory = AlphaMemory("r", spec())
        entry = MemoryEntry(TID, ("Ann", 1.0))
        assert memory.insert(entry)
        assert len(memory) == 1
        assert memory.get(TID) == entry
        assert memory.remove(TID) == entry
        assert len(memory) == 0

    def test_duplicate_insert_reports_false(self):
        memory = AlphaMemory("r", spec())
        entry = MemoryEntry(TID, ("Ann", 1.0))
        assert memory.insert(entry)
        assert not memory.insert(entry)

    def test_changed_values_reinsert(self):
        memory = AlphaMemory("r", spec())
        memory.insert(MemoryEntry(TID, ("Ann", 1.0)))
        assert memory.insert(MemoryEntry(TID, ("Ann", 2.0)))
        assert memory.get(TID).values == ("Ann", 2.0)
        assert len(memory) == 1

    def test_remove_absent_is_none(self):
        assert AlphaMemory("r", spec()).remove(TID) is None

    def test_flush(self):
        memory = AlphaMemory("r", spec())
        memory.insert(MemoryEntry(TID, ("Ann", 1.0)))
        memory.flush()
        assert len(memory) == 0

    @pytest.mark.parametrize("kwargs,expected", [
        (dict(), "stored-α"),
        (dict(transition=True), "dynamic-trans-α"),
        (dict(event_kind=EventKind.APPEND), "dynamic-on-α"),
        (dict(new=True), "dynamic-new-α"),
        (dict(simple=True), "simple-α"),
        (dict(simple=True, transition=True), "simple-trans-α"),
        (dict(simple=True, event_kind=EventKind.DELETE), "simple-on-α"),
    ])
    def test_kind_names(self, kwargs, expected):
        assert AlphaMemory("r", spec(**kwargs)).kind_name == expected


class TestVirtualAlphaMemory:
    def make(self):
        catalog = Catalog()
        catalog.create_relation("emp", Schema.of(
            name="text", sal="float", dno="int"))
        catalog.create_relation("dept", Schema.of(dno="int", name="text"))
        emp = catalog.relation("emp")
        for i in range(10):
            emp.insert((f"e{i}", float(i * 1000), i % 3))
        analyzer = SemanticAnalyzer(catalog)
        # build the spec through CompiledRule for realistic predicates
        cmd = analyzer.analyze(parse_command(
            "define rule r2 if emp.sal > 3000 and emp.dno = dept.dno "
            "then delete emp"))
        rule = CompiledRule(cmd, catalog)
        return catalog, VirtualAlphaMemory("r2", rule.specs["emp"])

    def test_stores_nothing(self):
        catalog, memory = self.make()
        assert len(memory) == 0
        assert memory.is_virtual

    def test_candidates_filtered(self):
        catalog, memory = self.make()
        values = {e.values[0] for e in memory.candidates(catalog)}
        assert values == {"e4", "e5", "e6", "e7", "e8", "e9"}

    def test_equality_constraint(self):
        catalog, memory = self.make()
        # dno position is 2; constrain dno = 1 -> e4, e7 (sal>3000)
        got = {e.values[0]
               for e in memory.candidates(catalog, equality=(2, 1))}
        assert got == {"e4", "e7"}

    def test_equality_constraint_with_index(self):
        catalog, memory = self.make()
        catalog.create_index("empdno", "emp", "dno", "hash")
        got = {e.values[0]
               for e in memory.candidates(catalog, equality=(2, 1))}
        assert got == {"e4", "e7"}

    def test_null_equality_yields_nothing(self):
        catalog, memory = self.make()
        assert list(memory.candidates(catalog, equality=(2, None))) == []

    def test_scan_count(self):
        catalog, memory = self.make()
        list(memory.candidates(catalog))
        list(memory.candidates(catalog))
        assert memory.scan_count == 2
