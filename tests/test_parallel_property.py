"""Sharded-propagation equivalence property (the determinism contract).

For any generated statement sequence, sharded propagation at workers ∈
{1, 2, 4} must be *indistinguishable* from serial (workers=0) — not
just set-equal but identical in every ordering-observable artifact:

* P-node contents and stored α-memory contents;
* the agenda's firing order — the exact ``(rule, match-count)``
  sequence of the firing log;
* the write-ahead log, compared **byte for byte** (WAL records are
  framed JSON with no timestamps, so any divergence in mutation order
  or content shows up as a byte difference);
* final relation contents.

Runs against both TREAT (a-treat/auto) and Rete with durability
enabled, with the pool's ``min_batch`` forced to 1 so even tiny
generated Δ-sets exercise the sharded path.
"""

import pathlib
import tempfile

from hypothesis import given, settings, strategies as st

from repro import Database

from tests.test_network_equivalence import (
    RULES, apply_ops, pnode_snapshot, _op)

WORKER_COUNTS = (1, 2, 4)

NETWORK_CONFIGS = [
    ("a-treat", "auto"),
    ("rete", "never"),
]


def _build(network, policy, rules, workers, durable_path):
    db = Database(network=network, virtual_policy=policy,
                  batch_tokens=True, durable_path=durable_path,
                  fsync="never")
    if workers:
        # min_batch=1: even a 2-token Δ-set takes the sharded path
        db.set_parallel_workers(workers, min_batch=1)
    db.execute("create t (a = int4, k = int4)")
    db.execute("create u (b = int4, k = int4)")
    db.execute("create v (c = int4, k = int4)")
    db.execute("create log (tag = text)")
    for rule in rules:
        db.execute(rule)
    return db


def _alpha_snapshot(db):
    """Stored α-memory contents as comparable per-(rule, var) sets."""
    out = {}
    for (rule, var), memory in db.network._memories.items():
        if memory.is_virtual:
            continue
        out[(rule, var)] = frozenset(
            (entry.values, entry.old_values)
            for entry in memory.entries())
    return out


def _firing_sequence(db):
    return [(record.rule_name, record.match_count)
            for record in db.firing_log]


@settings(max_examples=12, deadline=None)
@given(st.lists(_op, min_size=1, max_size=10),
       st.sets(st.integers(0, len(RULES) - 1), min_size=1, max_size=3),
       st.sampled_from(NETWORK_CONFIGS))
def test_sharded_equivalent_to_serial(ops, rule_indexes, config):
    network, policy = config
    rules = [RULES[i] for i in sorted(rule_indexes)]
    with tempfile.TemporaryDirectory() as root:
        root = pathlib.Path(root)
        reference = _build(network, policy, rules, 0, root / "serial")
        apply_ops(reference, ops)
        reference.close()
        ref_pnodes = pnode_snapshot(reference)
        ref_alpha = _alpha_snapshot(reference)
        ref_firings = _firing_sequence(reference)
        ref_rows = {rel: sorted(reference.relation_rows(rel))
                    for rel in ("t", "u", "v", "log")}
        ref_wal = (root / "serial" / "wal.log").read_bytes()

        for workers in WORKER_COUNTS:
            durable = root / f"w{workers}"
            db = _build(network, policy, rules, workers, durable)
            apply_ops(db, ops)
            db.close()
            label = f"workers={workers} network={network}"
            assert pnode_snapshot(db) == ref_pnodes, label
            assert _alpha_snapshot(db) == ref_alpha, label
            assert _firing_sequence(db) == ref_firings, label
            for rel, rows in ref_rows.items():
                assert sorted(db.relation_rows(rel)) == rows, \
                    f"{label} relation={rel}"
            assert (durable / "wal.log").read_bytes() == ref_wal, label
