"""Tests for tokens and Δ-set token generation (paper §4.3.1 cases 1–4)."""

import pytest
from hypothesis import given, strategies as st

from repro.catalog.schema import Schema
from repro.core import tokens as tok
from repro.core.deltasets import DeltaSets
from repro.core.tokens import EventSpecifier, Token, TokenKind
from repro.lang.ast_nodes import EventKind
from repro.storage.tuples import TupleId

TID = TupleId("emp", 0)
SCHEMA = Schema.of(name="text", sal="float")


class TestTokenBasics:
    def test_plus(self):
        token = tok.plus("emp", TID, ("Ann", 1.0))
        assert token.kind is TokenKind.PLUS
        assert not token.kind.is_delta
        assert token.kind.is_insertion

    def test_delta_requires_old(self):
        with pytest.raises(ValueError):
            Token(TokenKind.DELTA_PLUS, "emp", TID, ("A",))

    def test_plain_rejects_old(self):
        with pytest.raises(ValueError):
            Token(TokenKind.PLUS, "emp", TID, ("A",), ("B",))

    def test_str(self):
        token = tok.delta_plus("emp", TID, ("B",), ("A",),
                               EventSpecifier(EventKind.REPLACE, ("name",)))
        text = str(token)
        assert "Δ+" in text and "replace(name)" in text

    def test_event_specifier_str(self):
        assert str(EventSpecifier(EventKind.APPEND)) == "append"
        assert str(EventSpecifier(EventKind.REPLACE, ("a", "b"))) == \
            "replace(a, b)"


def make_ds():
    ds = DeltaSets()
    ds.register_schema("emp", SCHEMA)
    return ds


def kinds(tokens):
    return [t.kind for t in tokens]


def events(tokens):
    return [t.event.kind if t.event else None for t in tokens]


class TestCase1InsertThenModify:
    """im*: net effect insert."""

    def test_insert(self):
        ds = make_ds()
        out = ds.record_insert("emp", TID, ("Ann", 1.0))
        assert kinds(out) == [TokenKind.PLUS]
        assert events(out) == [EventKind.APPEND]
        assert ds.net_effect(TID) == "insert"

    def test_insert_then_modify(self):
        ds = make_ds()
        ds.record_insert("emp", TID, ("Ann", 1.0))
        out = ds.record_modify("emp", TID, ("Ann", 1.0), ("Ann", 2.0))
        # insert −, then insert + with the new value (paper case 1)
        assert kinds(out) == [TokenKind.MINUS, TokenKind.PLUS]
        assert events(out) == [EventKind.APPEND, EventKind.APPEND]
        assert out[0].values == ("Ann", 1.0)
        assert out[1].values == ("Ann", 2.0)
        assert ds.net_effect(TID) == "insert"

    def test_second_modify_retracts_latest(self):
        ds = make_ds()
        ds.record_insert("emp", TID, ("Ann", 1.0))
        ds.record_modify("emp", TID, ("Ann", 1.0), ("Ann", 2.0))
        out = ds.record_modify("emp", TID, ("Ann", 2.0), ("Ann", 3.0))
        assert out[0].values == ("Ann", 2.0)
        assert out[1].values == ("Ann", 3.0)


class TestCase2InsertModifyDelete:
    """im*d: net effect nothing."""

    def test_insert_then_delete(self):
        ds = make_ds()
        ds.record_insert("emp", TID, ("Ann", 1.0))
        out = ds.record_delete("emp", TID, ("Ann", 1.0))
        # the final delete generates an insert − (append specifier):
        # it must NOT look like a delete event
        assert kinds(out) == [TokenKind.MINUS]
        assert events(out) == [EventKind.APPEND]
        assert ds.net_effect(TID) == "untouched"

    def test_insert_modify_delete(self):
        ds = make_ds()
        ds.record_insert("emp", TID, ("Ann", 1.0))
        ds.record_modify("emp", TID, ("Ann", 1.0), ("Ann", 2.0))
        out = ds.record_delete("emp", TID, ("Ann", 2.0))
        assert kinds(out) == [TokenKind.MINUS]
        assert out[0].values == ("Ann", 2.0)
        assert events(out) == [EventKind.APPEND]


class TestCase3ModifyExisting:
    """m+: net effect modify."""

    def test_first_modify(self):
        ds = make_ds()
        out = ds.record_modify("emp", TID, ("Ann", 1.0), ("Ann", 2.0))
        # a simple − with NO event specifier, then a modify Δ+
        assert kinds(out) == [TokenKind.MINUS, TokenKind.DELTA_PLUS]
        assert out[0].event is None
        assert out[0].values == ("Ann", 1.0)
        assert out[1].event.kind is EventKind.REPLACE
        assert out[1].values == ("Ann", 2.0)
        assert out[1].old_values == ("Ann", 1.0)
        assert ds.net_effect(TID) == "modify"

    def test_later_modify_swaps_pair(self):
        ds = make_ds()
        ds.record_modify("emp", TID, ("Ann", 1.0), ("Ann", 2.0))
        out = ds.record_modify("emp", TID, ("Ann", 2.0), ("Ann", 3.0))
        assert kinds(out) == [TokenKind.DELTA_MINUS, TokenKind.DELTA_PLUS]
        # the old half always refers to the value at transition start
        assert out[0].values == ("Ann", 2.0)
        assert out[0].old_values == ("Ann", 1.0)
        assert out[1].values == ("Ann", 3.0)
        assert out[1].old_values == ("Ann", 1.0)

    def test_replace_target_list_is_net(self):
        ds = make_ds()
        ds.record_modify("emp", TID, ("Ann", 1.0), ("Ann", 2.0))
        out = ds.record_modify("emp", TID, ("Ann", 2.0), ("Bob", 2.0))
        # net change vs transition start: both name and sal
        assert set(out[1].event.attributes) == {"name", "sal"}

    def test_net_target_list_cancels(self):
        ds = make_ds()
        ds.record_modify("emp", TID, ("Ann", 1.0), ("Ann", 2.0))
        out = ds.record_modify("emp", TID, ("Ann", 2.0), ("Bob", 1.0))
        # sal returned to its original value: net change is name only
        assert out[1].event.attributes == ("name",)


class TestCase4ModifyThenDelete:
    """m*d: net effect delete."""

    def test_modify_then_delete(self):
        ds = make_ds()
        ds.record_modify("emp", TID, ("Ann", 1.0), ("Ann", 2.0))
        out = ds.record_delete("emp", TID, ("Ann", 2.0))
        # modify Δ− retracting the pair, then a delete −
        assert kinds(out) == [TokenKind.DELTA_MINUS, TokenKind.MINUS]
        assert out[0].values == ("Ann", 2.0)
        assert out[0].old_values == ("Ann", 1.0)
        assert out[1].event.kind is EventKind.DELETE
        assert ds.net_effect(TID) == "untouched"

    def test_plain_delete(self):
        ds = make_ds()
        out = ds.record_delete("emp", TID, ("Ann", 1.0))
        assert kinds(out) == [TokenKind.MINUS]
        assert events(out) == [EventKind.DELETE]


class TestLifecycle:
    def test_clear(self):
        ds = make_ds()
        ds.record_insert("emp", TID, ("A", 1.0))
        ds.record_modify("emp", TupleId("emp", 1), ("B", 1.0), ("B", 2.0))
        assert ds.inserted_count() == 1
        assert ds.modified_count() == 1
        ds.clear()
        assert ds.inserted_count() == 0
        assert ds.modified_count() == 0

    def test_without_schema_positions_used(self):
        ds = DeltaSets()
        out = ds.record_modify("emp", TID, ("Ann", 1.0), ("Ann", 2.0))
        assert out[1].event.attributes == ("1",)


# ----------------------------------------------------------------------
# property: token streams are self-cancelling per the net-effect table
# ----------------------------------------------------------------------

@given(st.lists(st.sampled_from(["modify", "delete", "nothing"]),
                min_size=0, max_size=6),
       st.booleans())
def test_net_effect_property(ops, starts_inserted):
    """Simulate one tuple's life through a transition and check that
    replaying the emitted tokens against a naive 'memory' leaves exactly
    the net effect: the memory holds the final value iff the tuple
    survives, and holds a Δ pair iff the net effect is a modify."""
    ds = DeltaSets()
    tid = TupleId("t", 0)
    value = 0
    alive = True
    all_tokens = []
    if starts_inserted:
        all_tokens += ds.record_insert("t", tid, (value,))
    for op in ops:
        if not alive:
            break
        if op == "modify":
            all_tokens += ds.record_modify("t", tid, (value,),
                                           (value + 1,))
            value += 1
        elif op == "delete":
            all_tokens += ds.record_delete("t", tid, (value,))
            alive = False

    # naive pattern memory: apply +/Δ+ as insert-new, −/Δ− as delete
    memory: dict = {}
    pairs: dict = {}
    for token in all_tokens:
        if token.kind is TokenKind.PLUS:
            memory[token.tid] = token.values
        elif token.kind is TokenKind.MINUS:
            memory.pop(token.tid, None)
        elif token.kind is TokenKind.DELTA_PLUS:
            memory[token.tid] = token.values
            pairs[token.tid] = (token.values, token.old_values)
        else:
            memory.pop(token.tid, None)
            pairs.pop(token.tid, None)

    existed_before = not starts_inserted
    if alive and (starts_inserted or ops.count("modify")):
        if starts_inserted:
            assert memory.get(tid) == (value,)
        elif any(op == "modify" for op in ops):
            assert memory.get(tid) == (value,)
            assert pairs[tid] == ((value,), (0,))
    if not alive:
        assert tid not in memory
        assert tid not in pairs
