"""Tests for asynchronous trigger delivery (paper §8 future work)."""

import pytest

from repro import Database


@pytest.fixture
def db():
    database = Database()
    database.execute_script("""
        create stock (symbol = text, price = float8)
        create alerts (symbol = text)
    """)
    database.execute("define rule spike "
                     "if stock.price > 1.2 * previous stock.price "
                     "then append to alerts(stock.symbol)")
    database.execute('append stock(symbol="ACME", price=100)')
    return database


class TestSubscribe:
    def test_notification_delivered(self, db):
        received = []
        db.subscribe(received.append, "spike")
        db.execute('replace stock (price = 150) '
                   'where stock.symbol = "ACME"')
        assert len(received) == 1
        notification = received[0]
        assert notification.rule_name == "spike"
        assert len(notification) == 1
        snapshot = notification.matches[0]
        assert snapshot["stock"] == ("ACME", 150.0)
        assert snapshot.previous["stock"] == ("ACME", 100.0)

    def test_no_notification_without_firing(self, db):
        received = []
        db.subscribe(received.append, "spike")
        db.execute('replace stock (price = 105) '
                   'where stock.symbol = "ACME"')
        assert received == []

    def test_wildcard_subscription(self, db):
        received = []
        db.subscribe(received.append)          # every rule
        db.execute("define rule any on append alerts "
                   "then append to alerts(symbol = \"echo\") "
                   "where alerts.symbol != \"echo\"")
        db.execute('replace stock (price = 200) '
                   'where stock.symbol = "ACME"')
        names = [n.rule_name for n in received]
        assert "spike" in names and "any" in names

    def test_rule_filter(self, db):
        spike_seen = []
        other_seen = []
        db.subscribe(spike_seen.append, "spike")
        db.subscribe(other_seen.append, "other")
        db.execute('replace stock (price = 200) '
                   'where stock.symbol = "ACME"')
        assert len(spike_seen) == 1
        assert other_seen == []

    def test_delivery_after_cascade_settles(self, db):
        """The subscriber must observe the final post-cascade state."""
        db.execute("define rule dampen on append alerts "
                   "then replace stock (price = 100) "
                   'where stock.symbol = alerts.symbol')
        states = []

        def observe(notification):
            states.append(db.relation_rows("stock"))

        db.subscribe(observe, "spike")
        db.execute('replace stock (price = 200) '
                   'where stock.symbol = "ACME"')
        # by delivery time the dampen rule has already reset the price
        assert states == [[("ACME", 100.0)]]

    def test_unsubscribe(self, db):
        received = []
        token = db.subscribe(received.append, "spike")
        assert db.unsubscribe(token)
        assert not db.unsubscribe(token)
        db.execute('replace stock (price = 200) '
                   'where stock.symbol = "ACME"')
        assert received == []

    def test_subscriber_exception_isolated(self, db):
        def boom(notification):
            raise ValueError("subscriber bug")

        received = []
        db.subscribe(boom, "spike")
        db.subscribe(received.append, "spike")
        db.execute('replace stock (price = 200) '
                   'where stock.symbol = "ACME"')
        # the healthy subscriber was still served, the error captured
        assert len(received) == 1
        assert len(db.subscriptions.errors) == 1
        assert isinstance(db.subscriptions.errors[0][1], ValueError)
        # data is consistent
        assert db.relation_rows("alerts") == [("ACME",)]

    def test_set_oriented_snapshot(self, db):
        db.execute('append stock(symbol="BETA", price=10)')
        received = []
        db.subscribe(received.append, "spike")
        db.execute("do "
                   'replace stock (price = 500) '
                   'where stock.symbol = "ACME" '
                   'replace stock (price = 50) '
                   'where stock.symbol = "BETA" '
                   "end")
        assert len(received) == 1
        assert len(received[0]) == 2
        symbols = sorted(m["stock"][0] for m in received[0].matches)
        assert symbols == ["ACME", "BETA"]

    def test_sequence_numbers_match_firing_log(self, db):
        received = []
        db.subscribe(received.append, "spike")
        db.execute('replace stock (price = 200) '
                   'where stock.symbol = "ACME"')
        assert received[0].sequence == db.firing_log[-1].sequence

    def test_subscribing_mid_session(self, db):
        db.execute('replace stock (price = 200) '
                   'where stock.symbol = "ACME"')     # unobserved
        received = []
        db.subscribe(received.append, "spike")
        db.execute('replace stock (price = 300) '
                   'where stock.symbol = "ACME"')
        assert len(received) == 1
