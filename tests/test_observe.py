"""Engine observability: counters, trace hooks, and their wiring."""

import io
import json

import pytest

from repro import Database
from repro.cli import Shell
from repro.observe import NULL_STATS, EngineStats, TraceHub


class TestEngineStats:
    def test_bump_and_get(self):
        stats = EngineStats()
        stats.bump("a.b")
        stats.bump("a.b", 4)
        assert stats.get("a.b") == 5
        assert stats.get("missing") == 0

    def test_disabled_bump_is_noop(self):
        stats = EngineStats(enabled=False)
        stats.bump("a.b")
        assert stats.get("a.b") == 0
        assert stats.snapshot() == {}

    def test_observe_max(self):
        stats = EngineStats()
        stats.observe_max("depth", 3)
        stats.observe_max("depth", 7)
        stats.observe_max("depth", 5)
        assert stats.get("depth") == 7

    def test_reset_clears_every_counter(self):
        stats = EngineStats()
        stats.bump("x")
        stats.bump("y", 10)
        stats.observe_max("z", 2)
        stats.reset()
        assert stats.snapshot() == {}
        assert stats.get("x") == 0
        # the registry keeps working after reset
        stats.bump("x")
        assert stats.get("x") == 1

    def test_hit_rate(self):
        stats = EngineStats()
        assert stats.hit_rate("h", "m") is None
        stats.bump("h", 3)
        stats.bump("m", 1)
        assert stats.hit_rate("h", "m") == pytest.approx(0.75)

    def test_to_json_round_trips_with_extras(self):
        stats = EngineStats()
        stats.bump("tokens.routed", 42)
        payload = json.loads(stats.to_json(workload="unit", rows=7))
        assert payload["counters"] == {"tokens.routed": 42}
        assert payload["workload"] == "unit"
        assert payload["rows"] == 7

    def test_report_renders_counters(self):
        stats = EngineStats()
        assert "no counters" in stats.report()
        stats.bump("alpha.inserts", 2)
        assert "alpha.inserts" in stats.report()
        assert "2" in stats.report()

    def test_null_stats_shared_disabled(self):
        assert NULL_STATS.enabled is False
        NULL_STATS.bump("anything")
        assert NULL_STATS.snapshot() == {}


class TestTraceHub:
    def test_on_emit_off(self):
        hub = TraceHub()
        seen = []
        token = hub.on(lambda e, p: seen.append((e, p)), "rule_fired")
        assert hub.wants("rule_fired")
        assert not hub.wants("token_routed")
        hub.emit("rule_fired", {"rule": "r"})
        assert seen == [("rule_fired", {"rule": "r"})]
        assert hub.off(token) is True
        assert hub.off(token) is False
        assert not hub.wants("rule_fired")

    def test_none_subscribes_to_all_events(self):
        hub = TraceHub()
        seen = []
        hub.on(lambda e, p: seen.append(e))
        hub.emit("rule_fired", {})
        hub.emit("token_routed", {})
        hub.emit("plan_executed", {})
        assert seen == ["rule_fired", "token_routed", "plan_executed"]

    def test_unknown_event_rejected(self):
        hub = TraceHub()
        with pytest.raises(ValueError) as err:
            hub.on(lambda e, p: None, "no_such_event")
        assert "rule_fired" in str(err.value)


@pytest.fixture
def db():
    database = Database()
    database.execute_script("""
        create emp (name = text, sal = float8)
        create log (name = text)
    """)
    return database


class TestDatabaseCounters:
    def test_transition_and_firing_counters(self, db):
        db.execute("define rule r if emp.sal > 100.0 "
                   "then append to log(emp.name)")
        db.execute('append emp(name = "a", sal = 500.0)')
        assert db.stats.get("tokens.routed") >= 1
        assert db.stats.get("rules.fired") == 1
        assert db.stats.get("rules.max_cascade_depth") >= 1
        assert db.stats.get("plans.executed") >= 2   # append + action
        assert db.stats.get("agenda.selections") >= 1
        assert db.stats.get("selection.probes") >= 1

    def test_statement_cache_counters(self, db):
        db.execute('append emp(name = "a", sal = 1.0)')
        db.execute('append emp(name = "a", sal = 1.0)')
        assert db.stats.get("stmt_cache.misses") >= 1
        assert db.stats.get("stmt_cache.hits") >= 1

    def test_disable_freezes_counters(self, db):
        db.execute('append emp(name = "a", sal = 1.0)')
        db.stats.enabled = False
        before = db.stats.snapshot()
        db.execute('append emp(name = "b", sal = 2.0)')
        assert db.stats.snapshot() == before

    def test_reset_mid_session(self, db):
        db.execute('append emp(name = "a", sal = 1.0)')
        assert db.stats.snapshot()
        db.stats.reset()
        assert db.stats.snapshot() == {}
        db.execute('append emp(name = "b", sal = 2.0)')
        assert db.stats.get("tokens.routed") >= 1

    def test_batched_routing_counters(self):
        db = Database(batch_tokens=True)
        db.execute("create t (a = int4)")
        db.execute("create log (a = int4)")
        db.execute("define rule r if t.a > 0 then append to log(t.a)")
        db.bulk_append("t", [(1,), (2,), (3,)])
        assert db.stats.get("tokens.batches") >= 1
        assert db.stats.get("tokens.routed") >= 3


class TestDatabaseTraceEvents:
    def test_rule_fired_event(self, db):
        db.execute("define rule r if emp.sal > 100.0 "
                   "then append to log(emp.name)")
        events = []
        db.on_event(lambda e, p: events.append(p), "rule_fired")
        db.execute('append emp(name = "a", sal = 500.0)')
        assert len(events) == 1
        assert events[0]["rule"] == "r"
        assert events[0]["matches"] == 1

    def test_token_routed_event(self, db):
        events = []
        db.on_event(lambda e, p: events.append(p), "token_routed")
        db.execute('append emp(name = "a", sal = 500.0)')
        assert any(p["relation"] == "emp" and p["kind"] == "PLUS"
                   for p in events)

    def test_plan_executed_event_names_rule_actions(self, db):
        db.execute("define rule r if emp.sal > 100.0 "
                   "then append to log(emp.name)")
        events = []
        db.on_event(lambda e, p: events.append(p), "plan_executed")
        db.execute('append emp(name = "a", sal = 500.0)')
        commands = [p["command"] for p in events]
        assert "Append" in commands
        assert any(p.get("rule") == "r" for p in events)

    def test_off_event_stops_delivery(self, db):
        events = []
        token = db.on_event(lambda e, p: events.append(p))
        db.execute('append emp(name = "a", sal = 1.0)')
        seen = len(events)
        assert db.off_event(token) is True
        db.execute('append emp(name = "b", sal = 2.0)')
        assert len(events) == seen


class TestCliObservability:
    def _shell(self):
        out = io.StringIO()
        shell = Shell(Database(), out=out)
        return shell, out

    def test_stats_meta_command(self):
        shell, out = self._shell()
        shell.feed("create t (a = int4);")
        shell.feed("append t(a = 1);")
        shell.feed("\\stats")
        text = out.getvalue()
        assert "tokens.routed" in text
        shell.feed("\\stats reset")
        assert "counters reset" in out.getvalue()

    def test_trace_toggle_prints_firings_live(self):
        shell, out = self._shell()
        shell.feed("create t (a = int4);")
        shell.feed("create log (a = int4);")
        shell.feed("define rule r if t.a > 0 then append to log(t.a);")
        shell.feed("\\trace on")
        shell.feed("append t(a = 5);")
        assert "[rule_fired] #1 r" in out.getvalue()
        shell.feed("\\trace off")
        shell.feed("append t(a = 6);")
        assert "[rule_fired] #2" not in out.getvalue()

    def test_bare_trace_still_lists_firing_log(self):
        shell, out = self._shell()
        shell.feed("\\trace")
        assert "no firings recorded" in out.getvalue()

    def test_explain_statement_renders_inline(self):
        """``explain analyze …`` typed as a plain statement prints the
        annotated plan, not the generic ``ok``."""
        shell, out = self._shell()
        shell.feed("create t (a = int4);")
        shell.feed("append t(a = 1);")
        shell.feed("explain analyze retrieve (t.a);")
        text = out.getvalue()
        assert "rows=1 loops=1" in text
        assert "Total: 1 row(s)" in text
