"""Edge cases and failure injection across the whole stack."""

import pytest

from repro import Database
from repro.errors import (
    CatalogError, ExecutionError, SemanticError)


@pytest.fixture
def db():
    database = Database()
    database.execute_script("""
        create t (a = int4, s = text)
        create log (a = int4)
    """)
    return database


class TestNullsThroughRuleNetwork:
    def test_null_attribute_fails_anchored_predicate(self, db):
        db.execute("define rule r if t.a > 5 then append to log(t.a)")
        db.execute('append t(a = null, s = "x")')
        assert db.relation_rows("log") == []

    def test_null_attribute_fails_residual_predicate(self, db):
        db.execute('define rule r if t.s != "x" and t.a > 0 '
                   'then append to log(t.a)')
        db.execute("append t(a = 1, s = null)")
        assert db.relation_rows("log") == []

    def test_null_join_attribute_never_joins(self, db):
        db.execute("create u (a = int4)")
        db.execute("define rule j if t.a = u.a "
                   "then append to log(t.a)")
        db.execute('append t(a = null, s = "x")')
        db.execute("append u(a = null)")
        assert db.relation_rows("log") == []

    def test_non_null_attributes_still_match(self, db):
        db.execute("define rule r if t.a > 5 then append to log(t.a)")
        db.execute('append t(a = 9, s = null)')
        assert db.relation_rows("log") == [(9,)]

    def test_null_replaced_by_value_triggers(self, db):
        db.execute("define rule r if t.a > 5 then append to log(t.a)")
        db.execute('append t(a = null, s = "x")')
        db.execute("replace t (a = 10)")
        assert db.relation_rows("log") == [(10,)]

    def test_value_replaced_by_null_retracts(self, db):
        db._rules_suspended = True
        db.execute("define rule r if t.a > 5 then append to log(t.a)")
        db.execute('append t(a = 9, s = "x")')
        assert len(db.network.pnode("r")) == 1
        db.execute("replace t (a = null)")
        assert len(db.network.pnode("r")) == 0


class TestErrorsDuringRuleActions:
    def test_division_by_zero_in_action_propagates(self, db):
        db.execute("define rule bad on append t "
                   "then append to log(a = t.a / 0)")
        with pytest.raises(ExecutionError):
            db.execute('append t(a = 1, s = "x")')
        # the triggering tuple itself was inserted before the action ran
        assert len(db.relation_rows("t")) == 1

    def test_engine_usable_after_action_error(self, db):
        db.execute("define rule bad on append t "
                   "then append to log(a = t.a / t.a)")
        with pytest.raises(ExecutionError):
            db.execute('append t(a = 0, s = "x")')
        db.execute("remove rule bad")
        db.execute('append t(a = 2, s = "y")')
        assert len(db.relation_rows("t")) == 2

    def test_abort_cleans_up_after_action_error(self, db):
        db.execute("define rule bad on append t "
                   "then append to log(a = t.a / t.a)")
        db.begin()
        with pytest.raises(ExecutionError):
            db.execute('append t(a = 0, s = "x")')
        db.abort()
        assert db.relation_rows("t") == []
        assert db.relation_rows("log") == []


class TestSchemaRuleInteractions:
    def test_destroy_relation_referenced_by_inactive_rule(self, db):
        db.execute("define rule r if t.a > 5 then delete t")
        db.execute("deactivate rule r")
        with pytest.raises(CatalogError):
            db.execute("destroy t")
        db.execute("remove rule r")
        db.execute("destroy t")
        assert not db.catalog.has_relation("t")

    def test_rule_on_missing_relation_rejected(self, db):
        with pytest.raises(SemanticError):
            db.execute("define rule r if nope.a > 5 then delete nope")

    def test_index_created_after_rule_used_by_virtual_memory(self):
        db = Database(virtual_policy="always")
        db.execute("create big (a = int4, k = int4)")
        db.execute("create small (k = int4)")
        db.execute("create log (a = int4)")
        for i in range(30):
            db.execute(f"append big(a = {i}, k = {i % 5})")
        db.execute("define rule j if big.a >= 0 and big.k = small.k "
                   "then append to log(a = big.a)")
        db.execute("define index bigk on big (k) using hash")
        db.execute("append small(k = 3)")     # probes via the new index
        assert len(db.relation_rows("log")) == 6

    def test_retrieve_into_then_rule_on_it(self, db):
        db.execute("append t(a = 1, s = null)")
        db.execute("retrieve into snap (t.a)")
        db.execute("define rule r on append snap "
                   "then append to log(snap.a)")
        db.execute("append snap(a = 7)")
        assert db.relation_rows("log") == [(7,)]


class TestRuleRemovalDuringActivity:
    def test_remove_rule_clears_selection_index(self, db):
        db.execute("define rule r if t.a > 5 then delete t")
        index = db.network.selection_index
        assert len(index) == 1
        db.execute("remove rule r")
        assert len(index) == 0
        db.execute('append t(a = 10, s = "x")')
        assert len(db.relation_rows("t")) == 1

    def test_two_rules_one_removed_other_still_fires(self, db):
        db.execute("define rule keep if t.a > 5 "
                   "then append to log(t.a)")
        db.execute("define rule drop if t.a > 5 then delete t")
        db.execute("remove rule drop")
        db.execute('append t(a = 10, s = "x")')
        assert db.relation_rows("log") == [(10,)]
        assert len(db.relation_rows("t")) == 1


class TestMiscellaneous:
    def test_rule_with_from_var_unused_in_condition(self, db):
        # a from-bound variable ranges even if the condition ignores it:
        # the rule matches the cartesian combination
        db.execute("create u (k = int4)")
        db.execute("append u(k = 1)")
        db.execute("append u(k = 2)")
        db.execute("define rule r if t.a > 0 from x in u "
                   "then append to log(t.a)")
        db.execute('append t(a = 7, s = "s")')
        assert db.relation_rows("log") == [(7,), (7,)]

    def test_self_referencing_action_terminates_via_condition(self, db):
        db.execute("define rule dampen if t.a > 0 "
                   "then replace t (a = t.a - 1) where t.a > 0")
        db.execute('append t(a = 3, s = "x")')
        assert db.relation_rows("t") == [(0, "x")]

    def test_empty_relation_rule_activation(self, db):
        db.execute("define rule r if t.a > 5 then delete t")
        assert len(db.network.pnode("r")) == 0

    def test_bool_attribute_rules(self, db):
        db.execute("create flags (on_call = bool, who = text)")
        db.execute("define rule page if flags.on_call = true "
                   "then append to log(a = 1)")
        db.execute('append flags(on_call = false, who = "a")')
        assert db.relation_rows("log") == []
        db.execute('append flags(on_call = true, who = "b")')
        assert db.relation_rows("log") == [(1,)]

    def test_text_range_rule(self, db):
        """The selection index handles string intervals on any attribute."""
        db.execute('define rule mid if t.s >= "h" and t.s < "q" '
                   'then append to log(t.a)')
        db.execute('append t(a = 1, s = "apple")')
        db.execute('append t(a = 2, s = "mango")')
        db.execute('append t(a = 3, s = "zebra")')
        assert db.relation_rows("log") == [(2,)]

    def test_many_rules_same_predicate(self, db):
        for i in range(20):
            db.execute(f"define rule r{i} if t.a > 5 "
                       f"then append to log(t.a)")
        db.execute('append t(a = 10, s = "x")')
        assert len(db.relation_rows("log")) == 20

    def test_zero_variable_action_command(self, db):
        db.execute('define rule const on append t '
                   'then append to log(a = 42)')
        db.execute('append t(a = 1, s = "x")')
        assert db.relation_rows("log") == [(42,)]

    def test_deeply_cascading_priorities(self, db):
        """Chain a -> b -> c through three relations with priorities."""
        db.execute("create b (v = int4)")
        db.execute("create c (v = int4)")
        db.execute("define rule r1 priority 1 on append t "
                   "then append to b(v = t.a + 1)")
        db.execute("define rule r2 priority 2 on append b "
                   "then append to c(v = b.v + 1)")
        db.execute('append t(a = 1, s = "x")')
        assert db.relation_rows("c") == [(3,)]
