"""Shared pytest fixtures for the Ariel reproduction test suite."""

from __future__ import annotations

from hypothesis import settings

# A leaner default profile: the suite has many property tests and the full
# default of 100 examples each is reserved for CI-style runs.
settings.register_profile("default", max_examples=60, deadline=None)
settings.register_profile("thorough", max_examples=300, deadline=None)
settings.load_profile("default")
