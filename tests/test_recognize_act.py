"""Recognize-act correctness: the cascade guard, undo-backed recovery
from failed rule actions, and agenda stale-notification pruning."""

import pytest

from repro import Database
from repro.core.agenda import Agenda
from repro.core.alpha import MemoryEntry
from repro.core.pnode import Match, PNode
from repro.errors import ExecutionError, RuleError, RuleLoopError
from repro.observe import EngineStats
from repro.storage.tuples import TupleId


def network_state(db):
    """(α-memory entries, P-node match keys) — the network's view of
    the world, for comparison against a rebuilt database."""
    alphas = {}
    for key, memory in sorted(db.network._memories.items()):
        if hasattr(memory, "_entries"):
            alphas[key] = sorted(
                (entry.tid.slot, entry.values)
                for entry in memory.entries())
    pnodes = {
        name: sorted(
            tuple(entry.tid.slot for _, entry in match.bindings)
            for match in db.network.pnode(name).matches())
        for name in db.network.rules}
    return alphas, pnodes


class TestCascadeGuard:
    def _mutual_trigger_db(self, limit):
        db = Database(max_firings=limit)
        db.execute_script("""
            create a (n = int4)
            create b (n = int4)
        """)
        db.execute("define rule ra if a.n > 0 "
                   "then append to b(n = a.n)")
        db.execute("define rule rb if b.n > 0 "
                   "then append to a(n = b.n)")
        return db

    def test_mutual_trigger_raises_not_hangs(self):
        db = self._mutual_trigger_db(40)
        with pytest.raises(RuleLoopError):
            db.execute("append a(n = 1)")

    def test_error_names_the_cycling_rules(self):
        db = self._mutual_trigger_db(40)
        with pytest.raises(RuleLoopError) as err:
            db.execute("append a(n = 1)")
        message = str(err.value)
        assert "ra" in message and "rb" in message
        assert "40" in message

    def test_rule_loop_error_is_a_rule_error(self):
        assert issubclass(RuleLoopError, RuleError)

    def test_network_consistent_after_breach(self):
        db = self._mutual_trigger_db(40)
        with pytest.raises(RuleLoopError):
            db.execute("append a(n = 1)")
        # completed firings persist; the network must agree with the
        # heap exactly (every α-memory entry backed by a stored tuple)
        for relation in ("a", "b"):
            heap = {tid.slot for tid in
                    (s.tid for s in db.catalog.relation(relation).scan())}
            for key, memory in db.network._memories.items():
                if not hasattr(memory, "_entries"):
                    continue
                for entry in memory.entries():
                    if entry.tid.relation == relation:
                        assert entry.tid.slot in heap
        # and the engine stays usable with the rules removed
        db.execute("remove rule ra")
        db.execute("remove rule rb")
        db.execute("append a(n = 5)")

    def test_max_firings_is_settable_after_construction(self):
        db = self._mutual_trigger_db(1000)
        db.max_firings = 10
        assert db.manager.max_rule_cascade == 10
        with pytest.raises(RuleLoopError) as err:
            db.execute("append a(n = 1)")
        assert "10" in str(err.value)

    def test_cascade_depth_counter(self):
        db = self._mutual_trigger_db(40)
        with pytest.raises(RuleLoopError):
            db.execute("append a(n = 1)")
        assert db.stats.get("rules.max_cascade_depth") >= 40


def rebuild_from_heap(db):
    """A fresh database with the same schema, data and rules — the
    ground truth the recovered network must match."""
    from repro import persist
    return persist.loads(persist.dumps(db))


class TestFailedActionRecovery:
    def _failing_db(self, **kwargs):
        db = Database(**kwargs)
        db.execute_script("""
            create t (a = int4)
            create log (a = int4)
        """)
        db.execute("define rule watcher if log.a > 0 "
                   "then append to t(a = 0 - log.a)")
        db.execute("define rule bad on append t if t.a > 10 "
                   "then append to log(a = t.a / (t.a - t.a))")
        return db

    @pytest.mark.parametrize("batch", [False, True])
    def test_network_matches_rebuilt_after_failed_action(self, batch):
        db = self._failing_db(batch_tokens=batch)
        db.execute("append t(a = 1)")
        with pytest.raises(ExecutionError):
            db.execute("append t(a = 99)")
        rebuilt = rebuild_from_heap(db)
        assert sorted(db.relation_rows("t")) \
            == sorted(rebuilt.relation_rows("t"))
        assert network_state(db)[0] == network_state(rebuilt)[0]

    def test_partial_action_effects_rolled_back(self):
        db = Database()
        db.execute_script("""
            create t (a = int4)
            create log (a = int4)
        """)
        # the action writes one log row per match; with a match whose
        # expression faults, earlier rows of the same firing roll back
        db.execute("define rule bad on append t "
                   "then append to log(a = 10 / t.a)")
        with pytest.raises(ExecutionError):
            db.execute("do append t(a = 1) append t(a = 0) end")
        # the firing's partial output is gone from heap and network
        assert db.relation_rows("log") == []
        rebuilt = rebuild_from_heap(db)
        assert network_state(db)[0] == network_state(rebuilt)[0]

    def test_triggering_tuple_persists(self):
        db = self._failing_db()
        with pytest.raises(ExecutionError):
            db.execute("append t(a = 50)")
        assert (50,) in db.relation_rows("t")

    def test_engine_usable_after_recovery(self):
        db = self._failing_db()
        with pytest.raises(ExecutionError):
            db.execute("append t(a = 99)")
        db.execute("remove rule bad")
        db.execute("append t(a = 77)")
        db.execute("append log(a = 3)")          # watcher still fires
        assert (-3,) in db.relation_rows("t")

    def test_explicit_transaction_still_owned_by_abort(self):
        db = self._failing_db()
        db.begin()
        with pytest.raises(ExecutionError):
            db.execute("append t(a = 99)")
        db.abort()
        assert db.relation_rows("t") == []
        rebuilt = rebuild_from_heap(db)
        assert network_state(db)[0] == network_state(rebuilt)[0]


def _rule(name, priority=0.0):
    class Stub:
        pass
    stub = Stub()
    stub.name = name
    stub.priority = priority
    return stub


def _pnode_with_match(name, slot=0, stamp=1):
    pnode = PNode(name, ["t"])
    entry = MemoryEntry(TupleId("t", slot), (slot,))
    pnode.insert(Match.of({"t": entry}), stamp=stamp)
    return pnode


class TestAgendaStalePruning:
    def test_deactivated_rule_notification_dropped(self):
        agenda = Agenda()
        agenda.notify(_rule("gone"))
        live = _rule("live")
        agenda.notify(live)
        pnodes = {"live": _pnode_with_match("live")}
        # "gone" is no longer in the active-rule map (deactivated)
        selected = agenda.select({"live": live}, pnodes.__getitem__)
        assert selected is live
        assert len(agenda) == 1          # stale name pruned

    def test_drained_pnode_notification_dropped(self):
        agenda = Agenda()
        drained = _rule("drained")
        agenda.notify(drained)
        empty = PNode("drained", ["t"])
        selected = agenda.select({"drained": drained},
                                 {"drained": empty}.__getitem__)
        assert selected is None
        assert len(agenda) == 0

    def test_priority_dominates_recency(self):
        agenda = Agenda()
        low = _rule("low", priority=1.0)
        high = _rule("high", priority=5.0)
        agenda.notify(low)
        agenda.notify(high)
        pnodes = {"low": _pnode_with_match("low", stamp=100),
                  "high": _pnode_with_match("high", stamp=1)}
        assert agenda.select({"low": low, "high": high},
                             pnodes.__getitem__) is high

    def test_stamp_breaks_priority_ties(self):
        agenda = Agenda()
        old = _rule("old")
        new = _rule("new")
        agenda.notify(old)
        agenda.notify(new)
        pnodes = {"old": _pnode_with_match("old", stamp=1),
                  "new": _pnode_with_match("new", stamp=2)}
        assert agenda.select({"old": old, "new": new},
                             pnodes.__getitem__) is new

    def test_name_breaks_full_ties(self):
        agenda = Agenda()
        a = _rule("aaa")
        z = _rule("zzz")
        agenda.notify(a)
        agenda.notify(z)
        pnodes = {"aaa": _pnode_with_match("aaa", stamp=1),
                  "zzz": _pnode_with_match("zzz", stamp=1)}
        assert agenda.select({"aaa": a, "zzz": z},
                             pnodes.__getitem__) is z

    def test_stale_pruning_counters(self):
        agenda = Agenda()
        agenda.stats = EngineStats()
        agenda.notify(_rule("gone"))
        agenda.select({}, dict().__getitem__)
        assert agenda.stats.get("agenda.selections") == 1
        assert agenda.stats.get("agenda.stale_dropped") == 1
