"""Tests for CompiledRule: variable classification, gating, actions."""

import pytest

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Schema
from repro.core.rules import CompiledRule
from repro.errors import RuleError
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse_command
from repro.lang.semantic import SemanticAnalyzer


@pytest.fixture
def env():
    catalog = Catalog()
    catalog.create_relation("emp", Schema.of(
        name="text", age="int", sal="float", dno="int", jno="int"))
    catalog.create_relation("dept", Schema.of(dno="int", name="text"))
    catalog.create_relation("job", Schema.of(
        jno="int", title="text", paygrade="int"))
    catalog.create_relation("log", Schema.of(name="text"))
    return catalog, SemanticAnalyzer(catalog)


def compile_rule(env, text):
    catalog, analyzer = env
    cmd = analyzer.analyze(parse_command(text))
    return CompiledRule(cmd, catalog)


class TestVariableClassification:
    def test_single_var_is_simple(self, env):
        rule = compile_rule(env, 'define rule r if emp.sal > 5 '
                                 'then append to log(emp.name)')
        assert rule.variables == ["emp"]
        assert rule.specs["emp"].is_simple
        assert not rule.specs["emp"].is_dynamic

    def test_multi_var_not_simple(self, env):
        rule = compile_rule(env, "define rule r if emp.dno = dept.dno "
                                 "then append to log(emp.name)")
        assert not rule.specs["emp"].is_simple
        assert rule.variables == ["dept", "emp"]

    def test_event_var_gated(self, env):
        rule = compile_rule(env, "define rule r on append emp "
                                 "if emp.sal > 5 and emp.dno = dept.dno "
                                 "then append to log(emp.name)")
        assert rule.specs["emp"].event is not None
        assert rule.specs["emp"].is_dynamic
        assert rule.specs["dept"].event is None
        assert not rule.specs["dept"].is_dynamic

    def test_transition_var_gated(self, env):
        rule = compile_rule(env,
                            "define rule r if emp.sal > previous emp.sal "
                            "then append to log(emp.name)")
        assert rule.specs["emp"].is_transition
        assert rule.specs["emp"].is_dynamic

    def test_new_var_gated(self, env):
        rule = compile_rule(env, "define rule r if new(emp) "
                                 "then append to log(emp.name)")
        assert rule.specs["emp"].is_new
        assert rule.specs["emp"].is_dynamic

    def test_finddemotions_classification(self, env):
        rule = compile_rule(
            env,
            "define rule fd on replace emp(jno) "
            "if newjob.jno = emp.jno and oldjob.jno = previous emp.jno "
            "and newjob.paygrade < oldjob.paygrade "
            "from oldjob in job, newjob in job "
            "then append to log(emp.name)")
        assert rule.variables == ["emp", "newjob", "oldjob"]
        emp = rule.specs["emp"]
        assert emp.event is not None and emp.is_transition
        assert not rule.specs["oldjob"].is_dynamic
        assert rule.var_relations == {
            "emp": "emp", "oldjob": "job", "newjob": "job"}
        assert len(rule.joins) == 3
        assert rule.has_dynamic_variable
        assert rule.dynamic_variables == ["emp"]

    def test_referenced_relations(self, env):
        rule = compile_rule(
            env, "define rule r if emp.dno = dept.dno "
                 "then append to log(emp.name)")
        assert rule.referenced_relations == frozenset({"emp", "dept"})


class TestSelectionsAndJoins:
    def test_selection_anchor_extracted(self, env):
        rule = compile_rule(env,
                            "define rule r if 30000 < emp.sal and "
                            "emp.sal <= 40000 and emp.dno = dept.dno "
                            "then append to log(emp.name)")
        anchor = rule.specs["emp"].analysis.anchor
        assert anchor.attr == "sal"
        assert anchor.interval.low == 30000
        assert not anchor.interval.low_closed
        assert rule.specs["emp"].residual is None

    def test_residual_predicate(self, env):
        rule = compile_rule(env,
                            'define rule r if emp.sal > 5 and '
                            'emp.name != "Bob" '
                            'then append to log(emp.name)')
        spec = rule.specs["emp"]
        assert spec.analysis.anchor is not None
        assert spec.residual is not None
        assert spec.residual_matches(("Ann", 1, 10.0, 1, 1), None)
        assert not spec.residual_matches(("Bob", 1, 10.0, 1, 1), None)

    def test_selection_matches_full_predicate(self, env):
        rule = compile_rule(env,
                            'define rule r if emp.sal > 5 and '
                            'emp.name != "Bob" '
                            'then append to log(emp.name)')
        spec = rule.specs["emp"]
        assert spec.selection_matches(("Ann", 1, 10.0, 1, 1), None)
        assert not spec.selection_matches(("Ann", 1, 1.0, 1, 1), None)

    def test_unsatisfiable_selection_rejected(self, env):
        with pytest.raises(RuleError):
            compile_rule(env, "define rule r if emp.sal > 10 and "
                              "emp.sal < 5 then append to log(emp.name)")

    def test_false_constant_rejected(self, env):
        with pytest.raises(RuleError):
            compile_rule(env, "define rule r if 1 = 2 and emp.sal > 0 "
                              "then append to log(emp.name)")

    def test_join_order_prefers_connected(self, env):
        rule = compile_rule(
            env,
            'define rule r if emp.dno = dept.dno and emp.jno = job.jno '
            'and dept.name = "Sales" then append to log(emp.name)')
        order = rule.join_order_from("dept")
        # emp connects to dept; job connects only through emp
        assert order == ["emp", "job"]

    def test_applicable_joins(self, env):
        rule = compile_rule(
            env,
            "define rule r if emp.dno = dept.dno and emp.jno = job.jno "
            "then append to log(emp.name)")
        assert len(rule.applicable_joins({"emp", "dept"})) == 1
        assert len(rule.applicable_joins({"emp", "dept", "job"})) == 2
        assert rule.applicable_joins({"dept", "job"}) == []


class TestActions:
    def test_block_flattened(self, env):
        rule = compile_rule(
            env,
            "define rule r if emp.sal > 5 then do "
            "append to log(emp.name) "
            "delete emp "
            "end")
        assert len(rule.actions) == 2
        assert rule.actions[0].shared_vars == frozenset({"emp"})
        assert rule.actions[1].targets_pnode

    def test_shared_vars_detection(self, env):
        rule = compile_rule(
            env,
            "define rule r if emp.dno = dept.dno then "
            "append to log(name = dept.name)")
        assert rule.actions[0].shared_vars == frozenset({"dept"})

    def test_unshared_action_command(self, env):
        rule = compile_rule(
            env,
            'define rule r if emp.sal > 5 then '
            'append to log(name = "constant")')
        assert rule.actions[0].shared_vars == frozenset()
        assert not rule.actions[0].targets_pnode

    def test_replace_of_unshared_var_not_primed(self, env):
        rule = compile_rule(
            env,
            "define rule r if emp.sal > 5 then "
            "replace dept (name = emp.name) where dept.dno = emp.dno")
        assert not rule.actions[0].targets_pnode
        assert rule.actions[0].shared_vars == frozenset({"emp"})

    def test_previous_in_action_requires_pair(self, env):
        with pytest.raises(RuleError):
            compile_rule(env,
                         "define rule r if emp.sal > 5 then "
                         "append to log(name = emp.name) "
                         "where previous emp.sal > 1")

    def test_previous_in_action_ok_with_transition(self, env):
        rule = compile_rule(
            env,
            "define rule r if emp.sal > previous emp.sal then "
            "append to log(emp.name) where previous emp.sal > 0")
        assert rule.specs["emp"].is_transition

    def test_previous_in_action_ok_with_replace_event(self, env):
        rule = compile_rule(
            env,
            "define rule r on replace emp(sal) then "
            "append to log(emp.name) where previous emp.sal > 0")
        assert rule.specs["emp"].event is not None

    def test_halt_action(self, env):
        rule = compile_rule(env, "define rule r if emp.sal > 5 then do "
                                 "append to log(emp.name) halt end")
        assert rule.actions[1].command == ast.Halt()
