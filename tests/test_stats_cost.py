"""Unit tests for the statistics module and the cost model."""

import pytest

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Schema
from repro.lang.parser import parse_command
from repro.lang.semantic import SemanticAnalyzer
from repro.planner import cost
from repro.planner.stats import (
    NEQ_DEFAULT, RANGE_DEFAULT, Statistics)


@pytest.fixture
def env():
    catalog = Catalog()
    catalog.create_relation("emp", Schema.of(
        name="text", sal="float", dno="int"))
    emp = catalog.relation("emp")
    for i in range(100):
        emp.insert((f"e{i}", float(i * 100), i % 10))
    return catalog, Statistics(catalog), SemanticAnalyzer(catalog)


def conjunct(env, text):
    catalog, stats, analyzer = env
    cmd = analyzer.analyze(parse_command(
        f"retrieve (emp.name) where {text}"))
    return cmd.where


class TestCardinality:
    def test_cardinality(self, env):
        catalog, stats, _ = env
        assert stats.cardinality("emp") == 100

    def test_distinct_by_scan(self, env):
        catalog, stats, _ = env
        assert stats.distinct("emp", "dno") == 10
        assert stats.distinct("emp", "name") == 100

    def test_distinct_via_hash_index(self, env):
        catalog, stats, _ = env
        catalog.create_index("idno", "emp", "dno", "hash")
        assert stats.distinct("emp", "dno") == 10

    def test_distinct_empty_relation(self, env):
        catalog, stats, _ = env
        catalog.create_relation("empty", Schema.of(x="int"))
        assert stats.distinct("empty", "x") == 1

    def test_distinct_cached_until_cardinality_moves(self, env):
        catalog, stats, _ = env
        first = stats.distinct("emp", "dno")
        emp = catalog.relation("emp")
        emp.insert(("new", 0.0, 999))         # +1% — cache holds
        assert stats.distinct("emp", "dno") == first
        for i in range(50):                    # +50% — cache invalidated
            emp.insert((f"n{i}", 0.0, 100 + i))
        assert stats.distinct("emp", "dno") > first


class TestSelectivity:
    def test_equality_uses_distinct(self, env):
        catalog, stats, _ = env
        sel = stats.selection_selectivity(
            conjunct(env, "emp.dno = 3"), "emp", "emp")
        assert sel == pytest.approx(1 / 10)

    def test_one_sided_range(self, env):
        catalog, stats, _ = env
        sel = stats.selection_selectivity(
            conjunct(env, "emp.sal > 100"), "emp", "emp")
        assert sel == pytest.approx(RANGE_DEFAULT)

    def test_two_sided_range_tighter(self, env):
        catalog, stats, _ = env
        sel = stats.selection_selectivity(
            conjunct(env, "emp.sal > 100 and emp.sal < 300").left,
            "emp", "emp")
        assert sel <= RANGE_DEFAULT

    def test_not_equal(self, env):
        catalog, stats, _ = env
        sel = stats.selection_selectivity(
            conjunct(env, "emp.dno != 3"), "emp", "emp")
        assert sel == pytest.approx(NEQ_DEFAULT)

    def test_scan_cardinality_combines(self, env):
        catalog, stats, _ = env
        rows = stats.scan_cardinality(
            "emp", "emp", [conjunct(env, "emp.dno = 3")])
        assert rows == pytest.approx(10.0)

    def test_join_selectivity_equi(self, env):
        catalog, stats, analyzer = env
        catalog.create_relation("dept", Schema.of(dno="int", name="text"))
        for d in range(10):
            catalog.relation("dept").insert((d, f"d{d}"))
        cmd = analyzer.analyze(parse_command(
            "retrieve (emp.name) where emp.dno = dept.dno"))
        sel = stats.join_selectivity(cmd.where,
                                     {"emp": "emp", "dept": "dept"})
        assert sel == pytest.approx(1 / 10)


class TestCostModel:
    def test_seq_scan(self):
        c, rows = cost.seq_scan_cost(1000, 50)
        assert c == 1000 and rows == 50

    def test_index_beats_seq_for_selective(self):
        seq, _ = cost.seq_scan_cost(10000, 10)
        idx, _ = cost.index_scan_cost(10)
        assert idx < seq

    def test_hash_beats_nlj_for_large_inputs(self):
        nlj, _ = cost.nested_loop_cost(1000, 1000, 1000, 500)
        hsh, _ = cost.hash_join_cost(1000, 1000, 1000, 1000, 500)
        assert hsh < nlj

    def test_index_nlj_beats_hash_for_small_outer(self):
        probe, _ = cost.index_nlj_cost(1, 1, 2.0, 2)
        hsh, _ = cost.hash_join_cost(1, 1, 10000, 10000, 2)
        assert probe < hsh

    def test_merge_join_includes_sort(self):
        merge, _ = cost.merge_join_cost(0, 1000, 0, 1000, 100)
        hsh, _ = cost.hash_join_cost(0, 1000, 0, 1000, 100)
        assert merge > hsh    # sorting costs more than hashing here
