"""Unit and round-trip tests for the parser and deparser.

Every rule and command that appears verbatim in the paper is parsed here.
"""

import pytest

from repro.errors import ParseError
from repro.lang import ast_nodes as ast
from repro.lang.ast_nodes import deparse
from repro.lang.parser import parse_command, parse_script


class TestCreateDestroy:
    def test_create(self):
        cmd = parse_command(
            "create emp (name = text, age = int4, salary = float8, "
            "dno = int4, jno = int4)")
        assert isinstance(cmd, ast.CreateRelation)
        assert cmd.name == "emp"
        assert [c.name for c in cmd.columns] == [
            "name", "age", "salary", "dno", "jno"]
        assert cmd.columns[0].type_name == "text"

    def test_destroy(self):
        cmd = parse_command("destroy emp")
        assert isinstance(cmd, ast.DestroyRelation)
        assert cmd.name == "emp"


class TestAppend:
    def test_named_targets(self):
        cmd = parse_command(
            'append emp(name="Fred", age=27, sal=55000, dno = 12)')
        assert isinstance(cmd, ast.Append)
        assert cmd.relation == "emp"
        assert [t.name for t in cmd.targets] == ["name", "age", "sal",
                                                 "dno"]
        assert cmd.targets[0].expr == ast.Const("Fred")

    def test_append_to(self):
        cmd = parse_command('append to salaryerror(emp.name, '
                            'previous emp.sal, emp.sal)')
        assert cmd.relation == "salaryerror"
        assert cmd.targets[0].name is None
        assert cmd.targets[1].expr == ast.AttrRef("emp", "sal",
                                                  previous=True)

    def test_append_with_where(self):
        cmd = parse_command('append to log(emp.name) where emp.sal > 100')
        assert cmd.where is not None

    def test_append_with_from(self):
        cmd = parse_command(
            'append to log(e.name) from e in emp where e.sal > 100')
        assert cmd.from_items == [ast.FromItem("e", "emp")]


class TestDeleteReplace:
    def test_delete_bare(self):
        cmd = parse_command("delete emp")
        assert isinstance(cmd, ast.Delete)
        assert cmd.target_var == "emp"
        assert cmd.where is None

    def test_delete_where(self):
        cmd = parse_command('delete emp where emp.name = "Bob"')
        assert cmd.where == ast.BinOp("=", ast.AttrRef("emp", "name"),
                                      ast.Const("Bob"))

    def test_delete_from_relation_form(self):
        cmd = parse_command("delete from emp where emp.age > 90")
        assert cmd.target_var == "emp"

    def test_delete_with_from_list(self):
        cmd = parse_command(
            "delete e from e in emp where e.dno = dept.dno")
        assert cmd.target_var == "e"
        assert cmd.from_items == [ast.FromItem("e", "emp")]

    def test_replace(self):
        cmd = parse_command(
            'replace emp (name="bob") where emp.name = "fred"')
        assert isinstance(cmd, ast.Replace)
        assert cmd.target_var == "emp"
        assert cmd.assignments[0].name == "name"

    def test_replace_requires_named_assignments(self):
        with pytest.raises(ParseError):
            parse_command('replace emp ("bob")')

    def test_paper_replace_with_join(self):
        cmd = parse_command(
            'replace emp (sal = 30000) where emp.dno = dept.dno '
            'and dept.name = "Sales"')
        assert cmd.assignments[0].expr == ast.Const(30000)
        assert isinstance(cmd.where, ast.BinOp)
        assert cmd.where.op == "and"


class TestRetrieve:
    def test_simple(self):
        cmd = parse_command("retrieve (emp.name, emp.salary)")
        assert isinstance(cmd, ast.Retrieve)
        assert len(cmd.targets) == 2

    def test_into(self):
        cmd = parse_command("retrieve into rich (emp.name) "
                            "where emp.salary > 90000")
        assert cmd.into == "rich"

    def test_named_result_columns(self):
        cmd = parse_command("retrieve (who = emp.name, emp.age)")
        assert cmd.targets[0].name == "who"
        assert cmd.targets[1].name is None

    def test_all(self):
        cmd = parse_command("retrieve (emp.all)")
        assert cmd.targets[0].expr == ast.AllRef("emp")

    def test_from_clause(self):
        cmd = parse_command(
            "retrieve (oldjob.title) from oldjob in job, newjob in job "
            "where oldjob.jno != newjob.jno")
        assert len(cmd.from_items) == 2
        assert cmd.from_items[1] == ast.FromItem("newjob", "job")


class TestBlock:
    def test_paper_block(self):
        cmd = parse_command(
            'do '
            'append emp(name="", age=27, sal=55000, dno = 12) '
            'replace emp (name="bob") where emp.name = "" '
            'end')
        assert isinstance(cmd, ast.Block)
        assert len(cmd.commands) == 2

    def test_unterminated(self):
        with pytest.raises(ParseError):
            parse_command("do append x(1)")

    def test_empty_block(self):
        with pytest.raises(ParseError):
            parse_command("do end")


class TestExpressions:
    def parse_where(self, text):
        return parse_command(f"delete emp where {text}").where

    def test_precedence_arith(self):
        expr = self.parse_where("emp.a + emp.b * 2 = 10")
        assert expr.op == "="
        assert expr.left.op == "+"
        assert expr.left.right.op == "*"

    def test_precedence_logic(self):
        expr = self.parse_where("emp.a = 1 or emp.b = 2 and emp.c = 3")
        assert expr.op == "or"
        assert expr.right.op == "and"

    def test_parentheses(self):
        expr = self.parse_where("(emp.a = 1 or emp.b = 2) and emp.c = 3")
        assert expr.op == "and"
        assert expr.left.op == "or"

    def test_not(self):
        expr = self.parse_where("not emp.a = 1")
        assert expr == ast.UnaryOp(
            "not", ast.BinOp("=", ast.AttrRef("emp", "a"), ast.Const(1)))

    def test_unary_minus_folds_literals(self):
        expr = self.parse_where("emp.a = -5")
        assert expr.right == ast.Const(-5)

    def test_unary_minus_on_expressions(self):
        expr = self.parse_where("emp.a = -emp.b")
        assert expr.right == ast.UnaryOp("-", ast.AttrRef("emp", "b"))

    def test_double_negation_round_trips(self):
        from repro.lang.ast_nodes import deparse
        expr = self.parse_where("emp.a = -(-emp.b)")
        assert expr.right == ast.UnaryOp(
            "-", ast.UnaryOp("-", ast.AttrRef("emp", "b")))
        tree = parse_command("delete emp where emp.a = -(-emp.b)")
        assert parse_command(deparse(tree)) == tree

    def test_previous(self):
        expr = self.parse_where("emp.sal > 1.1 * previous emp.sal")
        assert expr.right.right == ast.AttrRef("emp", "sal", previous=True)

    def test_booleans(self):
        expr = self.parse_where("emp.flag = true")
        assert expr.right == ast.Const(True)

    def test_keyword_attribute_names(self):
        expr = self.parse_where("emp.priority = 1")
        assert expr.left == ast.AttrRef("emp", "priority")


class TestDefineRule:
    def test_nobobs(self):
        cmd = parse_command(
            'define rule NoBobs on append emp if emp.name = "Bob" '
            'then delete emp')
        assert isinstance(cmd, ast.DefineRule)
        assert cmd.name == "NoBobs"
        assert cmd.event == ast.EventSpec(ast.EventKind.APPEND, "emp")
        assert isinstance(cmd.action, ast.Delete)

    def test_nobobs2_pattern_only(self):
        cmd = parse_command(
            'define rule NoBobs2 if emp.name = "Bob" then delete emp')
        assert cmd.event is None
        assert cmd.condition is not None

    def test_raiselimit(self):
        cmd = parse_command(
            "define rule raiselimit "
            "if emp.sal > 1.1 * previous emp.sal "
            "then append to salaryerror(emp.name, previous emp.sal, "
            "emp.sal)")
        assert cmd.name == "raiselimit"
        assert isinstance(cmd.action, ast.Append)

    def test_toyraiselimit(self):
        cmd = parse_command(
            'define rule toyraiselimit '
            'if emp.sal > 1.1 * previous emp.sal '
            'and emp.dno = dept.dno and dept.name = "Toy" '
            'then append to toysalaryerror(emp.name, previous emp.sal, '
            'emp.sal)')
        conjuncts = []
        node = cmd.condition
        while isinstance(node, ast.BinOp) and node.op == "and":
            conjuncts.append(node.right)
            node = node.left
        conjuncts.append(node)
        assert len(conjuncts) == 3

    def test_finddemotions_all_three_condition_types(self):
        cmd = parse_command(
            "define rule finddemotions "
            "on replace emp(jno) "
            "if newjob.jno = emp.jno "
            "and oldjob.jno = previous emp.jno "
            "and newjob.paygrade < oldjob.paygrade "
            "from oldjob in job, newjob in job "
            "then append to demotions (name=emp.name, dno=emp.dno, "
            "oldjno=oldjob.jno, newjno=newjob.jno)")
        assert cmd.event == ast.EventSpec(ast.EventKind.REPLACE, "emp",
                                          ("jno",))
        assert len(cmd.from_items) == 2
        assert isinstance(cmd.action, ast.Append)

    def test_salesclerkrule2_block_action(self):
        cmd = parse_command(
            'define rule SalesClerkRule2 '
            'if emp.sal > 30000 and emp.jno = job.jno '
            'and job.title = "Clerk" '
            'then do '
            'append to salarywatch(emp.all) '
            'replace emp (sal = 30000) where emp.dno = dept.dno '
            'and dept.name = "Sales" '
            'replace emp (sal = 25000) where emp.dno = dept.dno '
            'and dept.name != "Sales" '
            'end')
        assert isinstance(cmd.action, ast.Block)
        assert len(cmd.action.commands) == 3

    def test_priority_and_ruleset(self):
        cmd = parse_command(
            "define rule r1 in watchers priority 5 if emp.age > 100 "
            "then delete emp")
        assert cmd.ruleset == "watchers"
        assert cmd.priority == 5.0

    def test_negative_priority(self):
        cmd = parse_command(
            "define rule r1 priority -2 if emp.age > 100 then delete emp")
        assert cmd.priority == -2.0

    def test_new_condition(self):
        cmd = parse_command(
            "define rule watcher if new(emp) then append to log(emp.name)")
        assert cmd.condition == ast.NewCall("emp")

    def test_event_only_rule(self):
        cmd = parse_command(
            "define rule ondel on delete from emp "
            "then append to log(emp.name)")
        assert cmd.event.kind is ast.EventKind.DELETE
        assert cmd.condition is None


class TestOtherCommands:
    def test_define_index(self):
        cmd = parse_command("define index empsal on emp (sal) using btree")
        assert cmd == ast.DefineIndex("empsal", "emp", "sal", "btree")

    def test_define_index_default_kind(self):
        cmd = parse_command("define index empsal on emp (sal)")
        assert cmd.kind == "btree"

    def test_remove_rule_and_index(self):
        assert parse_command("remove rule r1") == ast.RemoveRule("r1")
        assert parse_command("remove index i1") == ast.RemoveIndex("i1")

    def test_activate_deactivate(self):
        assert parse_command("activate rule r1") == ast.ActivateRule("r1")
        assert parse_command("deactivate rule r1") == \
            ast.DeactivateRule("r1")

    def test_halt(self):
        assert parse_command("halt") == ast.Halt()

    def test_script(self):
        cmds = parse_script("create t (a = int)\nappend t(a=1)\n"
                            "append t(a=2)")
        assert len(cmds) == 3

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_command("halt halt")

    def test_unknown_command(self):
        with pytest.raises(ParseError):
            parse_command("frobnicate emp")

    def test_not_a_command(self):
        with pytest.raises(ParseError):
            parse_command("42")


PAPER_COMMANDS = [
    "create emp (name = text, age = int4, salary = float8, dno = int4, "
    "jno = int4)",
    'append emp(name="Fred", age=27, sal=55000, dno = 12)',
    'replace emp (name="bob") where emp.name = "fred"',
    'define rule NoBobs on append emp if emp.name = "Bob" then delete emp',
    'define rule NoBobs2 if emp.name = "Bob" then delete emp',
    "define rule raiselimit if emp.sal > 1.1 * previous emp.sal then "
    "append to salaryerror(emp.name, previous emp.sal, emp.sal)",
    'define rule SalesClerkRule if emp.sal > 30000 and emp.dno = dept.dno '
    'and dept.name = "Sales" and emp.jno = job.jno and job.title = "Clerk" '
    'then append to watch(emp.name)',
    "define rule finddemotions on replace emp(jno) if newjob.jno = emp.jno "
    "and oldjob.jno = previous emp.jno and newjob.paygrade < "
    "oldjob.paygrade from oldjob in job, newjob in job then append to "
    "demotions (name=emp.name, dno=emp.dno, oldjno=oldjob.jno, "
    "newjno=newjob.jno)",
    "retrieve (emp.name) where emp.salary > 50000 and emp.age < 40",
    "do append t(a=1) delete t where t.a = 2 end",
]


@pytest.mark.parametrize("text", PAPER_COMMANDS)
def test_deparse_round_trip(text):
    """deparse(parse(x)) reparses to an equal tree."""
    tree = parse_command(text)
    rendered = deparse(tree)
    assert parse_command(rendered) == tree


def test_deparse_parenthesizes_correctly():
    tree = parse_command(
        "delete emp where (emp.a + emp.b) * 2 = emp.c - (emp.d - 1)")
    assert parse_command(deparse(tree)) == tree
