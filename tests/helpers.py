"""Test harness: a minimal engine (no rule system) for planner/executor
tests, plus shared schema builders for the paper's example relations."""

from __future__ import annotations

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Schema
from repro.executor.executor import ExecutionContext, Executor
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse_command
from repro.lang.semantic import SemanticAnalyzer
from repro.planner.optimizer import Optimizer


class MiniEngine:
    """Parse/analyze/plan/execute pipeline without rules or transitions."""

    def __init__(self):
        self.catalog = Catalog()
        self.analyzer = SemanticAnalyzer(self.catalog)
        self.optimizer = Optimizer(self.catalog)
        self.context = ExecutionContext(self.catalog)
        self.executor = Executor(self.context, self.optimizer)

    def run(self, text: str):
        command = self.analyzer.analyze(parse_command(text))
        return self.run_ast(command)

    def run_ast(self, command: ast.Command):
        if isinstance(command, ast.CreateRelation):
            schema = Schema.of(**{c.name: c.type_name
                                  for c in command.columns})
            return self.catalog.create_relation(command.name, schema)
        if isinstance(command, ast.DestroyRelation):
            return self.catalog.destroy_relation(command.name)
        if isinstance(command, ast.DefineIndex):
            return self.catalog.create_index(
                command.name, command.relation, command.attribute,
                command.kind)
        if isinstance(command, ast.RemoveIndex):
            return self.catalog.destroy_index(command.name)
        if isinstance(command, ast.Block):
            results = [self.run_ast(c) for c in command.commands]
            return results[-1]
        planned = self.optimizer.plan_command(command)
        return self.executor.run(planned)

    def plan(self, text: str):
        command = self.analyzer.analyze(parse_command(text))
        return self.optimizer.plan_command(command)


def paper_engine() -> MiniEngine:
    """An engine loaded with the paper's emp/dept/job example schema and
    a small data set (the paper used 25/7/5 tuples; we use a comparable
    deterministic set)."""
    engine = MiniEngine()
    engine.run("create emp (name = text, age = int4, sal = float8, "
               "dno = int4, jno = int4)")
    engine.run("create dept (dno = int4, name = text, building = text)")
    engine.run("create job (jno = int4, title = text, paygrade = int4)")
    depts = [(1, "Toy", "A"), (2, "Sales", "B"), (3, "Research", "C"),
             (4, "Shipping", "A"), (5, "Accounting", "B"),
             (6, "Security", "C"), (7, "Cafeteria", "A")]
    for dno, name, building in depts:
        engine.run(f'append dept(dno={dno}, name="{name}", '
                   f'building="{building}")')
    jobs = [(1, "Clerk", 3), (2, "Engineer", 6), (3, "Manager", 8),
            (4, "Guard", 2), (5, "Cook", 1)]
    for jno, title, paygrade in jobs:
        engine.run(f'append job(jno={jno}, title="{title}", '
                   f'paygrade={paygrade})')
    for i in range(25):
        engine.run(f'append emp(name="emp{i:02d}", age={20 + i % 40}, '
                   f'sal={20000 + 2000 * i}, dno={1 + i % 7}, '
                   f'jno={1 + i % 5})')
    return engine
