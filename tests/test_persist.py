"""Tests for null literals, database dump/load, and the firing trace."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro import Database
from repro.errors import SemanticError
from repro import persist


def make_db():
    db = Database()
    db.execute_script("""
        create emp (name = text, age = int4, sal = float8, ok = bool)
        create log (name = text)
        append emp(name="Ann", age=30, sal=50000.5, ok=true)
        append emp(name="quo\\"ted", age=2, sal=1.0, ok=false)
        append emp(name="partial")
    """)
    db.execute('define rule watch in watchers priority 2 '
               'if emp.sal > 40000 then append to log(emp.name)')
    db.execute("define rule ondel on delete emp "
               "then append to log(emp.name)")
    return db


class TestNullLiteral:
    def test_append_null(self):
        db = Database()
        db.execute("create t (a = int4, b = text)")
        db.execute("append t(a = null, b = null)")
        assert db.relation_rows("t") == [(None, None)]

    def test_null_comparison_never_true(self):
        db = Database()
        db.execute("create t (a = int4)")
        db.execute("append t(a = null)")
        db.execute("append t(a = 5)")
        assert db.query("retrieve (t.a) where t.a = null").rows == []
        assert db.query("retrieve (t.a) where t.a != null").rows == []

    def test_null_in_replace(self):
        db = Database()
        db.execute("create t (a = int4)")
        db.execute("append t(a = 5)")
        db.execute("replace t (a = null)")
        assert db.relation_rows("t") == [(None,)]

    def test_null_arithmetic_type_checks(self):
        db = Database()
        db.execute("create t (a = int4)")
        db.execute("append t(a = 1)")
        assert db.query("retrieve (x = t.a + null)").rows == [(None,)]

    def test_null_not_boolean_misuse(self):
        db = Database()
        db.execute("create t (a = int4, s = text)")
        with pytest.raises(SemanticError):
            db.execute('retrieve (t.a) where t.s + 1 = null')

    def test_round_trip_deparse(self):
        from repro.lang.ast_nodes import deparse
        from repro.lang.parser import parse_command
        tree = parse_command("append t(a = null)")
        assert "null" in deparse(tree)
        assert parse_command(deparse(tree)) == tree


class TestDumpLoad:
    def test_round_trip_data(self):
        db = make_db()
        restored = persist.loads(persist.dumps(db))
        assert sorted(restored.relation_rows("emp")) == sorted(
            db.relation_rows("emp"))
        assert sorted(restored.relation_rows("log")) == sorted(
            db.relation_rows("log"))

    def test_round_trip_schema_and_types(self):
        db = make_db()
        restored = persist.loads(persist.dumps(db))
        assert restored.catalog.relation("emp").schema == \
            db.catalog.relation("emp").schema

    def test_round_trip_indexes(self):
        db = make_db()
        db.execute("define index isal on emp (sal) using btree")
        restored = persist.loads(persist.dumps(db))
        info = restored.catalog.index_info("isal")
        assert info.relation == "emp" and info.kind == "btree"

    def test_round_trip_rules_active(self):
        db = make_db()
        restored = persist.loads(persist.dumps(db))
        assert restored.manager.rule("watch").active
        assert restored.manager.rule("watch").definition.priority == 2.0
        assert "watch" in restored.catalog.ruleset("watchers").rule_names
        # the restored rule actually works
        restored.execute('append emp(name="New", age=1, sal=99999, '
                         'ok=true)')
        assert ("New",) in restored.relation_rows("log")

    def test_round_trip_inactive_rule(self):
        db = make_db()
        db.execute("deactivate rule watch")
        restored = persist.loads(persist.dumps(db))
        assert not restored.manager.rule("watch").active

    def test_load_does_not_fire_on_historical_data(self):
        """Dumped log contents must not be duplicated by the load: data
        loads before rules, and pattern-rule priming consumes matches
        only once."""
        db = Database()
        db.execute("create t (a = int4)")
        db.execute("create log (a = int4)")
        db.execute("define rule r on append t "
                   "then append to log(a = t.a)")
        db.execute("append t(a = 1)")
        assert db.relation_rows("log") == [(1,)]
        restored = persist.loads(persist.dumps(db))
        assert restored.relation_rows("log") == [(1,)]

    def test_special_characters_round_trip(self):
        db = Database()
        db.execute("create t (s = text)")
        db.catalog.relation("t").insert(('line\nbreak\t"quote"\\',))
        restored = persist.loads(persist.dumps(db))
        assert restored.relation_rows("t") == [('line\nbreak\t"quote"\\',)]

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.text(max_size=40), min_size=1, max_size=5))
    def test_arbitrary_strings_round_trip(self, strings):
        """The literal codec is total over str: any Python string —
        control characters, ``\\r``, quotes, backslashes — survives
        dumps → loads unchanged (the WAL reuses this codec, so this is
        also the WAL's value-fidelity guarantee)."""
        db = Database()
        db.execute("create t (s = text)")
        for value in strings:
            db.catalog.relation("t").insert((value,))
        restored = persist.loads(persist.dumps(db))
        assert sorted(restored.relation_rows("t")) == sorted(
            (value,) for value in strings)

    def test_carriage_return_survives_file_round_trip(self, tmp_path):
        """``\\r`` must survive the *file* path too: without escaping,
        universal-newline translation on read would corrupt it."""
        db = Database()
        db.execute("create t (s = text)")
        for value in ("a\rb", "a\r\nb", "\r", "\x00\x1b[0m"):
            db.catalog.relation("t").insert((value,))
        path = tmp_path / "dump.arl"
        persist.dump(db, path)
        restored = persist.load(path)
        assert sorted(restored.relation_rows("t")) == sorted(
            [("a\rb",), ("a\r\nb",), ("\r",), ("\x00\x1b[0m",)])

    def test_null_values_round_trip(self):
        db = Database()
        db.execute("create t (a = int4, b = text)")
        db.execute("append t(a = null, b = null)")
        restored = persist.loads(persist.dumps(db))
        assert restored.relation_rows("t") == [(None, None)]

    def test_dump_file(self, tmp_path):
        db = make_db()
        path = tmp_path / "dump.arl"
        persist.dump(db, path)
        restored = persist.load(path)
        assert len(restored.relation_rows("emp")) == 3

    def test_non_finite_floats_round_trip(self):
        db = Database()
        db.execute("create t (a = float8)")
        db.catalog.relation("t").insert((float("inf"),))
        db.catalog.relation("t").insert((float("-inf"),))
        db.catalog.relation("t").insert((float("nan"),))
        restored = persist.loads(persist.dumps(db))
        values = [row[0] for row in restored.relation_rows("t")]
        assert values[0] == float("inf")
        assert values[1] == float("-inf")
        assert math.isnan(values[2])

    def test_load_with_network_choice(self):
        db = make_db()
        restored = persist.loads(persist.dumps(db), network="rete")
        assert restored.network.network_name == "Rete"


class TestFiringTrace:
    def test_trace_records_firings(self):
        db = Database()
        db.execute("create t (a = int4)")
        db.execute("create log (a = int4)")
        db.execute("define rule r priority 3 on append t "
                   "then append to log(a = t.a)")
        db.execute("append t(a = 1)")
        db.execute("append t(a = 2)")
        assert len(db.firing_log) == 2
        record = db.firing_log[0]
        assert record.rule_name == "r"
        assert record.priority == 3.0
        assert record.match_count == 1
        assert record.sequence == 1
        assert "r" in str(record)

    def test_trace_disabled(self):
        db = Database()
        db.trace_firings = False
        db.execute("create t (a = int4)")
        db.execute("define rule r on append t then delete t")
        db.execute("append t(a = 1)")
        assert db.firing_log == []
        assert db.firings == 1

    def test_set_oriented_match_count(self):
        db = Database()
        db.execute("create t (a = int4)")
        db.execute("create log (a = int4)")
        db.execute("define rule r if new(t) "
                   "then append to log(a = t.a)")
        db.execute("do append t(a=1) append t(a=2) append t(a=3) end")
        assert len(db.firing_log) == 1
        assert db.firing_log[0].match_count == 3


class TestFloatFidelity:
    """Dumps must round-trip floats exactly, non-finite values included."""

    EDGE_FLOATS = [0.1, 1e-7, 1.5e300, 5e-324, -0.0, 123456.789,
                   float("inf"), float("-inf"), float("nan")]

    def _dump_of(self, values):
        db = Database()
        db.execute("create t (a = float8)")
        for value in values:
            db.catalog.relation("t").insert((value,))
        return persist.dumps(db)

    def test_edge_floats_dump_load_dump_idempotent(self):
        first = self._dump_of(self.EDGE_FLOATS)
        second = persist.dumps(persist.loads(first))
        assert first == second

    def test_exact_bit_pattern_round_trip(self):
        import struct

        restored = persist.loads(self._dump_of(self.EDGE_FLOATS))
        values = [row[0] for row in restored.relation_rows("t")]
        assert len(values) == len(self.EDGE_FLOATS)
        for original, loaded in zip(self.EDGE_FLOATS, values):
            assert struct.pack("<d", original) \
                == struct.pack("<d", loaded)

    def test_scientific_literal_overflowing_to_inf(self):
        db = Database()
        db.execute("create t (a = float8)")
        db.execute("append t(a = 1e999)")     # parses as float('inf')
        assert db.relation_rows("t") == [(float("inf"),)]
        dumped = persist.dumps(db)
        assert "inf" in dumped

    @given(value=st.floats(allow_nan=True, allow_infinity=True))
    @settings(max_examples=200, deadline=None)
    def test_property_dump_load_dump_idempotent(self, value):
        first = self._dump_of([value])
        second = persist.dumps(persist.loads(first))
        assert first == second
