"""DESIGN.md invariant 2: the three networks are observationally equal.

For random rule sets and random update sequences, A-TREAT (all-virtual
and auto policies), plain TREAT (all stored) and Rete must leave
identical P-node contents and fire identically — the paper's section 4.2
claim that a virtual α-memory "implicitly contains exactly the same set
of tokens as a stored α-memory node".

Rule firing is disabled here (rules write to inert log tables and we
compare the logs) — the point is condition testing equivalence, including
self-join multiplicities.
"""

from hypothesis import given, settings, strategies as st

from repro import Database


RULES = [
    # pattern selection only (simple-α)
    'define rule r_sel if t.a > 5 then append to log(tag = "sel")',
    # pattern join
    'define rule r_join if t.a = u.b then append to log(tag = "join")',
    # self join with equality
    ("define rule r_self if x.a = y.a from x in t, y in t "
     'then append to log(tag = "self")'),
    # join with selections on both sides
    ("define rule r_both if t.a > 2 and u.b < 8 and t.a = u.b "
     'then append to log(tag = "both")'),
    # event rule
    ('define rule r_ev on append t if t.a >= 0 '
     'then append to log(tag = "ev")'),
    # transition rule
    ("define rule r_tr if t.a > previous t.a "
     'then append to log(tag = "tr")'),
    # on delete
    ('define rule r_del on delete t then append to log(tag = "del")'),
    # three-way
    ("define rule r_three if t.a = u.b and u.b = v.c "
     'then append to log(tag = "three")'),
]


def build(network, policy, rules, batch_tokens=False):
    db = Database(network=network, virtual_policy=policy,
                  batch_tokens=batch_tokens)
    db.execute("create t (a = int4, k = int4)")
    db.execute("create u (b = int4, k = int4)")
    db.execute("create v (c = int4, k = int4)")
    db.execute("create log (tag = text)")
    for i, rule in enumerate(rules):
        db.execute(rule)
    return db


def pnode_snapshot(db):
    """P-node contents as comparable value sets."""
    out = {}
    for name, rule in db.network.rules.items():
        matches = set()
        for match in db.network.pnode(name).matches():
            matches.add(tuple(
                (var, entry.values, entry.old_values)
                for var, entry in match.bindings))
        out[name] = frozenset(matches)
    return out


_op = st.one_of(
    st.tuples(st.just("insert"), st.sampled_from("tuv"),
              st.integers(0, 10)),
    st.tuples(st.just("delete"), st.sampled_from("tuv"),
              st.integers(0, 30)),
    st.tuples(st.just("modify"), st.sampled_from("tuv"),
              st.integers(0, 30), st.integers(0, 10)),
    st.tuples(st.just("block"), st.integers(0, 10), st.integers(0, 10)),
)


def apply_ops(db, ops):
    counters = {"t": 0, "u": 0, "v": 0}
    for op in ops:
        if op[0] == "insert":
            _, rel, value = op
            col = {"t": "a", "u": "b", "v": "c"}[rel]
            counters[rel] += 1
            db.execute(f"append {rel}({col} = {value}, "
                       f"k = {counters[rel]})")
        elif op[0] == "delete":
            _, rel, k = op
            db.execute(f"delete {rel} where {rel}.k = {k % 12}")
        elif op[0] == "modify":
            _, rel, k, value = op
            col = {"t": "a", "u": "b", "v": "c"}[rel]
            db.execute(f"replace {rel} ({col} = {value}) "
                       f"where {rel}.k = {k % 12}")
        else:
            _, a, b = op
            counters["t"] += 2
            db.execute(
                f"do "
                f"append t(a = {a}, k = {counters['t'] - 1}) "
                f"replace t (a = {b}) where t.k = {counters['t'] - 1} "
                f"append t(a = {b}, k = {counters['t']}) "
                f"delete t where t.k = {counters['t']} "
                f"end")


@settings(max_examples=30, deadline=None)
@given(st.lists(_op, min_size=1, max_size=14),
       st.sets(st.integers(0, len(RULES) - 1), min_size=1, max_size=4))
def test_networks_equivalent(ops, rule_indexes):
    rules = [RULES[i] for i in sorted(rule_indexes)]
    databases = [
        build("a-treat", "always", rules),
        build("a-treat", "auto", rules),
        build("treat", "never", rules),
        build("rete", "never", rules),
        build("rete", "always", rules),   # Rete with virtual α-memories
    ]
    for db in databases:
        apply_ops(db, ops)
    reference_log = sorted(databases[0].relation_rows("log"))
    reference_t = sorted(databases[0].relation_rows("t"))
    for db in databases[1:]:
        assert sorted(db.relation_rows("log")) == reference_log
        assert sorted(db.relation_rows("t")) == reference_t
        assert db.firings == databases[0].firings


NETWORK_CONFIGS = [
    ("a-treat", "always"),
    ("a-treat", "auto"),
    ("treat", "never"),
    ("rete", "never"),
    ("rete", "always"),
]


@settings(max_examples=30, deadline=None)
@given(st.lists(_op, min_size=1, max_size=14),
       st.sets(st.integers(0, len(RULES) - 1), min_size=1, max_size=4),
       st.sampled_from(NETWORK_CONFIGS))
def test_batched_propagation_equivalent(ops, rule_indexes, config):
    """Batched Δ-set propagation (``batch_tokens=True``, the whole
    transition routed through ``process_tokens`` at the boundary) is
    observationally identical to per-mutation routing: same relation
    contents, same firing count, same firing log — for every network
    kind and virtual-memory policy."""
    network, policy = config
    rules = [RULES[i] for i in sorted(rule_indexes)]
    per_token = build(network, policy, rules, batch_tokens=False)
    batched = build(network, policy, rules, batch_tokens=True)
    for db in (per_token, batched):
        apply_ops(db, ops)
    assert sorted(batched.relation_rows("log")) == \
        sorted(per_token.relation_rows("log"))
    assert sorted(batched.relation_rows("t")) == \
        sorted(per_token.relation_rows("t"))
    assert batched.firings == per_token.firings
    assert [(r.rule_name, r.match_count) for r in batched.firing_log] == \
        [(r.rule_name, r.match_count) for r in per_token.firing_log]


@settings(max_examples=25, deadline=None)
@given(st.lists(_op, min_size=1, max_size=12),
       st.sampled_from(NETWORK_CONFIGS))
def test_batched_pnodes_match_per_token(ops, config):
    """With firing suspended (P-nodes accumulate instead of being
    consumed), batched and per-token propagation build identical P-node
    contents — the strongest form of the equivalence, below the level
    rule firing could mask."""
    network, policy = config
    per_token = build(network, policy, RULES, batch_tokens=False)
    batched = build(network, policy, RULES, batch_tokens=True)
    for db in (per_token, batched):
        db._rules_suspended = True
        apply_ops(db, ops)
        db.hooks.flush_tokens()
    assert pnode_snapshot(batched) == pnode_snapshot(per_token)


@settings(max_examples=25, deadline=None)
@given(st.lists(_op, min_size=1, max_size=12),
       st.sampled_from(["always", "never", "auto"]))
def test_pnodes_match_fresh_rematch(ops, policy):
    """DESIGN.md invariant 3: after arbitrary updates, a pure-pattern
    rule's incrementally maintained P-node equals what activating the
    same rule from scratch over the final data computes.

    Firing is suspended so P-nodes accumulate instead of being consumed.
    """
    rules = [RULES[1], RULES[2], RULES[3], RULES[7]]   # pattern only
    db = build("a-treat", policy, rules)
    db._rules_suspended = True
    apply_ops(db, ops)
    incremental = pnode_snapshot(db)

    fresh = Database(network="a-treat", virtual_policy=policy)
    fresh._rules_suspended = True
    fresh.execute("create t (a = int4, k = int4)")
    fresh.execute("create u (b = int4, k = int4)")
    fresh.execute("create v (c = int4, k = int4)")
    fresh.execute("create log (tag = text)")
    for rel in "tuv":
        col = {"t": "a", "u": "b", "v": "c"}[rel]
        for values in db.relation_rows(rel):
            fresh.execute(f"append {rel}({col} = {values[0]}, "
                          f"k = {values[1]})")
    for rule in rules:
        fresh.execute(rule)
    assert pnode_snapshot(fresh) == incremental
