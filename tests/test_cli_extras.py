"""Tests for the added shell meta-commands (\\trace, \\dump, \\load) and
the demo script."""

import io
import pathlib

import pytest

from repro import Database
from repro.cli import Shell


@pytest.fixture
def shell():
    out = io.StringIO()
    return Shell(Database(), out=out), out


def feed(sh, *lines):
    for line in lines:
        sh.feed(line)


class TestTraceMeta:
    def test_empty_trace(self, shell):
        sh, out = shell
        feed(sh, "\\trace")
        assert "no firings recorded" in out.getvalue()

    def test_trace_shows_firings(self, shell):
        sh, out = shell
        feed(sh, "create t (a = int4);",
             "define rule r on append t then delete t;",
             "append t(a = 1);",
             "\\trace")
        assert "#1 r" in out.getvalue()


class TestDumpLoadMeta:
    def test_dump_and_load(self, shell, tmp_path):
        sh, out = shell
        path = tmp_path / "db.arl"
        feed(sh, "create t (a = int4);",
             "append t(a = 7);",
             f"\\dump {path}",
             f"\\load {path}",
             "retrieve (t.a);")
        text = out.getvalue()
        assert "dumped to" in text
        assert "loaded" in text
        assert "(1 row(s))" in text

    def test_usage_messages(self, shell):
        sh, out = shell
        feed(sh, "\\dump", "\\load")
        assert out.getvalue().count("usage:") == 2

    def test_load_error_reported(self, shell):
        sh, out = shell
        feed(sh, "\\load /nonexistent/path.arl")
        assert "error:" in out.getvalue()
        assert sh.feed("\\net") is True      # shell survives

    def test_failed_load_keeps_session_database(self, shell, tmp_path):
        """A malformed dump must not clobber the live session: the load
        happens into a fresh database and only swaps in on success."""
        sh, out = shell
        bad = tmp_path / "bad.arl"
        bad.write_text("create t (a = int4)\nthis is not a statement\n")
        feed(sh, "create keep (a = int4);",
             "append keep(a = 42);",
             f"\\load {bad}")
        text = out.getvalue()
        assert "error: could not load" in text
        assert "unchanged" in text
        out.truncate(0), out.seek(0)
        feed(sh, "retrieve (keep.a);")
        assert "42" in out.getvalue()

    def test_failed_load_unreadable_file(self, shell, tmp_path):
        sh, out = shell
        feed(sh, "create keep (a = int4);",
             f"\\load {tmp_path}")           # a directory, not a file
        assert "error: could not load" in out.getvalue()
        out.truncate(0), out.seek(0)
        feed(sh, "\\d keep")
        assert "a" in out.getvalue()


class TestDurabilityMeta:
    def test_wal_status_in_memory(self, shell):
        sh, out = shell
        feed(sh, "\\wal")
        assert "in-memory" in out.getvalue()

    def test_wal_status_durable(self, tmp_path):
        out = io.StringIO()
        db = Database(durable_path=tmp_path / "state")
        sh = Shell(db, out=out)
        feed(sh, "create t (a = int4);", "append t(a = 1);", "\\wal")
        text = out.getvalue()
        assert "wal" in text
        assert "fsync" in text
        assert "records" in text
        db.close()

    def test_checkpoint_meta(self, tmp_path):
        out = io.StringIO()
        db = Database(durable_path=tmp_path / "state")
        sh = Shell(db, out=out)
        feed(sh, "create t (a = int4);", "append t(a = 1);",
             "\\checkpoint")
        assert "checkpoint complete" in out.getvalue()
        assert db._durability.wal.generation == 2
        db.close()

    def test_checkpoint_requires_durable_path(self, shell):
        sh, out = shell
        feed(sh, "\\checkpoint")
        assert "error:" in out.getvalue()
        assert "durable" in out.getvalue()


class TestDemoScript:
    def test_demo_script_loads(self):
        demo = pathlib.Path(__file__).parent.parent / "examples" \
            / "demo.arl"
        db = Database()
        db.execute_script(demo.read_text())
        assert db.catalog.has_rule("NoBobs")
        assert db.catalog.has_rule("raiselimit")
        assert db.catalog.has_rule("finddemotions")
        assert len(db.relation_rows("emp")) == 4
        # the rules actually work post-load
        db.execute('replace emp (sal = 99000) where emp.name = "Ann"')
        assert db.relation_rows("salaryerror") == [
            ("Ann", 52000.0, 99000.0)]
