"""Crash-recovery property (the durability contract).

For any statement sequence, any armed crash point and any fsync policy:
``Database.recover`` must produce exactly the state of a fresh database
that executed only the durably-committed prefix of the sequence — heap
contents, stored α-memories, P-nodes, and agenda (checked behaviorally
by running a probe workload on both and comparing again).

The prefix rule per fault point:

* ``wal.append`` (plain or torn crash) and ``rule.fire`` — the command
  in flight never reached the log, so the prefix excludes it;
* ``wal.fsync`` — the record was written and flushed before the fsync
  died, so the prefix *includes* the in-flight command;
* ``txn.commit`` — the whole transaction vanishes.

Set ``WAL_FSYNC=always|commit|never`` to restrict the policy axis (the
CI crash matrix runs one policy per job); unset, every policy runs.
"""

import os
import tempfile
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro import Database
from repro.faults import SimulatedCrash

from tests.test_network_equivalence import RULES, pnode_snapshot

_env_policy = os.environ.get("WAL_FSYNC")
POLICIES = (_env_policy,) if _env_policy else ("always", "commit",
                                               "never")

SCHEMA = (
    "create t (a = int4, k = int4)",
    "create u (b = int4, k = int4)",
    "create v (c = int4, k = int4)",
    "create log (tag = text)",
)

PROBE = (
    "append t(a = 6, k = 101)",
    "append u(b = 6, k = 102)",
    "append v(c = 6, k = 103)",
    "replace t (a = 7) where t.k = 101",
    "delete u where u.k = 102",
)

_op = st.one_of(
    st.tuples(st.just("insert"), st.sampled_from("tuv"),
              st.integers(0, 10)),
    st.tuples(st.just("delete"), st.sampled_from("tuv"),
              st.integers(0, 30)),
    st.tuples(st.just("modify"), st.sampled_from("tuv"),
              st.integers(0, 30), st.integers(0, 10)),
    st.tuples(st.just("block"), st.integers(0, 10), st.integers(0, 10)),
)


def ops_to_commands(ops):
    """The exact command texts ``apply_ops`` would execute — computed
    up front so both databases can run an identical prefix."""
    counters = {"t": 0, "u": 0, "v": 0}
    commands = []
    for op in ops:
        if op[0] == "insert":
            _, rel, value = op
            col = {"t": "a", "u": "b", "v": "c"}[rel]
            counters[rel] += 1
            commands.append(f"append {rel}({col} = {value}, "
                            f"k = {counters[rel]})")
        elif op[0] == "delete":
            _, rel, k = op
            commands.append(f"delete {rel} where {rel}.k = {k % 12}")
        elif op[0] == "modify":
            _, rel, k, value = op
            col = {"t": "a", "u": "b", "v": "c"}[rel]
            commands.append(f"replace {rel} ({col} = {value}) "
                            f"where {rel}.k = {k % 12}")
        else:
            _, a, b = op
            counters["t"] += 2
            commands.append(
                f"do "
                f"append t(a = {a}, k = {counters['t'] - 1}) "
                f"replace t (a = {b}) where t.k = {counters['t'] - 1} "
                f"append t(a = {b}, k = {counters['t']}) "
                f"delete t where t.k = {counters['t']} "
                f"end")
    return commands


def build(rules, durable_path=None, fsync="commit", checkpoint_every=0):
    kwargs = {}
    if durable_path is not None:
        kwargs = dict(durable_path=durable_path, fsync=fsync,
                      checkpoint_every=checkpoint_every)
    db = Database(virtual_policy="never", **kwargs)
    for ddl in SCHEMA:
        db.execute(ddl)
    for rule in rules:
        db.execute(rule)
    return db


def heap_of(db):
    return {name: sorted(db.relation_rows(name))
            for name in ("t", "u", "v", "log")}


def alpha_of(db):
    """Stored α-memory contents as value multisets (TIDs are not
    stable across recovery, values are)."""
    out = {}
    for (rule, var), memory in db.network._memories.items():
        if memory.is_virtual:
            continue
        out[(rule, var)] = sorted(
            Counter(entry.values for entry in memory.entries()).items())
    return out


def assert_equivalent(recovered, reference):
    assert heap_of(recovered) == heap_of(reference)
    assert alpha_of(recovered) == alpha_of(reference)
    assert pnode_snapshot(recovered) == pnode_snapshot(reference)
    # agenda / network behavior: both must react identically from here
    for command in PROBE:
        recovered.execute(command)
        reference.execute(command)
    assert heap_of(recovered) == heap_of(reference)


def run_crash_case(point, fsync, ops, rules, crash_after, torn=None,
                   checkpoint_every=0):
    commands = ops_to_commands(ops)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "state")
        db = build(rules, durable_path=path, fsync=fsync,
                   checkpoint_every=checkpoint_every)
        arm = dict(crash=True, after=crash_after)
        if torn is not None:
            arm["torn"] = torn
        db.faults.arm(point, **arm)
        completed = []
        crashed = False
        for command in commands:
            try:
                db.execute(command)
            except SimulatedCrash:
                crashed = True
                if point == "wal.fsync":
                    completed.append(command)
                break
            completed.append(command)
        if not crashed:
            db.faults.disarm()
            db.close()
        recovered = Database.recover(path, virtual_policy="never")
        reference = build(rules)
        for command in completed:
            reference.execute(command)
        assert_equivalent(recovered, reference)
        if crashed:
            assert db.stats.get("faults.injected") >= 1
        recovered.close()


@pytest.mark.parametrize("fsync", POLICIES)
@pytest.mark.parametrize("point", ["wal.append", "wal.fsync",
                                   "rule.fire"])
@settings(max_examples=8, deadline=None)
@given(ops=st.lists(_op, min_size=1, max_size=8),
       rule_indexes=st.sets(st.integers(0, len(RULES) - 1),
                            min_size=1, max_size=3),
       crash_after=st.integers(0, 10))
def test_crash_recovery_equals_durable_prefix(point, fsync, ops,
                                              rule_indexes, crash_after):
    rules = [RULES[i] for i in sorted(rule_indexes)]
    run_crash_case(point, fsync, ops, rules, crash_after)


@pytest.mark.parametrize("fsync", POLICIES)
@settings(max_examples=8, deadline=None)
@given(ops=st.lists(_op, min_size=1, max_size=8),
       rule_indexes=st.sets(st.integers(0, len(RULES) - 1),
                            min_size=1, max_size=3),
       crash_after=st.integers(0, 6),
       torn=st.sampled_from([0.1, 0.5, 0.9]))
def test_torn_write_recovery(fsync, ops, rule_indexes, crash_after,
                             torn):
    rules = [RULES[i] for i in sorted(rule_indexes)]
    run_crash_case("wal.append", fsync, ops, rules, crash_after,
                   torn=torn)


@pytest.mark.parametrize("fsync", POLICIES)
@settings(max_examples=8, deadline=None)
@given(ops=st.lists(_op, min_size=1, max_size=6),
       rule_indexes=st.sets(st.integers(0, len(RULES) - 1),
                            min_size=1, max_size=3),
       crash_after=st.integers(0, 8))
def test_crash_recovery_with_auto_checkpoints(fsync, ops, rule_indexes,
                                              crash_after):
    """Same contract with the checkpoint machinery churning mid-run."""
    rules = [RULES[i] for i in sorted(rule_indexes)]
    run_crash_case("wal.append", fsync, ops, rules, crash_after,
                   checkpoint_every=3)


@pytest.mark.parametrize("fsync", POLICIES)
@settings(max_examples=8, deadline=None)
@given(prefix=st.lists(_op, min_size=0, max_size=5),
       txn=st.lists(_op, min_size=1, max_size=5),
       rule_indexes=st.sets(st.integers(0, len(RULES) - 1),
                            min_size=1, max_size=3))
def test_commit_crash_loses_whole_transaction(fsync, prefix, txn,
                                              rule_indexes):
    rules = [RULES[i] for i in sorted(rule_indexes)]
    prefix_commands = ops_to_commands(prefix + txn)
    split = len(ops_to_commands(prefix))
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "state")
        db = build(rules, durable_path=path, fsync=fsync)
        for command in prefix_commands[:split]:
            db.execute(command)
        db.begin()
        for command in prefix_commands[split:]:
            db.execute(command)
        db.faults.arm("txn.commit", crash=True)
        with pytest.raises(SimulatedCrash):
            db.commit()
        recovered = Database.recover(path, virtual_policy="never")
        reference = build(rules)
        for command in prefix_commands[:split]:
            reference.execute(command)
        assert_equivalent(recovered, reference)
        recovered.close()


@pytest.mark.parametrize("fsync", POLICIES)
@settings(max_examples=6, deadline=None)
@given(ops=st.lists(_op, min_size=1, max_size=8),
       rule_indexes=st.sets(st.integers(0, len(RULES) - 1),
                            min_size=1, max_size=3))
def test_clean_shutdown_recovers_everything(fsync, ops, rule_indexes):
    """Degenerate crash point: no fault at all — recovery is lossless."""
    rules = [RULES[i] for i in sorted(rule_indexes)]
    run_crash_case("wal.append", fsync, ops, rules, crash_after=10_000)
