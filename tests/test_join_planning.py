"""Tests for adaptive join planning: cost-driven seek ordering,
demand-driven join-index promotion, and feedback-driven α-memory
adaptation."""

import pytest

from repro import Database
from repro.core.alpha import MAX_JOIN_INDEXES, PROMOTE_COST_THRESHOLD
from repro.errors import ArielError, RuleError


def _fill(db, relation, rows):
    db.bulk_append(relation, rows)


@pytest.fixture
def db():
    """Three relations of very different sizes, one three-way join rule.

    The variables sort alphabetically (big, s, tiny), so the static
    order from seed ``s`` would visit ``big`` first; a cost-driven
    planner must visit ``tiny`` first.
    """
    database = Database(virtual_policy="never")
    database.execute_script("""
        create s (bk = int4, tk = int4)
        create big (bk = int4, pad = int4)
        create tiny (tk = int4)
        create log (bk = int4)
    """)
    _fill(database, "big", ((i % 5, i) for i in range(400)))
    _fill(database, "tiny", ((i,) for i in range(4)))
    database._rules_suspended = True
    database.execute("define rule j3 "
                     "if s.bk = big.bk and s.tk = tiny.tk "
                     "then append to log(bk = s.bk)")
    return database


class TestSeekOrdering:
    def test_planner_prefers_small_connected_memory(self, db):
        rule = db.network.rules["j3"]
        order = db.network.join_planner.order(rule, "s")
        # tiny (4 rows) must be joined before big (400 rows)
        assert order.index("tiny") < order.index("big")

    def test_static_baseline_would_pick_big_first(self, db):
        rule = db.network.rules["j3"]
        static = rule.join_order_from("s")
        assert static[0] == "big"     # alphabetical among connected

    def test_orders_are_memoized(self, db):
        rule = db.network.rules["j3"]
        planner = db.network.join_planner
        first = planner.order(rule, "s")
        planned = db.stats.get("joins.orders_planned")
        again = planner.order(rule, "s")
        assert again == first
        assert db.stats.get("joins.orders_planned") == planned
        assert db.stats.get("joins.order_cache_hits") >= 1

    def test_cardinality_shift_replans(self, db):
        rule = db.network.rules["j3"]
        planner = db.network.join_planner
        planner.order(rule, "s")
        planned = db.stats.get("joins.orders_planned")
        # grow tiny from 4 rows to 2004, almost all sharing one key: the
        # bucket signature changes (so the memo re-plans) and a tk probe
        # into tiny now expects ~500 matches vs ~80 for a bk probe into
        # big — the greedy choice flips
        _fill(db, "tiny", ((2,) for _ in range(2000)))
        order = planner.order(rule, "s")
        assert db.stats.get("joins.orders_planned") > planned
        assert order.index("big") < order.index("tiny")

    def test_catalog_version_invalidates_cache(self, db):
        rule = db.network.rules["j3"]
        planner = db.network.join_planner
        planner.order(rule, "s")
        assert planner._orders
        db.catalog.bump_version()
        planner.order(rule, "s")   # triggers _sync
        assert planner._version == db.catalog.version

    def test_forced_hook_overrides_planning(self, db):
        rule = db.network.rules["j3"]
        planner = db.network.join_planner
        planner.forced = lambda rule, seed: ["big", "tiny"]
        assert planner.order(rule, "s") == ["big", "tiny"]

    def test_seek_uses_planned_order(self, db):
        # matching via the planned order still finds exactly the right
        # combinations
        db._rules_suspended = False
        db.execute("append s(bk = 1, tk = 2)")
        assert sorted(db.relation_rows("log")) == [(1,)] * 80

    def test_unconnected_variable_goes_last(self, db):
        db._rules_suspended = True
        db.execute("create lone (x = int4)")
        db.execute("append lone(x = 1)")
        db.execute("define rule cart "
                   "if s.bk = big.bk and lone.x > 0 "
                   "then append to log(bk = s.bk)")
        rule = db.network.rules["cart"]
        order = db.network.join_planner.order(rule, "s")
        assert order[-1] == "lone"

    def test_rule_removal_forgets_plans(self, db):
        rule = db.network.rules["j3"]
        planner = db.network.join_planner
        planner.order(rule, "s")
        db.execute("remove rule j3")
        assert not any(k[0] == "j3" for k in planner._orders)


class TestChainOrdering:
    def test_rete_chain_starts_at_smallest_memory(self):
        db = Database(network="rete")
        db.execute_script("""
            create a (k = int4)
            create b (k = int4)
        """)
        db.bulk_append("a", ((i,) for i in range(50)))
        db.bulk_append("b", ((i,) for i in range(5)))
        db._rules_suspended = True
        db.execute("define rule rr if a.k = b.k then delete a")
        state = db.network._states["rr"]
        assert state.order[0] == "b"
        assert db.stats.get("joins.chains_planned") >= 1

    def test_rete_matches_unaffected_by_reorder(self):
        results = []
        for network in ("rete", "treat"):
            db = Database(network=network)
            db.execute_script("""
                create a (k = int4)
                create b (k = int4)
            """)
            db.bulk_append("a", ((i % 7,) for i in range(50)))
            db.bulk_append("b", ((i,) for i in range(5)))
            db._rules_suspended = True
            db.execute("define rule rr if a.k = b.k then delete a")
            db.bulk_append("a", ((i % 3,) for i in range(10)))
            matches = sorted(
                tuple(sorted((var, entry.values)
                             for var, entry in m.bindings))
                for m in db.network.pnode("rr").matches())
            results.append(matches)
        assert results[0] == results[1]


class TestDemandDrivenIndexes:
    def _db(self, policy="demand"):
        db = Database(virtual_policy="never", join_index_policy=policy)
        db.execute_script("""
            create l (k = int4)
            create r (k = int4, pad = int4)
        """)
        db.bulk_append("r", ((i % 8, i) for i in range(64)))
        db._rules_suspended = True
        db.execute("define rule jj if l.k = r.k then delete l")
        return db

    def test_eager_policy_builds_indexes_at_activation(self):
        db = self._db("eager")
        assert db.network.memory("jj", "r").join_index_positions() == [0]

    def test_demand_policy_starts_unindexed(self):
        db = self._db()
        assert db.network.memory("jj", "r").join_index_positions() == []

    def test_index_promoted_at_runtime_after_threshold(self):
        db = self._db()
        memory = db.network.memory("jj", "r")
        probes_needed = PROMOTE_COST_THRESHOLD // len(memory) + 1
        for i in range(probes_needed):
            db.execute(f"append l(k = {i % 8})")
        assert memory.join_index_positions() == [0]
        assert db.stats.get("alpha.join_indexes_promoted") == 1
        # degradation before the promotion was counted
        assert db.stats.get("joins.unindexed_probes") > 0
        assert memory.unindexed_probe_count > 0

    def test_promoted_index_answers_probes(self):
        db = self._db()
        memory = db.network.memory("jj", "r")
        for i in range(20):
            db.execute(f"append l(k = {i % 8})")
        assert memory.has_join_index(0)
        assert {e.values[0] for e in memory.join_probe(0, 3)} == {3}

    def test_promotion_visible_in_plan_description(self):
        db = self._db()
        for i in range(20):
            db.execute(f"append l(k = {i % 8})")
        from repro.core.introspect import describe_join_plan
        text = describe_join_plan(db.manager, "jj")
        assert "join-index(es) [k]" in text

    def test_index_cap_respected(self):
        from repro.core.alpha import AlphaMemory
        from repro.core.rules import VariableSpec
        spec = VariableSpec(var="v", relation="t")
        memory = AlphaMemory("rr", spec)
        for position in range(MAX_JOIN_INDEXES):
            memory.ensure_join_index(position)
        for _ in range(10_000):
            promoted = memory.note_unindexed_probe(MAX_JOIN_INDEXES)
            assert promoted is False
        assert len(memory.join_index_positions()) == MAX_JOIN_INDEXES

    def test_bad_policy_rejected(self):
        with pytest.raises((RuleError, ArielError)):
            Database(join_index_policy="sometimes")


class TestFeedbackAdaptation:
    def _db(self):
        """Two symmetric event rules; only hot_rule sees traffic.

        The ``< 2`` selection keeps 40 of 80 rows, so materializing a
        memory saves 40 per probe (scan 80 vs iterate 40); a budget of
        50 entries fits exactly one of the two memories, and observed
        probe frequency must decide which.
        """
        db = Database(virtual_policy="always")
        db.execute_script("""
            create hp (k = int4)
            create cp (k = int4)
            create hot (k = int4)
            create cold (k = int4)
            create log (k = int4)
        """)
        db.bulk_append("hot", ((i % 4,) for i in range(80)))
        db.bulk_append("cold", ((i % 4,) for i in range(80)))
        db.execute("define rule hot_rule on append hp "
                   "if hp.k = hot.k and hot.k < 2 "
                   "then append to log(k = hp.k)")
        db.execute("define rule cold_rule on append cp "
                   "if cp.k = cold.k and cold.k < 2 "
                   "then append to log(k = cp.k)")
        return db

    def test_observed_probes_bias_materialization(self):
        db = self._db()
        for i in range(30):
            db.execute(f"append hp(k = {i % 4})")
        plan = db.adapt_memories(budget_entries=50)
        assert plan.decision("hot_rule", "hot") is True
        assert plan.decision("cold_rule", "cold") is False
        assert db.network.memory("hot_rule", "hot").is_virtual is False
        assert db.network.memory("cold_rule", "cold").is_virtual is True
        assert db.stats.get("memory.adaptations") == 1
        assert db.stats.get("memory.flips") == 1

    def test_adaptation_resets_probe_counters(self):
        db = self._db()
        for i in range(5):
            db.execute(f"append hp(k = {i % 4})")
        assert db.network.memory("hot_rule", "hot").probe_count > 0
        db.adapt_memories(budget_entries=50)
        assert db.network.memory("hot_rule", "hot").probe_count == 0

    def test_no_flip_means_no_reactivation(self):
        db = self._db()
        db.adapt_memories(budget_entries=0)   # nothing materializable
        flips = db.stats.get("memory.flips")
        db.adapt_memories(budget_entries=0)   # same verdict again
        assert db.stats.get("memory.flips") == flips
        assert db.stats.get("memory.adaptations") == 2

    def test_auto_trigger_every_n_transitions(self):
        db = self._db()
        db.enable_memory_adaptation(budget_entries=50, every=3)
        for i in range(7):
            db.execute(f"append hp(k = {i % 4})")
        assert db.stats.get("memory.adaptations") == 2
        db.disable_memory_adaptation()
        for i in range(6):
            db.execute(f"append hp(k = {i % 4})")
        assert db.stats.get("memory.adaptations") == 2

    def test_bad_interval_rejected(self):
        db = self._db()
        with pytest.raises(ArielError):
            db.enable_memory_adaptation(budget_entries=10, every=0)

    def test_rules_still_correct_after_adaptation(self):
        db = self._db()
        db.enable_memory_adaptation(budget_entries=50, every=2)
        for i in range(8):
            db.execute(f"append hp(k = {i % 4})")
        # k cycles 0..3; the two k<2 values each appear twice and join
        # 20 hot rows apiece — a mid-run storage flip must not change it
        assert len(db.relation_rows("log")) == 4 * 20
